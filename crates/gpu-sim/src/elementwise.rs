//! Element-wise kernels with optional fused remapping.
//!
//! These model the operators that follow a communicated GEMM output —
//! RMSNorm above all (§6.5). The post-communication reordering of
//! FlashOverlap is fused here as a *gather*: instead of loading row/element
//! `i`, the kernel loads `map[i]`, paying the granularity-dependent
//! bandwidth penalty of [`GpuArch::remap_penalty`] but saving a separate
//! un-permute kernel.
//!
//! [`GpuArch::remap_penalty`]: crate::arch::GpuArch::remap_penalty

use std::rc::Rc;

use tensor::Matrix;

use crate::arch::RemapGranularity;
use crate::cluster::Cluster;
use crate::memory::BufferId;
use crate::stream::{Kernel, LaunchCtx};
use crate::ClusterSim;

/// The element-wise operation to apply.
#[derive(Clone)]
pub enum ElementwiseOp {
    /// Copy input to output (pure layout transform).
    Copy,
    /// Rectified linear unit.
    Relu,
    /// SiLU activation.
    Silu,
    /// Per-column bias addition.
    BiasAdd(Rc<Vec<f32>>),
    /// Row-wise RMS normalization with gain weights.
    RmsNorm {
        /// Per-column gain.
        weight: Rc<Vec<f32>>,
        /// Variance epsilon.
        eps: f32,
    },
}

impl std::fmt::Debug for ElementwiseOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ElementwiseOp::Copy => "Copy",
            ElementwiseOp::Relu => "Relu",
            ElementwiseOp::Silu => "Silu",
            ElementwiseOp::BiasAdd(_) => "BiasAdd",
            ElementwiseOp::RmsNorm { .. } => "RmsNorm",
        };
        f.write_str(name)
    }
}

/// The fused gather pattern (post-communication remap).
#[derive(Clone)]
pub enum Gather {
    /// No remapping: input is already in logical row-major order.
    None,
    /// Output row `r` is read from input row `map[r]` (token-level remap).
    Rows(Rc<Vec<u32>>),
    /// Output element `i` is read from input element `map[i]` (tile- and
    /// subtile-level remaps, where a logical row crosses packed tiles).
    Elements(Rc<Vec<u32>>),
}

impl std::fmt::Debug for Gather {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Gather::None => f.write_str("None"),
            Gather::Rows(m) => write!(f, "Rows({})", m.len()),
            Gather::Elements(m) => write!(f, "Elements({})", m.len()),
        }
    }
}

/// An element-wise kernel over a logical `rows x cols` operand, optionally
/// gathering its input through a remap.
#[derive(Debug, Clone)]
pub struct ElementwiseKernel {
    /// Input buffer (at least `rows * cols` elements).
    pub input: BufferId,
    /// Output buffer (`rows * cols` elements).
    pub output: BufferId,
    /// Logical rows.
    pub rows: usize,
    /// Logical columns.
    pub cols: usize,
    /// The operation.
    pub op: ElementwiseOp,
    /// Input gather pattern.
    pub gather: Gather,
    /// Timing model granularity of the fused remap; `None` models the
    /// plain kernel even if a gather is set (used to isolate the overhead
    /// in Table 4 measurements the other way around: set this without a
    /// gather in timing mode).
    pub remap_cost: Option<RemapGranularity>,
}

impl ElementwiseKernel {
    /// Builds the logically-ordered input matrix, applying the gather.
    fn gathered_input(&self, data: &[f32]) -> Matrix {
        match &self.gather {
            Gather::None => {
                Matrix::from_vec(self.rows, self.cols, data[..self.rows * self.cols].to_vec())
            }
            Gather::Rows(map) => {
                assert_eq!(map.len(), self.rows, "row gather map length mismatch");
                Matrix::from_fn(self.rows, self.cols, |r, c| {
                    data[map[r] as usize * self.cols + c]
                })
            }
            Gather::Elements(map) => {
                assert_eq!(
                    map.len(),
                    self.rows * self.cols,
                    "element gather map length mismatch"
                );
                Matrix::from_fn(self.rows, self.cols, |r, c| {
                    data[map[r * self.cols + c] as usize]
                })
            }
        }
    }

    fn apply(&self, input: &Matrix) -> Matrix {
        match &self.op {
            ElementwiseOp::Copy => input.clone(),
            ElementwiseOp::Relu => tensor::relu(input),
            ElementwiseOp::Silu => tensor::silu(input),
            ElementwiseOp::BiasAdd(bias) => tensor::bias_add(input, bias),
            ElementwiseOp::RmsNorm { weight, eps } => tensor::rmsnorm(input, weight, *eps),
        }
    }
}

impl ElementwiseKernel {
    /// The input element spans this kernel reads, per its gather pattern.
    fn read_spans(&self) -> Vec<std::ops::Range<usize>> {
        match &self.gather {
            Gather::None => std::iter::once(0..self.rows * self.cols).collect(),
            Gather::Rows(map) => map
                .iter()
                .map(|&r| r as usize * self.cols..(r as usize + 1) * self.cols)
                .collect(),
            Gather::Elements(map) => {
                // Element maps are dense permutations; one covering span
                // keeps the record count bounded.
                let lo = map.iter().copied().min().unwrap_or(0) as usize;
                let hi = map.iter().copied().max().map_or(0, |m| m as usize + 1);
                std::iter::once(lo..hi).collect()
            }
        }
    }
}

impl Kernel for ElementwiseKernel {
    fn launch(self: Box<Self>, ctx: LaunchCtx, world: &mut Cluster, sim: &mut ClusterSim) {
        if let Some(monitor) = world.monitor.clone() {
            use crate::monitor::{Access, AccessKind, AccessScope};
            for range in self.read_spans() {
                monitor.on_access(&Access {
                    device: ctx.device,
                    stream: ctx.stream,
                    buffer: self.input,
                    range,
                    kind: AccessKind::Read,
                    scope: AccessScope::RemapRead,
                    tile: None,
                });
            }
            monitor.on_access(&Access {
                device: ctx.device,
                stream: ctx.stream,
                buffer: self.output,
                range: 0..self.rows * self.cols,
                kind: AccessKind::Write,
                scope: AccessScope::ElementwiseWrite,
                tile: None,
            });
        }
        // Read + write one fp16 element each per position.
        let bytes_moved = (self.rows * self.cols) as u64 * 2 * 2;
        let duration = world.devices[ctx.device]
            .arch
            .elementwise_time(bytes_moved, self.remap_cost);
        sim.schedule_in(duration, move |w, s| {
            if w.functional {
                let out = {
                    let mem = &w.devices[ctx.device].mem;
                    let input = self.gathered_input(mem.data(self.input));
                    self.apply(&input)
                };
                let mem = &mut w.devices[ctx.device].mem;
                let dst = mem.data_mut(self.output);
                dst[..out.len()].copy_from_slice(out.as_slice());
            }
            ctx.completion.finish(w, s);
        });
    }

    fn name(&self) -> &'static str {
        "elementwise"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuArch;
    use crate::stream::enqueue;
    use sim::{DetRng, Sim};
    use tensor::{allclose, rmsnorm};

    fn run_kernel(kernel: ElementwiseKernel, init: &[f32], out_len: usize) -> (Vec<f32>, u64) {
        let mut world = Cluster::new(1, GpuArch::a800(), true, 1);
        let mut sim: ClusterSim = Sim::new();
        let dev = &mut world.devices[0];
        let input = dev.mem.alloc_init(init);
        let output = dev.mem.alloc(out_len);
        let stream = dev.create_stream();
        let kernel = ElementwiseKernel {
            input,
            output,
            ..kernel
        };
        enqueue(&mut world, &mut sim, 0, stream, Box::new(kernel));
        let end = sim.run(&mut world).unwrap();
        (world.devices[0].mem.snapshot(output), end.as_nanos())
    }

    fn base_kernel(rows: usize, cols: usize) -> ElementwiseKernel {
        ElementwiseKernel {
            input: 0,
            output: 0,
            rows,
            cols,
            op: ElementwiseOp::Copy,
            gather: Gather::None,
            remap_cost: None,
        }
    }

    #[test]
    fn copy_without_gather_is_identity() {
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let (out, _) = run_kernel(base_kernel(3, 4), &data, 12);
        assert_eq!(out, data);
    }

    #[test]
    fn rmsnorm_matches_oracle() {
        let mut rng = DetRng::new(2);
        let m = Matrix::random(4, 8, &mut rng);
        let weight: Vec<f32> = (0..8).map(|i| 1.0 + i as f32 * 0.1).collect();
        let kernel = ElementwiseKernel {
            op: ElementwiseOp::RmsNorm {
                weight: Rc::new(weight.clone()),
                eps: 1e-6,
            },
            ..base_kernel(4, 8)
        };
        let (out, _) = run_kernel(kernel, m.as_slice(), 32);
        let expected = rmsnorm(&m, &weight, 1e-6);
        assert!(allclose(&Matrix::from_vec(4, 8, out), &expected, 1e-5));
    }

    #[test]
    fn row_gather_permutes_rows() {
        let data: Vec<f32> = (0..6).map(|i| i as f32).collect();
        let kernel = ElementwiseKernel {
            gather: Gather::Rows(Rc::new(vec![2, 0, 1])),
            ..base_kernel(3, 2)
        };
        let (out, _) = run_kernel(kernel, &data, 6);
        assert_eq!(out, vec![4.0, 5.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn element_gather_reverses() {
        let data: Vec<f32> = (0..4).map(|i| i as f32).collect();
        let kernel = ElementwiseKernel {
            gather: Gather::Elements(Rc::new(vec![3, 2, 1, 0])),
            ..base_kernel(2, 2)
        };
        let (out, _) = run_kernel(kernel, &data, 4);
        assert_eq!(out, vec![3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn remap_cost_increases_duration_within_table4_band() {
        // Large shape in timing mode: the fused remap must cost a few
        // percent extra, inside the 3%-13% band of Table 4.
        let rows = 4096;
        let cols = 8192;
        let mut world = Cluster::new(1, GpuArch::a800(), false, 1);
        let mut sim: ClusterSim = Sim::new();
        let dev = &mut world.devices[0];
        let input = dev.mem.alloc(rows * cols);
        let output = dev.mem.alloc(rows * cols);
        let stream = dev.create_stream();
        let plain = ElementwiseKernel {
            input,
            output,
            rows,
            cols,
            op: ElementwiseOp::Copy,
            gather: Gather::None,
            remap_cost: None,
        };
        let mut remapped = plain.clone();
        remapped.remap_cost = Some(RemapGranularity::Token);
        enqueue(&mut world, &mut sim, 0, stream, Box::new(plain));
        let t_plain = sim.run(&mut world).unwrap().as_nanos();
        enqueue(&mut world, &mut sim, 0, stream, Box::new(remapped));
        let t_remapped = sim.run(&mut world).unwrap().as_nanos() - t_plain;
        let overhead = t_remapped as f64 / t_plain as f64 - 1.0;
        assert!(
            (0.01..0.20).contains(&overhead),
            "remap overhead {overhead} outside Table 4 band"
        );
    }

    #[test]
    fn bias_and_activations_apply() {
        let data = vec![-1.0, 2.0];
        let kernel = ElementwiseKernel {
            op: ElementwiseOp::Relu,
            ..base_kernel(1, 2)
        };
        let (out, _) = run_kernel(kernel, &data, 2);
        assert_eq!(out, vec![0.0, 2.0]);

        let kernel = ElementwiseKernel {
            op: ElementwiseOp::BiasAdd(Rc::new(vec![10.0, 20.0])),
            ..base_kernel(1, 2)
        };
        let (out, _) = run_kernel(kernel, &data, 2);
        assert_eq!(out, vec![9.0, 22.0]);
    }
}
