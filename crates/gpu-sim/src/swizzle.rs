//! Block swizzling: the threadblock rasterization order.
//!
//! GEMM kernels do not issue output tiles in address (row-major) order:
//! CUTLASS-style swizzling issues them in strips to improve L2 locality
//! (§3.3.2, Fig. 5). Swizzling is why early-finished tiles are
//! address-incontiguous and why FlashOverlap needs reordering at all.

use crate::tile::TileGrid;

/// A threadblock rasterization order over a [`TileGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Swizzle {
    /// Tiles issue in address (row-major) order — no swizzling.
    Identity,
    /// CUTLASS-style strip swizzling: the grid is cut into vertical strips
    /// of `width` tile columns; within a strip, tiles issue column-major
    /// (down the strip first), so consecutively issued tiles sit in the
    /// same columns block but different rows — address-incontiguous.
    Strip {
        /// Strip width in tiles (the swizzle size; Fig. 5 uses 2).
        width: u32,
    },
    /// Row-strip rasterization (CUTLASS "raster along M"): the grid is
    /// cut into horizontal strips of `height` tile rows; within a strip,
    /// tiles issue row-major across each column block. Row bands complete
    /// progressively (strip by strip), which All-to-All token pools need,
    /// while keeping better operand reuse than a plain row-major sweep.
    StripRows {
        /// Strip height in tiles.
        height: u32,
    },
}

impl Swizzle {
    /// Returns the tile issue order: `order[i]` is the address-order tile
    /// index of the `i`-th issued tile. The result is a permutation of
    /// `0..grid.num_tiles()`.
    ///
    /// # Panics
    ///
    /// Panics if a strip width of zero is configured.
    pub fn issue_order(&self, grid: &TileGrid) -> Vec<u32> {
        match *self {
            Swizzle::Identity => (0..grid.num_tiles()).collect(),
            Swizzle::Strip { width } => {
                assert!(width > 0, "strip width must be positive");
                let mut order = Vec::with_capacity(grid.num_tiles() as usize);
                let mut strip_start = 0;
                while strip_start < grid.tiles_n() {
                    let strip_end = (strip_start + width).min(grid.tiles_n());
                    for row in 0..grid.tiles_m() {
                        for col in strip_start..strip_end {
                            order.push(grid.tile_at(row, col));
                        }
                    }
                    strip_start = strip_end;
                }
                order
            }
            Swizzle::StripRows { height } => {
                assert!(height > 0, "strip height must be positive");
                let mut order = Vec::with_capacity(grid.num_tiles() as usize);
                let mut strip_start = 0;
                while strip_start < grid.tiles_m() {
                    let strip_end = (strip_start + height).min(grid.tiles_m());
                    for col in 0..grid.tiles_n() {
                        for row in strip_start..strip_end {
                            order.push(grid.tile_at(row, col));
                        }
                    }
                    strip_start = strip_end;
                }
                order
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::TileShape;

    fn grid(tm: u32, tn: u32) -> TileGrid {
        TileGrid::new(tm * 16, tn * 16, TileShape::new(16, 16))
    }

    fn assert_permutation(order: &[u32], n: u32) {
        let mut seen = vec![false; n as usize];
        for &t in order {
            assert!(!seen[t as usize], "tile {t} issued twice");
            seen[t as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some tile never issued");
    }

    #[test]
    fn identity_is_address_order() {
        let g = grid(3, 4);
        assert_eq!(
            Swizzle::Identity.issue_order(&g),
            (0..12).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn strip_matches_fig5_pattern() {
        // Fig. 5: 2x4 tile grid, swizzle width 2. Issue order walks strip 0
        // (cols 0-1) down the rows, then strip 1 (cols 2-3).
        let g = grid(2, 4);
        let order = Swizzle::Strip { width: 2 }.issue_order(&g);
        assert_eq!(order, vec![0, 1, 4, 5, 2, 3, 6, 7]);
    }

    #[test]
    fn strip_is_permutation_even_when_ragged() {
        for (tm, tn, w) in [(3, 5, 2), (4, 4, 3), (1, 7, 4), (6, 1, 2), (5, 9, 16)] {
            let g = grid(tm, tn);
            let order = Swizzle::Strip { width: w }.issue_order(&g);
            assert_permutation(&order, g.num_tiles());
        }
    }

    #[test]
    fn strip_width_one_is_column_major() {
        let g = grid(2, 3);
        let order = Swizzle::Strip { width: 1 }.issue_order(&g);
        assert_eq!(order, vec![0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn wide_strip_degenerates_to_identity() {
        let g = grid(3, 4);
        let order = Swizzle::Strip { width: 4 }.issue_order(&g);
        assert_eq!(order, Swizzle::Identity.issue_order(&g));
    }

    #[test]
    fn strip_rows_completes_bands_progressively() {
        // With row strips of height 1, every tile of band b issues before
        // any tile of band b+1 — the All-to-All-friendly property.
        let g = grid(4, 6);
        let order = Swizzle::StripRows { height: 1 }.issue_order(&g);
        assert_permutation(&order, g.num_tiles());
        let mut last_band_finish = Vec::new();
        for band in 0..4u32 {
            let max_pos = order
                .iter()
                .position(|&t| t / 6 == band && t % 6 == 5)
                .unwrap();
            last_band_finish.push(max_pos);
        }
        for pair in last_band_finish.windows(2) {
            assert!(pair[0] < pair[1], "bands must complete in order");
        }
    }

    #[test]
    fn strip_rows_is_permutation_when_ragged() {
        for (tm, tn, h) in [(3, 5, 2), (7, 2, 3), (1, 4, 2), (5, 5, 16)] {
            let g = grid(tm, tn);
            let order = Swizzle::StripRows { height: h }.issue_order(&g);
            assert_permutation(&order, g.num_tiles());
        }
    }

    #[test]
    fn swizzled_early_tiles_are_address_incontiguous() {
        // The motivating fact from Sec. 3.3.2: with swizzling, the first
        // concurrently executing tiles are not contiguous in addresses.
        let g = grid(4, 8);
        let order = Swizzle::Strip { width: 2 }.issue_order(&g);
        let first_wave: Vec<u32> = order[..4].to_vec();
        let contiguous = first_wave.windows(2).all(|w| w[1] == w[0] + 1);
        assert!(
            !contiguous,
            "expected incontiguous early tiles: {first_wave:?}"
        );
    }
}
