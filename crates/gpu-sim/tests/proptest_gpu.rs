//! Property-based tests for the GPU substrate.

use gpu_sim::arch::GpuArch;
use gpu_sim::gemm::{gemm_estimate, GemmConfig, GemmDims};
use gpu_sim::swizzle::Swizzle;
use gpu_sim::tile::{TileGrid, TileShape};
use gpu_sim::wave::WaveSchedule;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every swizzle produces a permutation of the tile indices.
    #[test]
    fn swizzle_is_permutation(m in 1u32..40, n in 1u32..40, tm in 1u32..8, tn in 1u32..8,
                              width in 1u32..6, identity in any::<bool>()) {
        let grid = TileGrid::new(m * 16, n * 16, TileShape::new(tm * 16, tn * 16));
        let swizzle = if identity { Swizzle::Identity } else { Swizzle::Strip { width } };
        let order = swizzle.issue_order(&grid);
        prop_assert_eq!(order.len() as u32, grid.num_tiles());
        let mut seen = vec![false; order.len()];
        for &t in &order {
            prop_assert!(!seen[t as usize]);
            seen[t as usize] = true;
        }
    }

    /// Wave schedules partition the issue order exactly, and wave_of is
    /// consistent with membership.
    #[test]
    fn wave_schedule_partitions(tiles in 1u32..2000, conc in 1u32..256) {
        let order: Vec<u32> = (0..tiles).collect();
        let ws = WaveSchedule::new(&order, conc);
        let total: usize = ws.waves().iter().map(Vec::len).sum();
        prop_assert_eq!(total as u32, tiles);
        prop_assert_eq!(ws.num_waves(), tiles.div_ceil(conc));
        for w in 0..ws.num_waves() {
            for &t in ws.wave(w) {
                prop_assert_eq!(ws.wave_of(t), w);
            }
        }
        // All non-tail waves are full.
        for w in 0..ws.num_waves().saturating_sub(1) {
            prop_assert_eq!(ws.wave(w).len() as u32, conc);
        }
    }

    /// Tile grids cover the matrix exactly: tile element counts sum to M*N.
    #[test]
    fn grid_tiles_cover_matrix(m in 1u32..3000, n in 1u32..3000) {
        let grid = TileGrid::new(m, n, TileShape::new(128, 128));
        let total: u64 = (0..grid.num_tiles()).map(|t| grid.tile_elems(t)).sum();
        prop_assert_eq!(total, m as u64 * n as u64);
    }

    /// The static GEMM estimate is monotone: fewer SMs never make it
    /// faster, deeper K never makes it cheaper.
    #[test]
    fn gemm_estimate_monotone(m in 1u32..64, n in 1u32..64, k in 1u32..64, sms in 8u32..128) {
        let arch = GpuArch::rtx4090();
        let dims = GemmDims::new(m * 64, n * 64, k * 64);
        let config = GemmConfig::choose(dims, &arch);
        let (_, full) = gemm_estimate(dims, &config, 128, &arch);
        let (_, reduced) = gemm_estimate(dims, &config, sms, &arch);
        prop_assert!(reduced >= full);
        let deeper = GemmDims::new(dims.m, dims.n, dims.k + 64);
        let (_, deeper_dur) = gemm_estimate(deeper, &config, 128, &arch);
        prop_assert!(deeper_dur > full);
    }

    /// Chosen configurations tile the problem with at least one tile and
    /// never more waves than tiles.
    #[test]
    fn chosen_config_is_sane(m in 1u32..200, n in 1u32..200, k in 1u32..64) {
        let arch = GpuArch::a800();
        let dims = GemmDims::new(m * 32, n * 32, k * 128);
        let config = GemmConfig::choose(dims, &arch);
        let grid = config.grid(dims);
        prop_assert!(grid.num_tiles() >= 1);
        let (waves, dur) = gemm_estimate(dims, &config, arch.sm_count, &arch);
        prop_assert!(waves >= 1);
        prop_assert!(waves <= grid.num_tiles());
        prop_assert!(dur.as_nanos() > 0);
    }
}
