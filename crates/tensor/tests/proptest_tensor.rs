//! Property-based tests for the numerics oracle.

use proptest::prelude::*;
use sim::DetRng;
use tensor::gemm::gemm_k_slice;
use tensor::{allclose, gemm, gemm_blocked, max_abs_diff, rmsnorm, Matrix};

fn random_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = DetRng::new(seed);
    Matrix::random(rows, cols, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GEMM distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn gemm_distributes(seed in any::<u64>(), m in 1usize..12, k in 1usize..12, n in 1usize..12) {
        let a = random_matrix(seed, m, k);
        let b = random_matrix(seed ^ 1, k, n);
        let c = random_matrix(seed ^ 2, k, n);
        let lhs = gemm(&a, &b.add(&c));
        let rhs = gemm(&a, &b).add(&gemm(&a, &c));
        prop_assert!(allclose(&lhs, &rhs, 1e-3));
    }

    /// Blocked GEMM matches the naive reference for arbitrary block sizes.
    #[test]
    fn blocked_gemm_matches(seed in any::<u64>(), m in 1usize..20, k in 1usize..20,
                            n in 1usize..20, block in 1usize..24) {
        let a = random_matrix(seed, m, k);
        let b = random_matrix(seed ^ 7, k, n);
        prop_assert!(allclose(&gemm_blocked(&a, &b, block), &gemm(&a, &b), 1e-3));
    }

    /// Partial K-slices over any split point sum to the full product
    /// (the tensor-parallel AllReduce identity).
    #[test]
    fn k_slices_partition(seed in any::<u64>(), m in 1usize..10, k in 2usize..24, n in 1usize..10,
                          split_frac in 0.0f64..1.0) {
        let a = random_matrix(seed, m, k);
        let b = random_matrix(seed ^ 3, k, n);
        let split = ((k as f64 * split_frac) as usize).min(k);
        let sum = gemm_k_slice(&a, &b, 0, split).add(&gemm_k_slice(&a, &b, split, k));
        prop_assert!(allclose(&sum, &gemm(&a, &b), 1e-3));
    }

    /// Transpose reverses multiplication order: (AB)^T = B^T A^T.
    #[test]
    fn transpose_of_product(seed in any::<u64>(), m in 1usize..8, k in 1usize..8, n in 1usize..8) {
        let a = random_matrix(seed, m, k);
        let b = random_matrix(seed ^ 5, k, n);
        let lhs = gemm(&a, &b).transpose();
        let rhs = gemm(&b.transpose(), &a.transpose());
        prop_assert!(allclose(&lhs, &rhs, 1e-3));
    }

    /// RMSNorm is invariant to positive row scaling (with eps = 0).
    #[test]
    fn rmsnorm_scale_invariant(seed in any::<u64>(), rows in 1usize..6, cols in 1usize..16,
                               scale in 0.5f32..8.0) {
        let m = random_matrix(seed, rows, cols);
        // Skip degenerate all-zero rows, where 0/0 appears with eps = 0.
        prop_assume!(m.as_slice().iter().any(|&x| x.abs() > 1e-3));
        let weight = vec![1.0f32; cols];
        let base = rmsnorm(&m, &weight, 0.0);
        let scaled = rmsnorm(&m.scale(scale), &weight, 0.0);
        prop_assert!(max_abs_diff(&base, &scaled) < 1e-3);
    }

    /// Submatrix extraction followed by write-back at the same offset is the
    /// identity on that region.
    #[test]
    fn submatrix_writeback_roundtrip(seed in any::<u64>(), rows in 1usize..12, cols in 1usize..12) {
        let m = random_matrix(seed, rows, cols);
        let r0 = rows / 3;
        let c0 = cols / 3;
        let rh = (rows - r0).max(1).min(rows - r0);
        let cw = (cols - c0).max(1).min(cols - c0);
        let block = m.submatrix(r0, c0, rh, cw);
        let mut copy = m.clone();
        copy.write_block(r0, c0, &block);
        prop_assert_eq!(copy, m);
    }
}
