//! A dense row-major `f32` matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

use sim::DetRng;

/// A dense row-major matrix of `f32` values.
///
/// # Examples
///
/// ```
/// use tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a generator over `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix with uniform random entries in `[-1, 1)`.
    pub fn random(rows: usize, cols: usize, rng: &mut DetRng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| rng.uniform(-1.0, 1.0) as f32)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies a rectangular region into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the matrix bounds.
    pub fn submatrix(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(
            row0 + rows <= self.rows && col0 + cols <= self.cols,
            "submatrix [{row0}+{rows}, {col0}+{cols}] exceeds {}x{}",
            self.rows,
            self.cols
        );
        Matrix::from_fn(rows, cols, |r, c| self[(row0 + r, col0 + c)])
    }

    /// Writes `block` into this matrix at `(row0, col0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn write_block(&mut self, row0: usize, col0: usize, block: &Matrix) {
        assert!(
            row0 + block.rows <= self.rows && col0 + block.cols <= self.cols,
            "block [{row0}+{}, {col0}+{}] exceeds {}x{}",
            block.rows,
            block.cols,
            self.rows,
            self.cols
        );
        for r in 0..block.rows {
            let dst = (row0 + r) * self.cols + col0;
            self.data[dst..dst + block.cols].copy_from_slice(block.row(r));
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Element-wise sum of two equal-shape matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch in add"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds ({}x{})",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds ({}x{})",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|x| format!("{x:8.4}")).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    fn row_access() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(m.row(2), &[4.0, 5.0]);
    }

    #[test]
    fn row_mut_writes() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1).copy_from_slice(&[7.0, 8.0]);
        assert_eq!(m[(1, 0)], 7.0);
        assert_eq!(m[(1, 1)], 8.0);
    }

    #[test]
    fn submatrix_and_write_block_roundtrip() {
        let m = Matrix::from_fn(6, 6, |r, c| (r * 6 + c) as f32);
        let block = m.submatrix(2, 3, 2, 2);
        assert_eq!(block[(0, 0)], 15.0);
        assert_eq!(block[(1, 1)], 22.0);
        let mut out = Matrix::zeros(6, 6);
        out.write_block(2, 3, &block);
        assert_eq!(out[(2, 3)], 15.0);
        assert_eq!(out[(3, 4)], 22.0);
        assert_eq!(out[(0, 0)], 0.0);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = DetRng::new(3);
        let m = Matrix::random(4, 7, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(5, 2)], m[(2, 5)]);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let b = a.scale(2.0);
        let c = a.add(&b);
        assert_eq!(c[(1, 1)], 6.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_shape_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut r1 = DetRng::new(5);
        let mut r2 = DetRng::new(5);
        assert_eq!(Matrix::random(3, 3, &mut r1), Matrix::random(3, 3, &mut r2));
    }

    #[test]
    fn debug_format_truncates() {
        let m = Matrix::zeros(10, 20);
        let text = format!("{m:?}");
        assert!(text.contains("Matrix 10x20"));
        assert!(text.contains("..."));
    }
}
