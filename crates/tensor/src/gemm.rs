//! Reference general matrix multiplication.

use crate::matrix::Matrix;

/// Computes `A × B` naively in `f32` (the ground-truth implementation).
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use tensor::{gemm, Matrix};
///
/// let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
/// let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
/// assert_eq!(gemm(&a, &i), a);
/// ```
pub fn gemm(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm shape mismatch: {}x{} times {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (p, &a_ip) in a_row.iter().enumerate().take(k) {
            let b_row = b.row(p);
            for j in 0..n {
                c_row[j] += a_ip * b_row[j];
            }
        }
    }
    c
}

/// Computes `A × B` with cache blocking; numerically identical ordering per
/// output element is *not* guaranteed versus [`gemm`], so compare with a
/// tolerance.
///
/// # Panics
///
/// Panics if the inner dimensions disagree or `block` is zero.
pub fn gemm_blocked(a: &Matrix, b: &Matrix, block: usize) -> Matrix {
    assert!(block > 0, "block size must be positive");
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm shape mismatch: {}x{} times {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i0 in (0..m).step_by(block) {
        let i1 = (i0 + block).min(m);
        for p0 in (0..k).step_by(block) {
            let p1 = (p0 + block).min(k);
            for j0 in (0..n).step_by(block) {
                let j1 = (j0 + block).min(n);
                for i in i0..i1 {
                    let a_row = a.row(i);
                    let c_row = c.row_mut(i);
                    for (p, &a_ip) in a_row.iter().enumerate().take(p1).skip(p0) {
                        let b_row = b.row(p);
                        for j in j0..j1 {
                            c_row[j] += a_ip * b_row[j];
                        }
                    }
                }
            }
        }
    }
    c
}

/// Computes the partial product over a K-slice: `A[:, k0..k1] × B[k0..k1, :]`.
///
/// This is what each tensor-parallel rank computes before AllReduce; summing
/// the partials over a disjoint cover of `0..K` equals the full product.
///
/// # Panics
///
/// Panics if the slice is out of range or dimensions disagree.
pub fn gemm_k_slice(a: &Matrix, b: &Matrix, k0: usize, k1: usize) -> Matrix {
    assert!(k0 <= k1 && k1 <= a.cols(), "bad K slice {k0}..{k1}");
    assert_eq!(a.cols(), b.rows(), "gemm shape mismatch");
    let (m, n) = (a.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (p, &a_ip) in a_row.iter().enumerate().take(k1).skip(k0) {
            let b_row = b.row(p);
            for j in 0..n {
                c_row[j] += a_ip * b_row[j];
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::allclose;
    use sim::DetRng;

    #[test]
    fn identity_is_neutral() {
        let mut rng = DetRng::new(1);
        let a = Matrix::random(5, 5, &mut rng);
        let i = Matrix::from_fn(5, 5, |r, c| if r == c { 1.0 } else { 0.0 });
        assert!(allclose(&gemm(&a, &i), &a, 0.0));
        assert!(allclose(&gemm(&i, &a), &a, 0.0));
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = gemm(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn blocked_matches_naive() {
        let mut rng = DetRng::new(2);
        let a = Matrix::random(17, 23, &mut rng);
        let b = Matrix::random(23, 11, &mut rng);
        let reference = gemm(&a, &b);
        for block in [1, 3, 8, 64] {
            assert!(
                allclose(&gemm_blocked(&a, &b, block), &reference, 1e-4),
                "block={block}"
            );
        }
    }

    #[test]
    fn k_slices_sum_to_full_product() {
        let mut rng = DetRng::new(3);
        let a = Matrix::random(6, 12, &mut rng);
        let b = Matrix::random(12, 5, &mut rng);
        let full = gemm(&a, &b);
        let p1 = gemm_k_slice(&a, &b, 0, 4);
        let p2 = gemm_k_slice(&a, &b, 4, 9);
        let p3 = gemm_k_slice(&a, &b, 9, 12);
        let sum = p1.add(&p2).add(&p3);
        assert!(allclose(&sum, &full, 1e-5));
    }

    #[test]
    fn empty_k_slice_is_zero() {
        let mut rng = DetRng::new(4);
        let a = Matrix::random(3, 4, &mut rng);
        let b = Matrix::random(4, 2, &mut rng);
        let z = gemm_k_slice(&a, &b, 2, 2);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = gemm(&a, &b);
    }

    #[test]
    fn degenerate_dimensions() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let c = gemm(&a, &b);
        assert_eq!((c.rows(), c.cols()), (0, 2));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 2);
        let c = gemm(&a, &b);
        assert_eq!((c.rows(), c.cols()), (2, 2));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }
}
