//! Approximate matrix comparison helpers for tests and verification.

use crate::matrix::Matrix;

/// Returns the maximum absolute element-wise difference between two
/// equal-shape matrices.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn max_abs_diff(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "shape mismatch: {}x{} vs {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Returns true if every element of `a` is within `tol` of `b` (and shapes
/// match). `tol == 0.0` demands exact equality.
///
/// # Panics
///
/// Panics on shape mismatch — a shape mismatch in a correctness check is a
/// bug, not a tolerable difference.
pub fn allclose(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    max_abs_diff(a, b) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_matrices_are_close() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * c) as f32);
        assert!(allclose(&a, &a, 0.0));
        assert_eq!(max_abs_diff(&a, &a), 0.0);
    }

    #[test]
    fn detects_single_element_difference() {
        let a = Matrix::zeros(2, 2);
        let mut b = Matrix::zeros(2, 2);
        b[(1, 0)] = 0.5;
        assert_eq!(max_abs_diff(&a, &b), 0.5);
        assert!(!allclose(&a, &b, 0.4));
        assert!(allclose(&a, &b, 0.5));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = allclose(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1), 1.0);
    }

    #[test]
    fn empty_matrices_are_close() {
        let a = Matrix::zeros(0, 5);
        assert!(allclose(&a, &a, 0.0));
    }
}
