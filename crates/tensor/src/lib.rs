//! Host-side matrix numerics: the correctness oracle.
//!
//! Everything the simulated GPUs compute — tiled GEMMs, reordered
//! collectives, fused RMSNorm remaps — is checked against the plain,
//! obviously-correct implementations in this crate. The crate is `f32`,
//! row-major, and deliberately free of any simulation or device concepts.

#![warn(missing_docs)]

pub mod compare;
pub mod gemm;
pub mod matrix;
pub mod ops;

pub use compare::{allclose, max_abs_diff};
pub use gemm::{gemm, gemm_blocked};
pub use matrix::Matrix;
pub use ops::{bias_add, relu, rmsnorm, silu};
