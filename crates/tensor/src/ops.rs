//! Element-wise and normalization operators (GEMM epilogues and the
//! post-communication kernels the paper fuses remapping into).

use crate::matrix::Matrix;

/// Row-wise RMS normalization with a learned gain vector.
///
/// Each row `x` becomes `x / sqrt(mean(x^2) + eps) * weight`.
///
/// # Panics
///
/// Panics if `weight.len() != m.cols()`.
///
/// # Examples
///
/// ```
/// use tensor::{rmsnorm, Matrix};
///
/// let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
/// let out = rmsnorm(&m, &[1.0, 1.0], 0.0);
/// // RMS of (3, 4) is sqrt(12.5).
/// assert!((out[(0, 0)] - 3.0 / 12.5f32.sqrt()).abs() < 1e-6);
/// ```
pub fn rmsnorm(m: &Matrix, weight: &[f32], eps: f32) -> Matrix {
    assert_eq!(
        weight.len(),
        m.cols(),
        "rmsnorm weight length {} != cols {}",
        weight.len(),
        m.cols()
    );
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        let row = m.row(r);
        let mean_sq = row.iter().map(|x| x * x).sum::<f32>() / m.cols().max(1) as f32;
        let inv_rms = 1.0 / (mean_sq + eps).sqrt();
        let out_row = out.row_mut(r);
        for (o, (x, w)) in out_row.iter_mut().zip(row.iter().zip(weight)) {
            *o = x * inv_rms * w;
        }
    }
    out
}

/// Adds a per-column bias vector to every row.
///
/// # Panics
///
/// Panics if `bias.len() != m.cols()`.
pub fn bias_add(m: &Matrix, bias: &[f32]) -> Matrix {
    assert_eq!(
        bias.len(),
        m.cols(),
        "bias length {} != cols {}",
        bias.len(),
        m.cols()
    );
    Matrix::from_fn(m.rows(), m.cols(), |r, c| m[(r, c)] + bias[c])
}

/// Element-wise rectified linear unit.
pub fn relu(m: &Matrix) -> Matrix {
    Matrix::from_fn(m.rows(), m.cols(), |r, c| m[(r, c)].max(0.0))
}

/// Element-wise SiLU (`x * sigmoid(x)`), the activation used by the MoE
/// expert layers that motivate GEMM+All-to-All.
pub fn silu(m: &Matrix) -> Matrix {
    Matrix::from_fn(m.rows(), m.cols(), |r, c| {
        let x = m[(r, c)];
        x / (1.0 + (-x).exp())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::allclose;
    use sim::DetRng;

    #[test]
    fn rmsnorm_unit_rows_have_unit_rms() {
        let mut rng = DetRng::new(1);
        let m = Matrix::random(4, 16, &mut rng);
        let weight = vec![1.0; 16];
        let out = rmsnorm(&m, &weight, 0.0);
        for r in 0..out.rows() {
            let rms = (out.row(r).iter().map(|x| x * x).sum::<f32>() / 16.0).sqrt();
            assert!((rms - 1.0).abs() < 1e-4, "row {r} rms {rms}");
        }
    }

    #[test]
    fn rmsnorm_applies_weight() {
        let m = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let out = rmsnorm(&m, &[2.0, 0.5], 0.0);
        // RMS is 1, so output is exactly the weights.
        assert!((out[(0, 0)] - 2.0).abs() < 1e-6);
        assert!((out[(0, 1)] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn rmsnorm_eps_guards_zero_row() {
        let m = Matrix::zeros(1, 4);
        let out = rmsnorm(&m, &[1.0; 4], 1e-6);
        assert!(out.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn bias_add_broadcasts_per_column() {
        let m = Matrix::zeros(2, 3);
        let out = bias_add(&m, &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let m = Matrix::from_vec(1, 4, vec![-2.0, -0.5, 0.0, 3.0]);
        assert_eq!(relu(&m).as_slice(), &[0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn silu_known_values() {
        let m = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let out = silu(&m);
        assert_eq!(out[(0, 0)], 0.0);
        let expected = 1.0 / (1.0 + (-1.0f32).exp());
        assert!((out[(0, 1)] - expected).abs() < 1e-6);
    }

    #[test]
    fn silu_is_odd_asymptotically_linear() {
        let m = Matrix::from_vec(1, 1, vec![20.0]);
        assert!(allclose(&silu(&m), &m, 1e-4));
    }

    #[test]
    #[should_panic(expected = "weight length")]
    fn rmsnorm_weight_mismatch_panics() {
        let m = Matrix::zeros(1, 4);
        let _ = rmsnorm(&m, &[1.0; 3], 0.0);
    }
}
