//! NCCL-equivalent collective communication for the simulated cluster.
//!
//! FlashOverlap's communication-agnostic design (§2.2, §5) only needs three
//! things from its communication library: opaque collective calls that can
//! be enqueued on a stream, latency that follows a size-dependent
//! effective-bandwidth curve, and a constant SM footprint per communicator.
//! This crate provides exactly that over [`gpu_sim::Cluster`]: ring-cost
//! AllReduce / ReduceScatter / AllGather, All-to-All(v), and one-sided
//! point-to-point copies — all moving real data in functional mode so the
//! reordering correctness arguments of §3.3.3 can be *tested*, not assumed.

#![warn(missing_docs)]

pub mod comm;
pub mod cost;
pub mod hierarchical;
pub mod p2p;

pub use comm::{A2aPlan, CollectiveKernel, CollectiveRole, CollectiveSpec, Communicator, Region};
pub use cost::{all_to_all_duration, collective_duration_with, Algorithm};
pub use cost::{collective_duration, Primitive, BYTES_PER_ELEM};
pub use hierarchical::{
    flat_tiered_duration, inter_bytes_flat, inter_bytes_hierarchical, tiered_duration,
};
pub use p2p::P2pCopy;
