//! Hierarchical (two-level) collective cost and byte accounting over a
//! two-tier [`Topology`].
//!
//! On a multi-node topology the flat rank-order ring is bottlenecked by
//! its slowest edge: every ring step includes at least one inter-node
//! hop, so the whole collective runs at inter-fabric speed *and* pushes
//! the full ring traffic across every node boundary. The hierarchical
//! schedule (NCCL's tree/hierarchical algorithm family) avoids both:
//! reduce-scatter inside each node over the fast tier, run the collective
//! across node leaders over the slow tier, then all-gather back inside
//! each node. Only the leader ring crosses nodes, so inter-node traffic
//! drops from `nodes · f·S·(n-1)/n` to `nodes · f·S·(nodes-1)/nodes`
//! (`f` = 2 for AllReduce, 1 for ReduceScatter/AllGather) — strictly
//! less whenever a node holds more than one GPU.
//!
//! Single-node topologies take the flat path unchanged, bit-identical to
//! the pre-topology cost model. All-to-All has no hierarchical shortcut
//! (every personalized segment must reach its destination) and is
//! modelled flat at inter-fabric speed.

use sim::SimDuration;
use topology::{LinkTier, Topology};

use crate::cost::{collective_duration_with, Algorithm, Primitive};

/// Per-link byte multiplier of the ring schedule: AllReduce moves both a
/// reduce-scatter and an all-gather worth of traffic.
fn ring_factor(prim: Primitive) -> u64 {
    match prim {
        Primitive::AllReduce => 2,
        _ => 1,
    }
}

/// Duration of one collective over `bytes` of per-rank payload on the
/// full topology, using the hierarchical schedule when it spans nodes.
///
/// This is the single cost function the runtime, the latency predictor,
/// and the tuner all charge, so plans tuned offline match what the
/// simulated collectives take at runtime.
///
/// # Panics
///
/// Panics if the topology has fewer than 2 GPUs.
pub fn tiered_duration(
    prim: Primitive,
    bytes: u64,
    topo: &Topology,
    algorithm: Algorithm,
) -> SimDuration {
    if !topo.spans_nodes() {
        return collective_duration_with(prim, bytes, topo.n_gpus(), &topo.intra, algorithm);
    }
    let g = topo.gpus_per_node;
    let nodes = topo.nodes;
    let intra = |p: Primitive| collective_duration_with(p, bytes, g, &topo.intra, algorithm);
    let inter = |p: Primitive| collective_duration_with(p, bytes, nodes, &topo.inter, algorithm);
    match prim {
        // No hierarchical shortcut: every personalized segment crosses to
        // its destination, so the exchange runs at inter-fabric speed.
        Primitive::AllToAll => flat_tiered_duration(prim, bytes, topo, algorithm),
        Primitive::AllReduce if g >= 2 => {
            intra(Primitive::ReduceScatter)
                + inter(Primitive::AllReduce)
                + intra(Primitive::AllGather)
        }
        Primitive::AllReduce => inter(Primitive::AllReduce),
        Primitive::ReduceScatter if g >= 2 => {
            intra(Primitive::ReduceScatter) + inter(Primitive::ReduceScatter)
        }
        Primitive::ReduceScatter => inter(Primitive::ReduceScatter),
        Primitive::AllGather if g >= 2 => inter(Primitive::AllGather) + intra(Primitive::AllGather),
        Primitive::AllGather => inter(Primitive::AllGather),
    }
}

/// Duration of the *flat* rank-order ring on the same topology: every
/// step carries an inter-node hop, so the ring runs at inter-fabric
/// speed. The baseline hierarchical scheduling is measured against.
///
/// # Panics
///
/// Panics if the topology has fewer than 2 GPUs.
pub fn flat_tiered_duration(
    prim: Primitive,
    bytes: u64,
    topo: &Topology,
    algorithm: Algorithm,
) -> SimDuration {
    let fabric = if topo.spans_nodes() {
        &topo.inter
    } else {
        &topo.intra
    };
    collective_duration_with(prim, bytes, topo.n_gpus(), fabric, algorithm)
}

/// Per-link byte loads of the hierarchical schedule as `(src, dst,
/// bytes)` triples over global rank ids: the intra-node rings of the
/// reduce-scatter/all-gather phases plus the inter-node leader ring.
/// Single-node topologies produce the flat ring.
pub fn ring_loads(prim: Primitive, bytes: u64, topo: &Topology) -> Vec<(usize, usize, u64)> {
    let n = topo.n_gpus();
    if n < 2 {
        return Vec::new();
    }
    let f = ring_factor(prim);
    if !topo.spans_nodes() {
        let per_link = f * bytes * (n as u64 - 1) / n as u64;
        if per_link == 0 {
            return Vec::new();
        }
        return (0..n).map(|src| (src, (src + 1) % n, per_link)).collect();
    }
    let g = topo.gpus_per_node;
    let nodes = topo.nodes;
    let mut loads = Vec::new();
    // Intra-node rings: the reduce-scatter in (and, for AllReduce, the
    // all-gather back out) of each node's aggregate.
    if g >= 2 {
        let per_link = f * bytes * (g as u64 - 1) / g as u64;
        if per_link > 0 {
            for node in 0..nodes {
                let base = node * g;
                for i in 0..g {
                    loads.push((base + i, base + (i + 1) % g, per_link));
                }
            }
        }
    }
    // Inter-node leader ring carrying each node's aggregate payload.
    let per_link = f * bytes * (nodes as u64 - 1) / nodes as u64;
    if per_link > 0 {
        for node in 0..nodes {
            loads.push((node * g, ((node + 1) % nodes) * g, per_link));
        }
    }
    loads
}

/// Per-link loads of the flat rank-order ring on the same topology (the
/// baseline the hierarchical schedule is compared against).
pub fn flat_ring_loads(prim: Primitive, bytes: u64, topo: &Topology) -> Vec<(usize, usize, u64)> {
    let n = topo.n_gpus();
    if n < 2 {
        return Vec::new();
    }
    let per_link = ring_factor(prim) * bytes * (n as u64 - 1) / n as u64;
    if per_link == 0 {
        return Vec::new();
    }
    (0..n).map(|src| (src, (src + 1) % n, per_link)).collect()
}

/// Sums the bytes of `loads` whose edge crosses a node boundary.
fn inter_bytes_of(loads: &[(usize, usize, u64)], topo: &Topology) -> u64 {
    loads
        .iter()
        .filter(|&&(src, dst, _)| topo.tier(src, dst) == LinkTier::Inter)
        .map(|&(_, _, b)| b)
        .sum()
}

/// Total inter-node bytes the hierarchical schedule moves: the leader
/// ring's traffic, `nodes · f·S·(nodes-1)/nodes`. Zero on one node.
pub fn inter_bytes_hierarchical(prim: Primitive, bytes: u64, topo: &Topology) -> u64 {
    inter_bytes_of(&ring_loads(prim, bytes, topo), topo)
}

/// Total inter-node bytes the flat ring moves: one crossing per node,
/// each carrying the full per-link ring traffic — `nodes · f·S·(n-1)/n`.
/// Zero on one node.
pub fn inter_bytes_flat(prim: Primitive, bytes: u64, topo: &Topology) -> u64 {
    inter_bytes_of(&flat_ring_loads(prim, bytes, topo), topo)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::a800_hdr(2, 4)
    }

    #[test]
    fn single_node_is_bit_identical_to_flat() {
        use interconnect::FabricSpec;
        let t = Topology::single_node(FabricSpec::a800_nvlink(), 8);
        for prim in Primitive::ALL {
            let tiered = tiered_duration(prim, 1 << 20, &t, Algorithm::Ring);
            let flat = collective_duration_with(prim, 1 << 20, 8, &t.intra, Algorithm::Ring);
            assert_eq!(tiered, flat, "{prim}");
        }
        assert_eq!(inter_bytes_flat(Primitive::AllReduce, 1 << 20, &t), 0);
        assert_eq!(
            inter_bytes_hierarchical(Primitive::AllReduce, 1 << 20, &t),
            0
        );
    }

    #[test]
    fn hierarchical_moves_strictly_fewer_inter_bytes() {
        let t = topo();
        let s = 16 << 20;
        for prim in [
            Primitive::AllReduce,
            Primitive::ReduceScatter,
            Primitive::AllGather,
        ] {
            let flat = inter_bytes_flat(prim, s, &t);
            let hier = inter_bytes_hierarchical(prim, s, &t);
            assert!(hier < flat, "{prim}: hier {hier} vs flat {flat}");
        }
        // 2 nodes x 4 GPUs, AllReduce: flat crosses 2 · 2S·7/8 = 3.5S,
        // hierarchical crosses 2S.
        let s = 8u64 << 20;
        assert_eq!(
            inter_bytes_flat(Primitive::AllReduce, s, &t),
            2 * (2 * s * 7 / 8)
        );
        assert_eq!(inter_bytes_hierarchical(Primitive::AllReduce, s, &t), 2 * s);
    }

    #[test]
    fn hierarchical_is_faster_than_flat_on_two_tiers() {
        let t = topo();
        for bytes in [1u64 << 20, 16 << 20, 256 << 20] {
            let hier = tiered_duration(Primitive::AllReduce, bytes, &t, Algorithm::Ring);
            let flat = flat_tiered_duration(Primitive::AllReduce, bytes, &t, Algorithm::Ring);
            assert!(
                hier < flat,
                "{bytes} bytes: hierarchical {hier:?} vs flat {flat:?}"
            );
        }
    }

    #[test]
    fn one_gpu_per_node_skips_intra_phases() {
        let t = Topology::a800_hdr(4, 1);
        let hier = tiered_duration(Primitive::AllReduce, 4 << 20, &t, Algorithm::Ring);
        let inter_only =
            collective_duration_with(Primitive::AllReduce, 4 << 20, 4, &t.inter, Algorithm::Ring);
        assert_eq!(hier, inter_only);
        // The ring loads are exactly the leader (= every rank) ring.
        let loads = ring_loads(Primitive::AllReduce, 4 << 20, &t);
        assert_eq!(loads.len(), 4);
        assert!(loads.iter().all(|&(s, d, _)| !t.same_node(s, d)));
    }

    #[test]
    fn ring_loads_cover_both_tiers() {
        let t = topo();
        let loads = ring_loads(Primitive::AllReduce, 8 << 20, &t);
        // 2 nodes x 4 intra edges + 2 leader edges.
        assert_eq!(loads.len(), 10);
        let inter: Vec<_> = loads
            .iter()
            .filter(|&&(s, d, _)| !t.same_node(s, d))
            .collect();
        assert_eq!(inter.len(), 2);
        assert_eq!(*inter[0], (0, 4, 8 << 20));
        assert_eq!(*inter[1], (4, 0, 8 << 20));
    }

    #[test]
    fn all_to_all_has_no_hierarchical_shortcut() {
        let t = topo();
        let hier = tiered_duration(Primitive::AllToAll, 8 << 20, &t, Algorithm::Ring);
        let flat = flat_tiered_duration(Primitive::AllToAll, 8 << 20, &t, Algorithm::Ring);
        assert_eq!(hier, flat);
    }

    #[test]
    fn zero_payload_moves_nothing() {
        let t = topo();
        assert!(ring_loads(Primitive::AllReduce, 0, &t).is_empty());
        assert_eq!(inter_bytes_flat(Primitive::AllGather, 0, &t), 0);
    }
}
