//! Analytic latency of collective operations.
//!
//! The ring algorithm (§2.2) moves `2(n-1)/n * S` bytes per rank for
//! AllReduce and `(n-1)/n * S` for ReduceScatter / AllGather, in steps of
//! `S/n`-sized chunks; each step's wire time comes from the fabric's
//! effective-bandwidth model, which is where the small-message cliff of
//! Fig. 8 enters. Fragmenting a logical transfer into several calls
//! therefore pays both extra per-call overhead and worse per-step
//! bandwidth — the degradation FlashOverlap's grouping exists to avoid.

use interconnect::{FabricSpec, LinkKind};
use sim::SimDuration;

/// Bytes per element on the wire. The evaluated workloads are fp16
/// (buffers hold `f32` for numerics, but timing models half precision).
pub const BYTES_PER_ELEM: u64 = 2;

/// The collective communication primitives of §2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// Reduce across ranks, result everywhere (TP forward, DP gradients).
    AllReduce,
    /// Reduce across ranks, result scattered (TP training, FSDP backward).
    ReduceScatter,
    /// Concatenate contributions everywhere.
    AllGather,
    /// Personalized exchange (MoE expert parallelism).
    AllToAll,
}

impl Primitive {
    /// All primitives, for sweeps.
    pub const ALL: [Primitive; 4] = [
        Primitive::AllReduce,
        Primitive::ReduceScatter,
        Primitive::AllGather,
        Primitive::AllToAll,
    ];
}

impl std::fmt::Display for Primitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Primitive::AllReduce => "AllReduce",
            Primitive::ReduceScatter => "ReduceScatter",
            Primitive::AllGather => "AllGather",
            Primitive::AllToAll => "AllToAll",
        };
        f.write_str(name)
    }
}

/// The collective algorithm (NCCL switches between comparable families
/// by message size; the paper's design is agnostic to the choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// Chunked ring (bandwidth-optimal for large payloads).
    #[default]
    Ring,
    /// Direct exchange: full-payload peer transfers (latency-optimal for
    /// small payloads; parallel over NVLink pairs, serialized on a PCIe
    /// port).
    Direct,
    /// Pick whichever of Ring/Direct the cost model predicts faster, per
    /// call — NCCL's size-based tuning.
    Auto,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Algorithm::Ring => "Ring",
            Algorithm::Direct => "Direct",
            Algorithm::Auto => "Auto",
        })
    }
}

/// Latency of one collective call under a specific algorithm.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn collective_duration_with(
    prim: Primitive,
    bytes: u64,
    n: usize,
    fabric: &FabricSpec,
    algorithm: Algorithm,
) -> SimDuration {
    assert!(n >= 2, "collective on fewer than 2 ranks");
    match algorithm {
        Algorithm::Ring => collective_duration(prim, bytes, n, fabric),
        Algorithm::Direct => direct_duration(prim, bytes, n, fabric),
        Algorithm::Auto => {
            collective_duration(prim, bytes, n, fabric).min(direct_duration(prim, bytes, n, fabric))
        }
    }
}

/// Direct-exchange latency: each rank moves whole payloads to its peers
/// (reduce phases double the traffic for AllReduce).
fn direct_duration(prim: Primitive, bytes: u64, n: usize, fabric: &FabricSpec) -> SimDuration {
    let overhead = SimDuration::from_nanos(fabric.p2p.call_overhead_ns);
    let phases: u64 = match prim {
        Primitive::AllReduce => 2,
        Primitive::ReduceScatter | Primitive::AllGather => 1,
        Primitive::AllToAll => {
            return all_to_all_duration(&vec![bytes / n as u64; n], n, fabric);
        }
    };
    let per_phase = match fabric.kind {
        // Pairwise NVLink moves the peer transfers in parallel.
        LinkKind::NvLink => fabric.p2p.wire_time(bytes),
        // One PCIe egress port / IB NIC serializes them.
        LinkKind::Pcie | LinkKind::InfiniBand => fabric.p2p.wire_time(bytes) * (n as u64 - 1),
    };
    overhead + per_phase * phases
}

/// Latency of one collective call over `bytes` of per-rank payload on `n`
/// ranks.
///
/// # Panics
///
/// Panics if `n < 2` — single-rank "collectives" are degenerate and the
/// evaluation never uses them.
pub fn collective_duration(
    prim: Primitive,
    bytes: u64,
    n: usize,
    fabric: &FabricSpec,
) -> SimDuration {
    assert!(n >= 2, "collective on fewer than 2 ranks");
    let steps = match prim {
        Primitive::AllReduce => 2 * (n as u64 - 1),
        Primitive::ReduceScatter | Primitive::AllGather => n as u64 - 1,
        Primitive::AllToAll => {
            return all_to_all_duration(&vec![bytes / n as u64; n], n, fabric);
        }
    };
    let chunk = bytes / n as u64;
    let overhead = SimDuration::from_nanos(fabric.p2p.call_overhead_ns);
    overhead + fabric.p2p.wire_time(chunk) * steps
}

/// Latency of an All-to-All where this rank sends `per_dest_bytes[d]` to
/// each destination (the self-slot is ignored).
///
/// On PCIe the egress port serializes the messages; on NVLink the pairwise
/// links run in parallel and the longest message dominates.
pub fn all_to_all_duration(per_dest_bytes: &[u64], n: usize, fabric: &FabricSpec) -> SimDuration {
    assert!(n >= 2, "collective on fewer than 2 ranks");
    let overhead = SimDuration::from_nanos(fabric.p2p.call_overhead_ns);
    let messages = per_dest_bytes.len().min(n.saturating_sub(1)).max(1);
    match fabric.kind {
        LinkKind::Pcie | LinkKind::InfiniBand => {
            let wire: SimDuration = per_dest_bytes
                .iter()
                .take(messages)
                .map(|&b| fabric.p2p.wire_time(b))
                .sum();
            overhead + wire
        }
        LinkKind::NvLink => {
            let wire = per_dest_bytes
                .iter()
                .take(messages)
                .map(|&b| fabric.p2p.wire_time(b))
                .fold(SimDuration::ZERO, SimDuration::max);
            overhead + wire
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_costs_twice_reduce_scatter_wire_time() {
        let fabric = FabricSpec::rtx4090_pcie();
        let bytes = 256 << 20;
        let ar = collective_duration(Primitive::AllReduce, bytes, 4, &fabric);
        let rs = collective_duration(Primitive::ReduceScatter, bytes, 4, &fabric);
        let overhead = SimDuration::from_nanos(fabric.p2p.call_overhead_ns);
        let ar_wire = (ar - overhead).as_nanos() as f64;
        let rs_wire = (rs - overhead).as_nanos() as f64;
        assert!((ar_wire / rs_wire - 2.0).abs() < 1e-9);
    }

    #[test]
    fn more_ranks_move_more_data() {
        let fabric = FabricSpec::a800_nvlink();
        let bytes = 128 << 20;
        let t2 = collective_duration(Primitive::AllReduce, bytes, 2, &fabric);
        let t4 = collective_duration(Primitive::AllReduce, bytes, 4, &fabric);
        let t8 = collective_duration(Primitive::AllReduce, bytes, 8, &fabric);
        assert!(t2 < t4 && t4 < t8);
        // But per-rank traffic saturates at 2S: t8 < 2 * t2 wire-wise.
        assert!(t8.as_nanos() < 2 * t2.as_nanos());
    }

    #[test]
    fn splitting_a_call_is_slower() {
        // Two half-size AllReduce calls cost more than one full call:
        // the fragmentation penalty that motivates grouping (Sec. 4.1.1).
        let fabric = FabricSpec::rtx4090_pcie();
        let bytes = 64 << 20;
        let whole = collective_duration(Primitive::AllReduce, bytes, 4, &fabric);
        let half = collective_duration(Primitive::AllReduce, bytes / 2, 4, &fabric);
        assert!(half * 2 > whole);
    }

    #[test]
    fn all_to_all_parallel_on_nvlink_serial_on_pcie() {
        let nv = FabricSpec::a800_nvlink();
        let pcie = FabricSpec::rtx4090_pcie().with_peak_gbps(nv.p2p.peak_gbps);
        let per_dest = vec![16 << 20; 3];
        let t_nv = all_to_all_duration(&per_dest, 4, &nv);
        let t_pcie = all_to_all_duration(&per_dest, 4, &pcie);
        assert!(
            t_pcie.as_nanos() > 2 * t_nv.as_nanos(),
            "PCIe should serialize: {t_pcie:?} vs {t_nv:?}"
        );
    }

    #[test]
    fn zero_bytes_costs_overhead_only() {
        let fabric = FabricSpec::rtx4090_pcie();
        let t = collective_duration(Primitive::AllReduce, 0, 2, &fabric);
        assert_eq!(t, SimDuration::from_nanos(fabric.p2p.call_overhead_ns));
    }

    #[test]
    #[should_panic(expected = "fewer than 2 ranks")]
    fn single_rank_collective_panics() {
        let fabric = FabricSpec::rtx4090_pcie();
        let _ = collective_duration(Primitive::AllReduce, 1024, 1, &fabric);
    }

    #[test]
    fn direct_beats_ring_for_small_messages_on_nvlink() {
        // The crossover that motivates NCCL's size-based algorithm
        // switching: Direct avoids 2(n-1) chunk-setup penalties.
        let fabric = FabricSpec::a800_nvlink();
        let small = 64 << 10;
        let large = 256 << 20;
        let ring_small =
            collective_duration_with(Primitive::AllReduce, small, 8, &fabric, Algorithm::Ring);
        let direct_small =
            collective_duration_with(Primitive::AllReduce, small, 8, &fabric, Algorithm::Direct);
        assert!(direct_small < ring_small);
        let ring_large =
            collective_duration_with(Primitive::AllReduce, large, 8, &fabric, Algorithm::Ring);
        let direct_large =
            collective_duration_with(Primitive::AllReduce, large, 8, &fabric, Algorithm::Direct);
        assert!(ring_large < direct_large);
    }

    #[test]
    fn auto_is_pointwise_minimum() {
        let fabric = FabricSpec::a800_nvlink();
        for bytes in [32u64 << 10, 1 << 20, 64 << 20, 1 << 30] {
            let ring =
                collective_duration_with(Primitive::AllReduce, bytes, 4, &fabric, Algorithm::Ring);
            let direct = collective_duration_with(
                Primitive::AllReduce,
                bytes,
                4,
                &fabric,
                Algorithm::Direct,
            );
            let auto =
                collective_duration_with(Primitive::AllReduce, bytes, 4, &fabric, Algorithm::Auto);
            assert_eq!(auto, ring.min(direct));
        }
    }

    #[test]
    fn primitive_display_names() {
        assert_eq!(Primitive::AllReduce.to_string(), "AllReduce");
        assert_eq!(Primitive::AllToAll.to_string(), "AllToAll");
    }
}
