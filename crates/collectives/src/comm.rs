//! Communicators and collective stream kernels.
//!
//! The data/shape/cost semantics of each collective kind live in their own
//! submodules ([`all_reduce`], [`reduce_scatter`], [`all_gather`],
//! [`all_to_all`]); [`CollectiveSpec`] is a thin dispatcher over them, and
//! this module keeps only the kind-independent machinery: rendezvous,
//! serialization, SM occupancy, and monitor emission.

mod all_gather;
mod all_reduce;
mod all_to_all;
mod reduce_scatter;

use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Range;
use std::rc::Rc;

use gpu_sim::cluster::{Cluster, SpanMeta};
use gpu_sim::device::DeviceId;
use gpu_sim::memory::BufferId;
use gpu_sim::monitor::{Access, AccessKind, AccessScope, LinkTransfer};
use gpu_sim::stream::{Completion, Kernel, LaunchCtx, StreamId};
use gpu_sim::ClusterSim;
use interconnect::FabricSpec;
use sim::SimDuration;
use topology::Topology;

use crate::cost::{Algorithm, Primitive, BYTES_PER_ELEM};
use crate::hierarchical;

/// A contiguous region of one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// The buffer.
    pub buf: BufferId,
    /// Start element offset.
    pub offset: usize,
    /// Element count.
    pub count: usize,
}

impl Region {
    /// Creates a region.
    pub const fn new(buf: BufferId, offset: usize, count: usize) -> Self {
        Region { buf, offset, count }
    }
}

/// An All-to-All(v) exchange plan: `len[s][d]` elements move from offset
/// `send_off[s][d]` of source `s`'s send buffer to offset `recv_off[d][s]`
/// of destination `d`'s recv buffer. Self-segments (`s == d`) are copied
/// locally and cost no wire time.
#[derive(Debug, Clone, Default)]
pub struct A2aPlan {
    /// Per-source, per-destination send offsets.
    pub send_off: Vec<Vec<usize>>,
    /// Per-source, per-destination element counts.
    pub len: Vec<Vec<usize>>,
    /// Per-destination, per-source receive offsets.
    pub recv_off: Vec<Vec<usize>>,
}

/// One collective operation, described for all ranks at once (the SPMD
/// callsite view).
#[derive(Debug, Clone)]
pub enum CollectiveSpec {
    /// In-place AllReduce over one equal-size region per rank.
    AllReduce {
        /// Per-rank region (element counts must match).
        regions: Vec<Region>,
    },
    /// ReduceScatter: each rank contributes `send` (count divisible by the
    /// rank count) and receives its reduced chunk into `recv`.
    ReduceScatter {
        /// Per-rank send regions (`count == n * recv.count`).
        send: Vec<Region>,
        /// Per-rank receive regions.
        recv: Vec<Region>,
    },
    /// AllGather: each rank contributes `send` and receives the
    /// rank-ordered concatenation into `recv`.
    AllGather {
        /// Per-rank send regions.
        send: Vec<Region>,
        /// Per-rank receive regions (`count == n * send.count`).
        recv: Vec<Region>,
    },
    /// Personalized exchange following an [`A2aPlan`].
    AllToAllV {
        /// Per-rank send buffers.
        send: Vec<BufferId>,
        /// Per-rank receive buffers.
        recv: Vec<BufferId>,
        /// The exchange plan.
        plan: Rc<A2aPlan>,
    },
}

impl CollectiveSpec {
    /// The primitive this spec instantiates.
    pub fn primitive(&self) -> Primitive {
        match self {
            CollectiveSpec::AllReduce { .. } => Primitive::AllReduce,
            CollectiveSpec::ReduceScatter { .. } => Primitive::ReduceScatter,
            CollectiveSpec::AllGather { .. } => Primitive::AllGather,
            CollectiveSpec::AllToAllV { .. } => Primitive::AllToAll,
        }
    }

    /// Per-rank payload bytes (the `S` of the ring cost formulas).
    pub fn payload_bytes(&self) -> u64 {
        match self {
            CollectiveSpec::AllReduce { regions } => all_reduce::payload_bytes(regions),
            CollectiveSpec::ReduceScatter { send, .. } => reduce_scatter::payload_bytes(send),
            CollectiveSpec::AllGather { recv, .. } => all_gather::payload_bytes(recv),
            CollectiveSpec::AllToAllV { plan, .. } => all_to_all::payload_bytes(plan),
        }
    }

    fn duration(&self, topo: &Topology, n: usize, algorithm: Algorithm) -> SimDuration {
        match self {
            // Personalized exchanges run at the speed of the slowest tier
            // they cross; there is no hierarchical shortcut.
            CollectiveSpec::AllToAllV { plan, .. } => {
                let fabric = if topo.spans_nodes() {
                    &topo.inter
                } else {
                    &topo.intra
                };
                all_to_all::duration(plan, n, fabric)
            }
            _ => hierarchical::tiered_duration(
                self.primitive(),
                self.payload_bytes(),
                topo,
                algorithm,
            ),
        }
    }

    fn validate(&self, n: usize) {
        match self {
            CollectiveSpec::AllReduce { regions } => all_reduce::validate(regions, n),
            CollectiveSpec::ReduceScatter { send, recv } => {
                reduce_scatter::validate(send, recv, n);
            }
            CollectiveSpec::AllGather { send, recv } => all_gather::validate(send, recv, n),
            CollectiveSpec::AllToAllV { send, recv, plan } => {
                all_to_all::validate(send, recv, plan, n);
            }
        }
    }

    /// Applies the data semantics against the cluster (functional mode).
    /// On a multi-node topology AllReduce reduces hierarchically —
    /// per-node partial sums first, then across nodes — matching the
    /// dataflow of the hierarchical schedule.
    fn apply_data(&self, world: &mut Cluster, ranks: &[DeviceId], topo: &Topology) {
        match self {
            CollectiveSpec::AllReduce { regions } if topo.spans_nodes() => {
                all_reduce::apply_data_hierarchical(world, ranks, regions, &topo.node_map());
            }
            CollectiveSpec::AllReduce { regions } => {
                all_reduce::apply_data(world, ranks, regions);
            }
            CollectiveSpec::ReduceScatter { send, recv } => {
                reduce_scatter::apply_data(world, ranks, send, recv);
            }
            CollectiveSpec::AllGather { send, recv } => {
                all_gather::apply_data(world, ranks, send, recv);
            }
            CollectiveSpec::AllToAllV { send, recv, plan } => {
                all_to_all::apply_data(world, ranks, send, recv, plan);
            }
        }
    }

    /// The local buffer ranges rank `rank` contributes — read from the
    /// moment the rank's collective kernel arrives.
    pub fn send_ranges(&self, rank: usize) -> Vec<(BufferId, Range<usize>)> {
        match self {
            CollectiveSpec::AllReduce { regions } => all_reduce::send_ranges(regions, rank),
            CollectiveSpec::ReduceScatter { send, .. } => reduce_scatter::send_ranges(send, rank),
            CollectiveSpec::AllGather { send, .. } => all_gather::send_ranges(send, rank),
            CollectiveSpec::AllToAllV { send, plan, .. } => {
                all_to_all::send_ranges(send, plan, rank)
            }
        }
    }

    /// Per-link byte loads of the exchange as `(src_rank, dst_rank,
    /// bytes)` triples, for link-utilization telemetry.
    ///
    /// Ring collectives are modelled over the ring schedule (rank `i` →
    /// rank `i + 1 mod n`), the bandwidth-optimal default: AllReduce moves
    /// `2 S (n-1)/n` bytes per link, ReduceScatter/AllGather `S (n-1)/n`.
    /// All-to-All reads its explicit plan, skipping self-segments.
    pub fn link_loads(&self, n: usize) -> Vec<(usize, usize, u64)> {
        if n < 2 {
            return Vec::new();
        }
        match self {
            CollectiveSpec::AllToAllV { plan, .. } => {
                let mut loads = Vec::new();
                for (src, row) in plan.len.iter().enumerate() {
                    for (dst, &len) in row.iter().enumerate() {
                        if src != dst && len > 0 {
                            loads.push((src, dst, len as u64 * BYTES_PER_ELEM));
                        }
                    }
                }
                loads
            }
            _ => {
                let s = self.payload_bytes();
                let per_link = match self.primitive() {
                    Primitive::AllReduce => 2 * s * (n as u64 - 1) / n as u64,
                    _ => s * (n as u64 - 1) / n as u64,
                };
                if per_link == 0 {
                    return Vec::new();
                }
                (0..n).map(|src| (src, (src + 1) % n, per_link)).collect()
            }
        }
    }

    /// Like [`CollectiveSpec::link_loads`], but scheduled over a two-tier
    /// topology: ring collectives route over the hierarchical schedule
    /// (intra-node rings + the inter-node leader ring) when the topology
    /// spans nodes; All-to-All keeps its explicit pairwise plan.
    pub fn link_loads_tiered(&self, topo: &Topology) -> Vec<(usize, usize, u64)> {
        match self {
            CollectiveSpec::AllToAllV { .. } => self.link_loads(topo.n_gpus()),
            _ => hierarchical::ring_loads(self.primitive(), self.payload_bytes(), topo),
        }
    }

    /// The local buffer ranges rank `rank` receives — written when the
    /// collective completes.
    pub fn recv_ranges(&self, rank: usize) -> Vec<(BufferId, Range<usize>)> {
        match self {
            CollectiveSpec::AllReduce { regions } => all_reduce::recv_ranges(regions, rank),
            CollectiveSpec::ReduceScatter { recv, .. } => reduce_scatter::recv_ranges(recv, rank),
            CollectiveSpec::AllGather { recv, .. } => all_gather::recv_ranges(recv, rank),
            CollectiveSpec::AllToAllV { recv, plan, .. } => {
                all_to_all::recv_ranges(recv, plan, rank)
            }
        }
    }
}

struct Pending {
    completions: Vec<Option<Completion>>,
    arrived: usize,
}

#[derive(Default)]
struct CommState {
    next_call: u64,
    pending: HashMap<u64, Pending>,
    /// When the communicator's in-flight work drains: operations on one
    /// communicator serialize (as in NCCL), even when issued from
    /// different streams — they share the same ring resources.
    busy_until: Option<sim::SimTime>,
}

struct CommInner {
    ranks: Vec<DeviceId>,
    /// The communicator's own rank space mapped onto nodes and tiers;
    /// single-node for every pre-topology constructor. `topology.intra`
    /// doubles as the flat fabric.
    topology: Topology,
    sm_footprint: u32,
    algorithm: Algorithm,
    state: RefCell<CommState>,
}

/// A communicator over a fixed set of device ranks, mirroring
/// `ncclComm_t`: it knows its fabric, occupies a constant number of SMs
/// per in-flight collective (§4.2.1), serializes its operations like a
/// real NCCL communicator, and matches the per-rank calls of one
/// collective by call id.
///
/// # Examples
///
/// ```
/// use collectives::{CollectiveSpec, Communicator, Region};
/// use interconnect::FabricSpec;
///
/// let comm = Communicator::new(vec![0, 1], FabricSpec::a800_nvlink(), 20);
/// let spec = CollectiveSpec::AllReduce {
///     regions: vec![Region::new(0, 0, 1 << 20), Region::new(0, 0, 1 << 20)],
/// };
/// // Cost model query (no simulation needed):
/// assert!(comm.duration_of(&spec).as_nanos() > 0);
/// // Per-rank kernels to enqueue on each rank's stream:
/// assert_eq!(comm.kernels(spec).len(), 2);
/// ```
#[derive(Clone)]
pub struct Communicator {
    inner: Rc<CommInner>,
}

impl Communicator {
    /// Creates a communicator over `ranks` using `fabric`, with each
    /// in-flight collective holding `sm_footprint` SMs on every rank.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two ranks are given or ranks repeat.
    pub fn new(ranks: Vec<DeviceId>, fabric: FabricSpec, sm_footprint: u32) -> Self {
        Self::with_algorithm(ranks, fabric, sm_footprint, Algorithm::Ring)
    }

    /// Creates a communicator with an explicit collective algorithm.
    ///
    /// # Panics
    ///
    /// Panics like [`Communicator::new`].
    pub fn with_algorithm(
        ranks: Vec<DeviceId>,
        fabric: FabricSpec,
        sm_footprint: u32,
        algorithm: Algorithm,
    ) -> Self {
        let n = ranks.len();
        Self::with_topology(
            ranks,
            Topology::single_node(fabric, n.max(1)),
            sm_footprint,
            algorithm,
        )
    }

    /// Creates a communicator whose ranks are laid out on a two-tier
    /// topology. `topology` describes the communicator's *own* rank
    /// space: communicator rank `i` sits on `topology.node_of(i)`, so it
    /// must cover exactly `ranks.len()` GPUs. Collectives schedule
    /// hierarchically (and charge inter-tier costs) whenever the
    /// topology spans nodes.
    ///
    /// # Panics
    ///
    /// Panics like [`Communicator::new`], or if the topology size does
    /// not match the rank count.
    pub fn with_topology(
        ranks: Vec<DeviceId>,
        topology: Topology,
        sm_footprint: u32,
        algorithm: Algorithm,
    ) -> Self {
        assert!(ranks.len() >= 2, "communicator needs at least two ranks");
        assert_eq!(
            topology.n_gpus(),
            ranks.len(),
            "topology covers {} GPUs but the communicator has {} ranks",
            topology.n_gpus(),
            ranks.len()
        );
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ranks.len(), "duplicate ranks in communicator");
        Communicator {
            inner: Rc::new(CommInner {
                ranks,
                topology,
                sm_footprint,
                algorithm,
                state: RefCell::new(CommState::default()),
            }),
        }
    }

    /// The algorithm this communicator schedules collectives with.
    pub fn algorithm(&self) -> Algorithm {
        self.inner.algorithm
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.inner.ranks.len()
    }

    /// The device ids, by rank.
    pub fn ranks(&self) -> &[DeviceId] {
        &self.inner.ranks
    }

    /// The fabric this communicator runs over (the intra-node tier on a
    /// multi-node topology).
    pub fn fabric(&self) -> &FabricSpec {
        &self.inner.topology.intra
    }

    /// The topology the communicator's ranks are laid out on.
    pub fn topology(&self) -> &Topology {
        &self.inner.topology
    }

    /// The constant SM footprint per in-flight collective.
    pub fn sm_footprint(&self) -> u32 {
        self.inner.sm_footprint
    }

    /// Creates the per-rank kernels of one collective call. The returned
    /// kernels (rank order) must each be enqueued on their own rank's
    /// stream; the collective completes on all ranks simultaneously once
    /// every rank has reached it.
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent with the communicator size.
    pub fn kernels(&self, spec: CollectiveSpec) -> Vec<CollectiveKernel> {
        self.kernels_tagged(spec, None)
    }

    /// Like [`Communicator::kernels`], but tags every kernel with the
    /// signal group it serves, so span metadata and trace flow events can
    /// tie the collective back to its counting-table slot.
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent with the communicator size.
    pub fn kernels_tagged(
        &self,
        spec: CollectiveSpec,
        group: Option<usize>,
    ) -> Vec<CollectiveKernel> {
        self.kernels_with_role(spec, group, CollectiveRole::Overlap)
    }

    /// Like [`Communicator::kernels_tagged`], with an explicit
    /// [`CollectiveRole`] so recovery collectives are distinguishable in
    /// traces ("tail-collective" / "bulk-collective" spans).
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent with the communicator size.
    pub fn kernels_with_role(
        &self,
        spec: CollectiveSpec,
        group: Option<usize>,
        role: CollectiveRole,
    ) -> Vec<CollectiveKernel> {
        spec.validate(self.size());
        let call = {
            let mut st = self.inner.state.borrow_mut();
            let id = st.next_call;
            st.next_call += 1;
            id
        };
        let spec = Rc::new(spec);
        (0..self.size())
            .map(|rank| CollectiveKernel {
                comm: self.clone(),
                call,
                rank,
                group,
                role,
                spec: spec.clone(),
            })
            .collect()
    }

    /// Aborts every pending (not yet fully rendezvoused) collective call:
    /// the arrived ranks release their SMs and their stream completions
    /// fire without any data moving — the `ncclCommAbort` analog the
    /// watchdog escalates through when a peer rank can never arrive.
    /// Returns the number of aborted calls.
    ///
    /// In-flight collectives (already rendezvoused and transferring) are
    /// not affected; they complete normally.
    pub fn abort_pending(&self, world: &mut Cluster, sim: &mut ClusterSim) -> usize {
        let pending: Vec<Pending> = {
            let mut st = self.inner.state.borrow_mut();
            let calls: Vec<u64> = st.pending.keys().copied().collect();
            calls
                .into_iter()
                .filter_map(|c| st.pending.remove(&c))
                .collect()
        };
        let aborted = pending.len();
        let footprint = self.inner.sm_footprint;
        for call in pending {
            for completion in call.completions.into_iter().flatten() {
                let device = completion.device();
                world.devices[device].release_comm_sms(footprint);
                world.notify_sm_occupancy(sim.now(), device);
                sim.schedule_now(move |w, s| completion.finish(w, s));
            }
        }
        aborted
    }

    /// Predicted duration of `spec` on this communicator (used by cost
    /// models; the runtime uses the same function, so this is exact up to
    /// rendezvous skew).
    pub fn duration_of(&self, spec: &CollectiveSpec) -> SimDuration {
        spec.duration(&self.inner.topology, self.size(), self.inner.algorithm)
    }
}

impl std::fmt::Debug for Communicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator")
            .field("ranks", &self.inner.ranks)
            .field("fabric", &self.inner.topology.intra.name)
            .field("nodes", &self.inner.topology.nodes)
            .field("sm_footprint", &self.inner.sm_footprint)
            .finish()
    }
}

/// Why a collective was issued: as part of the planned overlap schedule,
/// or by the watchdog's recovery ladder. The role only changes the span
/// name, so traces show recovery collectives distinctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveRole {
    /// A planned, signal-gated overlap collective.
    #[default]
    Overlap,
    /// A tail collective re-issued by the watchdog for a starved group.
    Tail,
    /// A bulk non-overlapped collective issued in degraded mode.
    Bulk,
}

/// One rank's half of a collective call (returned by
/// [`Communicator::kernels`]).
pub struct CollectiveKernel {
    comm: Communicator,
    call: u64,
    rank: usize,
    /// Signal group this collective serves (overlap runtime only).
    group: Option<usize>,
    /// Planned-overlap vs. recovery issue reason (span naming).
    role: CollectiveRole,
    spec: Rc<CollectiveSpec>,
}

impl std::fmt::Debug for CollectiveKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectiveKernel")
            .field("call", &self.call)
            .field("rank", &self.rank)
            .field("group", &self.group)
            .finish_non_exhaustive()
    }
}

impl Kernel for CollectiveKernel {
    fn launch(self: Box<Self>, ctx: LaunchCtx, world: &mut Cluster, sim: &mut ClusterSim) {
        let inner = &self.comm.inner;
        let n = inner.ranks.len();
        assert_eq!(
            inner.ranks[self.rank], ctx.device,
            "collective kernel launched on the wrong device"
        );
        // The NCCL kernel occupies its SMs from local launch: it spins
        // waiting for peers, contending with compute the whole time.
        world.devices[ctx.device].occupy_comm_sms(inner.sm_footprint);
        world.notify_sm_occupancy(sim.now(), ctx.device);

        // This rank's contribution is read from arrival on; report it now
        // so a send region still being produced shows up as a race.
        if let Some(monitor) = world.monitor.clone() {
            for (buffer, range) in self.spec.send_ranges(self.rank) {
                monitor.on_access(&Access {
                    device: ctx.device,
                    stream: ctx.stream,
                    buffer,
                    range,
                    kind: AccessKind::Read,
                    scope: AccessScope::CollectiveSend,
                    tile: None,
                });
            }
        }

        let all_arrived = {
            let mut st = inner.state.borrow_mut();
            let pending = st.pending.entry(self.call).or_insert_with(|| Pending {
                completions: (0..n).map(|_| None).collect(),
                arrived: 0,
            });
            assert!(
                pending.completions[self.rank].is_none(),
                "rank {} reached collective call {} twice",
                self.rank,
                self.call
            );
            pending.completions[self.rank] = Some(ctx.completion);
            pending.arrived += 1;
            pending.arrived == n
        };

        if all_arrived {
            let pending = inner
                .state
                .borrow_mut()
                .pending
                .remove(&self.call)
                .expect("pending entry exists");
            // All ranks synchronize with each other at the rendezvous.
            let participants: Vec<(DeviceId, StreamId)> = pending
                .completions
                .iter()
                .map(|c| {
                    let c = c.as_ref().expect("all ranks arrived");
                    (c.device(), c.stream())
                })
                .collect();
            if let Some(monitor) = world.monitor.clone() {
                monitor.on_rendezvous(sim.now(), &participants);
            }
            // Positive per-call noise models protocol and congestion
            // non-idealities on real fabrics.
            let lead = inner.ranks[0];
            let noise = 1.0
                + world.devices[lead]
                    .rng
                    .uniform(0.0, world.noise.comm_frac.max(0.0));
            // Injected fabric faults: a persistent bandwidth-degradation
            // multiplier, plus a transient per-collective stall while the
            // stall budget lasts. Inter-tier degradation only bites when
            // this communicator's collective actually crosses nodes.
            let crosses_nodes = inner.topology.spans_nodes();
            let mut slowdown = world.comm_fault.slowdown_factor();
            if crosses_nodes {
                slowdown *= world.comm_fault.inter_slowdown_factor();
            }
            let stall = world.comm_fault.take_stall().unwrap_or(SimDuration::ZERO);
            if stall.as_nanos() > 0 {
                world.notify_runtime_event(&gpu_sim::monitor::RuntimeEvent {
                    at: sim.now(),
                    device: lead,
                    kind: gpu_sim::monitor::RuntimeEventKind::FaultInjected,
                    group: self.group,
                    detail: format!(
                        "link stall of {stall:?} before collective call {}",
                        self.call
                    ),
                });
            }
            let duration = self
                .spec
                .duration(&inner.topology, n, inner.algorithm)
                .mul_f64(noise * slowdown)
                + stall;
            // Serialize behind earlier collectives on this communicator:
            // they share the same fabric rings.
            let start = {
                let mut st = inner.state.borrow_mut();
                let start = st.busy_until.map_or(sim.now(), |t| t.max(sim.now()));
                st.busy_until = Some(start + duration);
                start
            };
            let finish_at = start + duration;
            // The wire is busy for the whole [start, finish_at) window;
            // report each link's share for utilization timelines.
            if let Some(monitor) = world.monitor.clone() {
                for (src, dst, bytes) in self.spec.link_loads_tiered(&inner.topology) {
                    monitor.on_link_transfer(&LinkTransfer {
                        src: inner.ranks[src],
                        dst: inner.ranks[dst],
                        bytes,
                        start,
                        end: finish_at,
                    });
                }
            }
            let comm = self.comm.clone();
            let spec = self.spec.clone();
            sim.schedule_at(finish_at, move |w, s| {
                if let Some(monitor) = w.monitor.clone() {
                    for (rank, &(device, stream)) in participants.iter().enumerate() {
                        for (buffer, range) in spec.recv_ranges(rank) {
                            monitor.on_access(&Access {
                                device,
                                stream,
                                buffer,
                                range,
                                kind: AccessKind::Write,
                                scope: AccessScope::CollectiveRecv,
                                tile: None,
                            });
                        }
                    }
                }
                if w.functional {
                    spec.apply_data(w, comm.ranks(), comm.topology());
                }
                let footprint = comm.sm_footprint();
                for (rank, completion) in pending.completions.into_iter().enumerate() {
                    let device = comm.ranks()[rank];
                    w.devices[device].release_comm_sms(footprint);
                    w.notify_sm_occupancy(s.now(), device);
                    let completion = completion.expect("all ranks arrived");
                    s.schedule_now(move |w, s| completion.finish(w, s));
                }
            });
        }
    }

    fn name(&self) -> &'static str {
        match self.role {
            CollectiveRole::Overlap => "collective",
            CollectiveRole::Tail => "tail-collective",
            CollectiveRole::Bulk => "bulk-collective",
        }
    }

    fn span_meta(&self) -> SpanMeta {
        SpanMeta::Collective {
            bytes: self.spec.payload_bytes(),
            group: self.group,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::collective_duration;
    use crate::BYTES_PER_ELEM;
    use gpu_sim::arch::GpuArch;
    use gpu_sim::stream::{enqueue, Delay};
    use sim::Sim;

    fn cluster(n: usize) -> (Cluster, ClusterSim) {
        (Cluster::new(n, GpuArch::rtx4090(), true, 11), Sim::new())
    }

    fn comm(world: &Cluster) -> Communicator {
        Communicator::new(
            (0..world.num_devices()).collect(),
            FabricSpec::rtx4090_pcie(),
            16,
        )
    }

    fn streams(world: &mut Cluster) -> Vec<usize> {
        (0..world.num_devices())
            .map(|d| world.devices[d].create_stream())
            .collect()
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let (mut world, mut sim) = cluster(4);
        let comm = comm(&world);
        let streams = streams(&mut world);
        let mut regions = Vec::new();
        for d in 0..4 {
            let data: Vec<f32> = (0..8).map(|i| (d * 8 + i) as f32).collect();
            let buf = world.devices[d].mem.alloc_init(&data);
            regions.push(Region::new(buf, 0, 8));
        }
        for (d, kernel) in comm
            .kernels(CollectiveSpec::AllReduce {
                regions: regions.clone(),
            })
            .into_iter()
            .enumerate()
        {
            enqueue(&mut world, &mut sim, d, streams[d], Box::new(kernel));
        }
        sim.run(&mut world).unwrap();
        for (d, region) in regions.iter().enumerate() {
            let data = world.devices[d].mem.snapshot(region.buf);
            for (i, &x) in data.iter().enumerate() {
                let expected: f32 = (0..4).map(|r| (r * 8 + i) as f32).sum();
                assert_eq!(x, expected, "rank {d} elem {i}");
            }
        }
    }

    #[test]
    fn reduce_scatter_scatters_reduced_chunks() {
        let (mut world, mut sim) = cluster(2);
        let comm = comm(&world);
        let streams = streams(&mut world);
        let mut send = Vec::new();
        let mut recv = Vec::new();
        for d in 0..2 {
            let data: Vec<f32> = (0..8).map(|i| (d as f32 + 1.0) * i as f32).collect();
            let sbuf = world.devices[d].mem.alloc_init(&data);
            let rbuf = world.devices[d].mem.alloc(4);
            send.push(Region::new(sbuf, 0, 8));
            recv.push(Region::new(rbuf, 0, 4));
        }
        for (d, kernel) in comm
            .kernels(CollectiveSpec::ReduceScatter {
                send,
                recv: recv.clone(),
            })
            .into_iter()
            .enumerate()
        {
            enqueue(&mut world, &mut sim, d, streams[d], Box::new(kernel));
        }
        sim.run(&mut world).unwrap();
        // Reduced buffer is 3*i; rank 0 gets elements 0..4, rank 1 gets 4..8.
        assert_eq!(
            world.devices[0].mem.snapshot(recv[0].buf),
            vec![0.0, 3.0, 6.0, 9.0]
        );
        assert_eq!(
            world.devices[1].mem.snapshot(recv[1].buf),
            vec![12.0, 15.0, 18.0, 21.0]
        );
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let (mut world, mut sim) = cluster(2);
        let comm = comm(&world);
        let streams = streams(&mut world);
        let mut send = Vec::new();
        let mut recv = Vec::new();
        for d in 0..2 {
            let sbuf = world.devices[d].mem.alloc_init(&[d as f32; 3]);
            let rbuf = world.devices[d].mem.alloc(6);
            send.push(Region::new(sbuf, 0, 3));
            recv.push(Region::new(rbuf, 0, 6));
        }
        for (d, kernel) in comm
            .kernels(CollectiveSpec::AllGather {
                send,
                recv: recv.clone(),
            })
            .into_iter()
            .enumerate()
        {
            enqueue(&mut world, &mut sim, d, streams[d], Box::new(kernel));
        }
        sim.run(&mut world).unwrap();
        for (d, region) in recv.iter().enumerate() {
            assert_eq!(
                world.devices[d].mem.snapshot(region.buf),
                vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]
            );
        }
    }

    #[test]
    fn all_to_all_routes_segments() {
        let (mut world, mut sim) = cluster(2);
        let comm = comm(&world);
        let streams = streams(&mut world);
        // Rank 0 sends [10, 11] to itself and [12] to rank 1;
        // rank 1 sends [20] to rank 0 and [21, 22] to itself.
        let s0 = world.devices[0].mem.alloc_init(&[10.0, 11.0, 12.0]);
        let s1 = world.devices[1].mem.alloc_init(&[20.0, 21.0, 22.0]);
        let r0 = world.devices[0].mem.alloc(3);
        let r1 = world.devices[1].mem.alloc(3);
        let plan = Rc::new(A2aPlan {
            send_off: vec![vec![0, 2], vec![0, 1]],
            len: vec![vec![2, 1], vec![1, 2]],
            recv_off: vec![vec![0, 2], vec![0, 1]],
        });
        let spec = CollectiveSpec::AllToAllV {
            send: vec![s0, s1],
            recv: vec![r0, r1],
            plan,
        };
        for (d, kernel) in comm.kernels(spec).into_iter().enumerate() {
            enqueue(&mut world, &mut sim, d, streams[d], Box::new(kernel));
        }
        sim.run(&mut world).unwrap();
        assert_eq!(world.devices[0].mem.snapshot(r0), vec![10.0, 11.0, 20.0]);
        assert_eq!(world.devices[1].mem.snapshot(r1), vec![12.0, 21.0, 22.0]);
    }

    #[test]
    fn collective_waits_for_slowest_rank() {
        let (mut world, mut sim) = cluster(2);
        let comm = comm(&world);
        let streams = streams(&mut world);
        let mut regions = Vec::new();
        for d in 0..2 {
            let buf = world.devices[d].mem.alloc(16);
            regions.push(Region::new(buf, 0, 16));
        }
        let spec = CollectiveSpec::AllReduce {
            regions: regions.clone(),
        };
        let expected_comm = comm.duration_of(&spec);
        let kernels = comm.kernels(spec);
        let mut iter = kernels.into_iter();
        let k0 = iter.next().unwrap();
        let k1 = iter.next().unwrap();
        // Rank 1 is delayed by 1 ms before reaching the collective.
        enqueue(&mut world, &mut sim, 0, streams[0], Box::new(k0));
        enqueue(
            &mut world,
            &mut sim,
            1,
            streams[1],
            Box::new(Delay(SimDuration::from_millis(1))),
        );
        enqueue(&mut world, &mut sim, 1, streams[1], Box::new(k1));
        let end = sim.run(&mut world).unwrap();
        let expected = SimDuration::from_millis(1) + expected_comm;
        assert_eq!(end.as_nanos(), expected.as_nanos());
    }

    #[test]
    fn collective_occupies_sms_while_in_flight() {
        let (mut world, mut sim) = cluster(2);
        let comm = comm(&world);
        let streams = streams(&mut world);
        let mut regions = Vec::new();
        for d in 0..2 {
            let buf = world.devices[d].mem.alloc(1 << 20);
            regions.push(Region::new(buf, 0, 1 << 20));
        }
        let kernels = comm.kernels(CollectiveSpec::AllReduce { regions });
        for (d, kernel) in kernels.into_iter().enumerate() {
            enqueue(&mut world, &mut sim, d, streams[d], Box::new(kernel));
        }
        // Mid-flight, both devices hold the footprint.
        sim.run_until(&mut world, sim::SimTime::from_nanos(100_000))
            .unwrap();
        assert_eq!(world.devices[0].comm_sms(), 16);
        assert_eq!(world.devices[1].comm_sms(), 16);
        sim.run(&mut world).unwrap();
        assert_eq!(world.devices[0].comm_sms(), 0);
        assert_eq!(world.devices[1].comm_sms(), 0);
    }

    #[test]
    fn collectives_on_one_communicator_serialize() {
        // Two concurrent AllReduces on separate streams but the same
        // communicator must take the sum of their durations, not the max:
        // they share the fabric rings (NCCL semantics).
        let (mut world, mut sim) = cluster(2);
        let comm = comm(&world);
        let mut all_regions = Vec::new();
        for _ in 0..2 {
            let mut regions = Vec::new();
            for d in 0..2 {
                let buf = world.devices[d].mem.alloc(1 << 20);
                regions.push(Region::new(buf, 0, 1 << 20));
            }
            all_regions.push(regions);
        }
        let spec0 = CollectiveSpec::AllReduce {
            regions: all_regions[0].clone(),
        };
        let one = comm.duration_of(&spec0);
        for regions in all_regions {
            let spec = CollectiveSpec::AllReduce { regions };
            for (d, kernel) in comm.kernels(spec).into_iter().enumerate() {
                let stream = world.devices[d].create_stream();
                enqueue(&mut world, &mut sim, d, stream, Box::new(kernel));
            }
        }
        let end = sim.run(&mut world).unwrap();
        let total = end.as_nanos() as f64;
        assert!(
            total >= 1.9 * one.as_nanos() as f64,
            "collectives overlapped on one communicator: {total} vs {one}"
        );
    }

    #[test]
    fn independent_communicators_run_concurrently() {
        // Two disjoint 2-rank communicators in a 4-GPU box do not share
        // rings and overlap fully.
        let (mut world, mut sim) = cluster(4);
        let mut durations = Vec::new();
        for pair in [[0usize, 1], [2, 3]] {
            let comm = Communicator::new(pair.to_vec(), FabricSpec::rtx4090_pcie(), 16);
            let mut regions = Vec::new();
            for &d in &pair {
                let buf = world.devices[d].mem.alloc(1 << 20);
                regions.push(Region::new(buf, 0, 1 << 20));
            }
            let spec = CollectiveSpec::AllReduce { regions };
            durations.push(comm.duration_of(&spec));
            for (r, kernel) in comm.kernels(spec).into_iter().enumerate() {
                let stream = world.devices[pair[r]].create_stream();
                enqueue(&mut world, &mut sim, pair[r], stream, Box::new(kernel));
            }
        }
        let end = sim.run(&mut world).unwrap();
        let max = durations.iter().map(|d| d.as_nanos()).max().unwrap() as f64;
        assert!(
            (end.as_nanos() as f64) < 1.2 * max,
            "disjoint communicators should overlap: {end:?}"
        );
    }

    #[test]
    fn comm_fault_slows_and_stalls_collectives() {
        let run = |slowdown: f64, stall_ns: u64| -> u64 {
            let (mut world, mut sim) = cluster(2);
            world.comm_fault = gpu_sim::CommFault {
                slowdown,
                stall: SimDuration::from_nanos(stall_ns),
                stall_count: u32::from(stall_ns > 0),
                inter_slowdown: 0.0,
            };
            let comm = comm(&world);
            let streams = streams(&mut world);
            let mut regions = Vec::new();
            for d in 0..2 {
                let buf = world.devices[d].mem.alloc(1 << 20);
                regions.push(Region::new(buf, 0, 1 << 20));
            }
            let spec = CollectiveSpec::AllReduce { regions };
            for (d, kernel) in comm.kernels(spec).into_iter().enumerate() {
                enqueue(&mut world, &mut sim, d, streams[d], Box::new(kernel));
            }
            sim.run(&mut world).unwrap().as_nanos()
        };
        let clean = run(1.0, 0);
        let slowed = run(3.0, 0);
        let stalled = run(1.0, 500_000);
        assert!(
            slowed as f64 >= 2.9 * clean as f64,
            "degraded link should stretch the collective: {slowed} vs {clean}"
        );
        assert_eq!(stalled, clean + 500_000, "stall adds a fixed delay");
    }

    #[test]
    fn abort_pending_releases_arrived_ranks() {
        let (mut world, mut sim) = cluster(2);
        let comm = comm(&world);
        let streams = streams(&mut world);
        let mut regions = Vec::new();
        for d in 0..2 {
            let buf = world.devices[d].mem.alloc(16);
            regions.push(Region::new(buf, 0, 16));
        }
        let kernels = comm.kernels(CollectiveSpec::AllReduce { regions });
        // Only rank 0's kernel is ever enqueued: rank 1 never arrives, so
        // the call parks forever (the hang the watchdog must break).
        let mut iter = kernels.into_iter();
        let k0 = iter.next().unwrap();
        drop(iter);
        enqueue(&mut world, &mut sim, 0, streams[0], Box::new(k0));
        sim.run(&mut world).unwrap();
        assert!(world.check_quiescent().is_err(), "rank 0 is wedged");
        assert_eq!(world.devices[0].comm_sms(), 16);
        assert_eq!(comm.abort_pending(&mut world, &mut sim), 1);
        sim.run(&mut world).unwrap();
        assert!(world.check_quiescent().is_ok(), "abort unwedges the rank");
        assert_eq!(world.devices[0].comm_sms(), 0);
        assert_eq!(comm.abort_pending(&mut world, &mut sim), 0);
    }

    #[test]
    fn recovery_roles_rename_spans() {
        let (mut world, mut sim) = cluster(2);
        world.enable_op_spans();
        let comm = comm(&world);
        let streams = streams(&mut world);
        let mut regions = Vec::new();
        for d in 0..2 {
            let buf = world.devices[d].mem.alloc(16);
            regions.push(Region::new(buf, 0, 16));
        }
        let kernels = comm.kernels_with_role(
            CollectiveSpec::AllReduce { regions },
            Some(3),
            CollectiveRole::Tail,
        );
        for (d, kernel) in kernels.into_iter().enumerate() {
            enqueue(&mut world, &mut sim, d, streams[d], Box::new(kernel));
        }
        sim.run(&mut world).unwrap();
        let spans = world.op_spans.as_ref().unwrap();
        assert!(
            spans.iter().all(|s| s.name == "tail-collective"),
            "{spans:?}"
        );
    }

    #[test]
    fn duration_of_matches_cost_model() {
        let (world, _) = cluster(4);
        let comm = comm(&world);
        let regions: Vec<Region> = (0..4).map(|_| Region::new(0, 0, 1 << 20)).collect();
        let spec = CollectiveSpec::AllReduce { regions };
        let expected = collective_duration(
            Primitive::AllReduce,
            (1u64 << 20) * BYTES_PER_ELEM,
            4,
            comm.fabric(),
        );
        assert_eq!(comm.duration_of(&spec), expected);
    }

    #[test]
    #[should_panic(expected = "equal counts")]
    fn mismatched_allreduce_counts_panic() {
        let (world, _) = cluster(2);
        let comm = comm(&world);
        let _ = comm.kernels(CollectiveSpec::AllReduce {
            regions: vec![Region::new(0, 0, 4), Region::new(0, 0, 8)],
        });
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn single_rank_communicator_panics() {
        let _ = Communicator::new(vec![0], FabricSpec::rtx4090_pcie(), 16);
    }

    fn two_node_comm(world: &Cluster) -> Communicator {
        Communicator::with_topology(
            (0..world.num_devices()).collect(),
            Topology::a800_hdr(2, world.num_devices() / 2),
            16,
            Algorithm::Ring,
        )
    }

    #[test]
    fn multi_node_communicator_charges_hierarchical_duration() {
        let (world, _) = cluster(4);
        let comm = two_node_comm(&world);
        let regions: Vec<Region> = (0..4).map(|_| Region::new(0, 0, 1 << 20)).collect();
        let spec = CollectiveSpec::AllReduce { regions };
        let expected = crate::hierarchical::tiered_duration(
            Primitive::AllReduce,
            (1u64 << 20) * BYTES_PER_ELEM,
            comm.topology(),
            Algorithm::Ring,
        );
        assert_eq!(comm.duration_of(&spec), expected);
        // Hierarchical beats the flat ring at inter-node speed.
        let flat = crate::hierarchical::flat_tiered_duration(
            Primitive::AllReduce,
            (1u64 << 20) * BYTES_PER_ELEM,
            comm.topology(),
            Algorithm::Ring,
        );
        assert!(comm.duration_of(&spec) < flat);
    }

    #[test]
    fn multi_node_allreduce_still_sums_across_ranks() {
        let (mut world, mut sim) = cluster(4);
        let comm = two_node_comm(&world);
        let streams = streams(&mut world);
        let mut regions = Vec::new();
        for d in 0..4 {
            // Integer-valued payloads: hierarchical association is
            // bit-exact with the flat sum.
            let data: Vec<f32> = (0..8).map(|i| (d * 8 + i) as f32).collect();
            let buf = world.devices[d].mem.alloc_init(&data);
            regions.push(Region::new(buf, 0, 8));
        }
        for (d, kernel) in comm
            .kernels(CollectiveSpec::AllReduce {
                regions: regions.clone(),
            })
            .into_iter()
            .enumerate()
        {
            enqueue(&mut world, &mut sim, d, streams[d], Box::new(kernel));
        }
        sim.run(&mut world).unwrap();
        for (d, region) in regions.iter().enumerate() {
            let data = world.devices[d].mem.snapshot(region.buf);
            for (i, &x) in data.iter().enumerate() {
                let expected: f32 = (0..4).map(|r| (r * 8 + i) as f32).sum();
                assert_eq!(x, expected, "rank {d} elem {i}");
            }
        }
    }

    #[test]
    fn inter_fault_spares_single_node_collectives() {
        let run = |nodes: usize, inter_slowdown: f64| -> u64 {
            let (mut world, mut sim) = cluster(4);
            world.comm_fault.inter_slowdown = inter_slowdown;
            let comm = if nodes > 1 {
                two_node_comm(&world)
            } else {
                Communicator::new((0..4).collect(), FabricSpec::a800_nvlink(), 16)
            };
            let streams = streams(&mut world);
            let mut regions = Vec::new();
            for d in 0..4 {
                let buf = world.devices[d].mem.alloc(1 << 20);
                regions.push(Region::new(buf, 0, 1 << 20));
            }
            let spec = CollectiveSpec::AllReduce { regions };
            for (d, kernel) in comm.kernels(spec).into_iter().enumerate() {
                enqueue(&mut world, &mut sim, d, streams[d], Box::new(kernel));
            }
            sim.run(&mut world).unwrap().as_nanos()
        };
        // A degraded inter-node link leaves single-node collectives
        // untouched but stretches node-spanning ones.
        assert_eq!(run(1, 4.0), run(1, 1.0));
        let spanned_clean = run(2, 1.0);
        let spanned_faulted = run(2, 4.0);
        assert!(
            spanned_faulted as f64 >= 3.9 * spanned_clean as f64,
            "inter fault should stretch node-spanning collectives: \
             {spanned_faulted} vs {spanned_clean}"
        );
    }

    #[test]
    fn tiered_link_loads_route_over_the_leader_ring() {
        let (world, _) = cluster(4);
        let comm = two_node_comm(&world);
        let regions: Vec<Region> = (0..4).map(|_| Region::new(0, 0, 1 << 20)).collect();
        let spec = CollectiveSpec::AllReduce { regions };
        let loads = spec.link_loads_tiered(comm.topology());
        let topo = comm.topology();
        let inter: u64 = loads
            .iter()
            .filter(|&&(s, d, _)| !topo.same_node(s, d))
            .map(|&(_, _, b)| b)
            .sum();
        let flat: u64 = spec
            .link_loads(4)
            .iter()
            .filter(|&&(s, d, _)| !topo.same_node(s, d))
            .map(|&(_, _, b)| b)
            .sum();
        assert!(inter > 0 && inter < flat, "inter {inter} vs flat {flat}");
    }
}
