//! AllGather: every rank contributes an equal-size send region and
//! receives the rank-ordered concatenation of all contributions.

use std::ops::Range;

use gpu_sim::cluster::Cluster;
use gpu_sim::device::DeviceId;
use gpu_sim::memory::BufferId;

use super::Region;
use crate::cost::BYTES_PER_ELEM;

/// Per-rank payload bytes: the gathered total (what each rank receives),
/// matching the ring formula's `S`.
pub(super) fn payload_bytes(recv: &[Region]) -> u64 {
    recv.first().map_or(0, |r| r.count as u64) * BYTES_PER_ELEM
}

/// Shape checks; panics on SPMD-inconsistent arguments.
pub(super) fn validate(send: &[Region], recv: &[Region], n: usize) {
    assert_eq!(send.len(), n, "AllGather needs one send per rank");
    assert_eq!(recv.len(), n, "AllGather needs one recv per rank");
    let count = send[0].count;
    assert!(
        send.iter().all(|r| r.count == count),
        "AllGather send counts must match"
    );
    assert!(
        recv.iter().all(|r| r.count == count * n),
        "AllGather recv counts must be count * n"
    );
}

/// Functional-mode data semantics: concatenate all contributions in rank
/// order into every recv region.
pub(super) fn apply_data(
    world: &mut Cluster,
    ranks: &[DeviceId],
    send: &[Region],
    recv: &[Region],
) {
    let count = send[0].count;
    let contributions: Vec<Vec<f32>> = send
        .iter()
        .enumerate()
        .map(|(r, region)| {
            world.devices[ranks[r]].mem.data(region.buf)[region.offset..region.offset + count]
                .to_vec()
        })
        .collect();
    for (r, region) in recv.iter().enumerate() {
        let data = world.devices[ranks[r]].mem.data_mut(region.buf);
        for (src, contribution) in contributions.iter().enumerate() {
            let dst = region.offset + src * count;
            data[dst..dst + count].copy_from_slice(contribution);
        }
    }
}

/// The local elements rank `rank` contributes.
pub(super) fn send_ranges(send: &[Region], rank: usize) -> Vec<(BufferId, Range<usize>)> {
    let r = send[rank];
    vec![(r.buf, r.offset..r.offset + r.count)]
}

/// The local elements rank `rank` receives (the full concatenation).
pub(super) fn recv_ranges(recv: &[Region], rank: usize) -> Vec<(BufferId, Range<usize>)> {
    let r = recv[rank];
    vec![(r.buf, r.offset..r.offset + r.count)]
}
