//! In-place AllReduce: every rank contributes one equal-size region and
//! receives the element-wise sum back into the same region.

use std::ops::Range;

use gpu_sim::cluster::Cluster;
use gpu_sim::device::DeviceId;
use gpu_sim::memory::BufferId;

use super::Region;
use crate::cost::BYTES_PER_ELEM;

/// Per-rank payload bytes (the `S` of the ring cost formulas).
pub(super) fn payload_bytes(regions: &[Region]) -> u64 {
    regions.first().map_or(0, |r| r.count as u64) * BYTES_PER_ELEM
}

/// Shape checks; panics on SPMD-inconsistent arguments (like NCCL aborts).
pub(super) fn validate(regions: &[Region], n: usize) {
    assert_eq!(regions.len(), n, "AllReduce needs one region per rank");
    let count = regions[0].count;
    assert!(
        regions.iter().all(|r| r.count == count),
        "AllReduce regions must have equal counts"
    );
}

/// Functional-mode data semantics: sum all regions, broadcast the sum.
pub(super) fn apply_data(world: &mut Cluster, ranks: &[DeviceId], regions: &[Region]) {
    let count = regions[0].count;
    let mut acc = vec![0.0f32; count];
    for (r, region) in regions.iter().enumerate() {
        let data = world.devices[ranks[r]].mem.data(region.buf);
        for (a, &x) in acc
            .iter_mut()
            .zip(&data[region.offset..region.offset + count])
        {
            *a += x;
        }
    }
    for (r, region) in regions.iter().enumerate() {
        let data = world.devices[ranks[r]].mem.data_mut(region.buf);
        data[region.offset..region.offset + count].copy_from_slice(&acc);
    }
}

/// Functional-mode data semantics of the hierarchical schedule: each
/// node reduces its ranks' contributions first (rank order within the
/// node), then the node partials reduce across nodes (node order), and
/// the total broadcasts everywhere. The association differs from the
/// flat left-to-right sum, but both orders agree bit-exactly whenever
/// every intermediate sum is exactly representable (the property the
/// hierarchical proptest pins on integer-valued tensors).
pub(super) fn apply_data_hierarchical(
    world: &mut Cluster,
    ranks: &[DeviceId],
    regions: &[Region],
    node_of: &[usize],
) {
    let count = regions[0].count;
    let n_nodes = node_of.iter().max().map_or(0, |m| m + 1);
    let mut partials = vec![vec![0.0f32; count]; n_nodes];
    for (r, region) in regions.iter().enumerate() {
        let data = world.devices[ranks[r]].mem.data(region.buf);
        let acc = &mut partials[node_of[r]];
        for (a, &x) in acc
            .iter_mut()
            .zip(&data[region.offset..region.offset + count])
        {
            *a += x;
        }
    }
    let mut acc = vec![0.0f32; count];
    for partial in &partials {
        for (a, &x) in acc.iter_mut().zip(partial) {
            *a += x;
        }
    }
    for (r, region) in regions.iter().enumerate() {
        let data = world.devices[ranks[r]].mem.data_mut(region.buf);
        data[region.offset..region.offset + count].copy_from_slice(&acc);
    }
}

/// The local elements rank `rank` contributes (read from arrival on).
pub(super) fn send_ranges(regions: &[Region], rank: usize) -> Vec<(BufferId, Range<usize>)> {
    let r = regions[rank];
    vec![(r.buf, r.offset..r.offset + r.count)]
}

/// The local elements rank `rank` receives (written at completion); the
/// operation is in place, so this is the send region again.
pub(super) fn recv_ranges(regions: &[Region], rank: usize) -> Vec<(BufferId, Range<usize>)> {
    send_ranges(regions, rank)
}
