//! ReduceScatter: every rank contributes a full-size send region; rank `r`
//! receives the `r`-th chunk of the element-wise sum.

use std::ops::Range;

use gpu_sim::cluster::Cluster;
use gpu_sim::device::DeviceId;
use gpu_sim::memory::BufferId;

use super::Region;
use crate::cost::BYTES_PER_ELEM;

/// Per-rank payload bytes (the full contribution, not the chunk).
pub(super) fn payload_bytes(send: &[Region]) -> u64 {
    send.first().map_or(0, |r| r.count as u64) * BYTES_PER_ELEM
}

/// Shape checks; panics on SPMD-inconsistent arguments.
pub(super) fn validate(send: &[Region], recv: &[Region], n: usize) {
    assert_eq!(send.len(), n, "ReduceScatter needs one send per rank");
    assert_eq!(recv.len(), n, "ReduceScatter needs one recv per rank");
    let count = send[0].count;
    assert!(
        count.is_multiple_of(n),
        "ReduceScatter count must divide by ranks"
    );
    assert!(
        send.iter().all(|r| r.count == count),
        "ReduceScatter send counts must match"
    );
    assert!(
        recv.iter().all(|r| r.count == count / n),
        "ReduceScatter recv counts must be count / n"
    );
}

/// Functional-mode data semantics: sum all sends, scatter chunk `r` to
/// rank `r`'s recv region.
pub(super) fn apply_data(
    world: &mut Cluster,
    ranks: &[DeviceId],
    send: &[Region],
    recv: &[Region],
) {
    let n = ranks.len();
    let count = send[0].count;
    let chunk = count / n;
    let mut acc = vec![0.0f32; count];
    for (r, region) in send.iter().enumerate() {
        let data = world.devices[ranks[r]].mem.data(region.buf);
        for (a, &x) in acc
            .iter_mut()
            .zip(&data[region.offset..region.offset + count])
        {
            *a += x;
        }
    }
    for (r, region) in recv.iter().enumerate() {
        let data = world.devices[ranks[r]].mem.data_mut(region.buf);
        data[region.offset..region.offset + chunk]
            .copy_from_slice(&acc[r * chunk..(r + 1) * chunk]);
    }
}

/// The local elements rank `rank` contributes.
pub(super) fn send_ranges(send: &[Region], rank: usize) -> Vec<(BufferId, Range<usize>)> {
    let r = send[rank];
    vec![(r.buf, r.offset..r.offset + r.count)]
}

/// The local elements rank `rank` receives (its reduced chunk).
pub(super) fn recv_ranges(recv: &[Region], rank: usize) -> Vec<(BufferId, Range<usize>)> {
    let r = recv[rank];
    vec![(r.buf, r.offset..r.offset + r.count)]
}
