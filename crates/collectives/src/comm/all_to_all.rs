//! Personalized All-to-All(v) exchange following an [`A2aPlan`].

use std::ops::Range;

use gpu_sim::cluster::Cluster;
use gpu_sim::device::DeviceId;
use gpu_sim::memory::BufferId;
use interconnect::FabricSpec;
use sim::SimDuration;

use super::A2aPlan;
use crate::cost::{all_to_all_duration, BYTES_PER_ELEM};

/// Per-rank payload bytes: the heaviest single rank's egress.
pub(super) fn payload_bytes(plan: &A2aPlan) -> u64 {
    plan.len
        .iter()
        .map(|row| row.iter().map(|&l| l as u64).sum::<u64>())
        .max()
        .unwrap_or(0)
        .saturating_mul(BYTES_PER_ELEM)
}

/// Exchange duration: the slowest rank's egress pattern bounds it.
pub(super) fn duration(plan: &A2aPlan, n: usize, fabric: &FabricSpec) -> SimDuration {
    (0..n)
        .map(|src| {
            let per_dest: Vec<u64> = (0..n)
                .filter(|&d| d != src)
                .map(|d| plan.len[src][d] as u64 * BYTES_PER_ELEM)
                .collect();
            all_to_all_duration(&per_dest, n, fabric)
        })
        .fold(SimDuration::ZERO, SimDuration::max)
}

/// Shape checks; panics on SPMD-inconsistent arguments.
pub(super) fn validate(send: &[BufferId], recv: &[BufferId], plan: &A2aPlan, n: usize) {
    assert_eq!(send.len(), n, "AllToAll needs one send buffer per rank");
    assert_eq!(recv.len(), n, "AllToAll needs one recv buffer per rank");
    assert_eq!(plan.send_off.len(), n, "plan send_off rank mismatch");
    assert_eq!(plan.len.len(), n, "plan len rank mismatch");
    assert_eq!(plan.recv_off.len(), n, "plan recv_off rank mismatch");
}

/// Functional-mode data semantics: move each `(src, dst)` segment.
pub(super) fn apply_data(
    world: &mut Cluster,
    ranks: &[DeviceId],
    send: &[BufferId],
    recv: &[BufferId],
    plan: &A2aPlan,
) {
    let n = ranks.len();
    for src in 0..n {
        for dst in 0..n {
            let len = plan.len[src][dst];
            if len == 0 {
                continue;
            }
            let payload: Vec<f32> = {
                let data = world.devices[ranks[src]].mem.data(send[src]);
                let off = plan.send_off[src][dst];
                data[off..off + len].to_vec()
            };
            let data = world.devices[ranks[dst]].mem.data_mut(recv[dst]);
            let off = plan.recv_off[dst][src];
            data[off..off + len].copy_from_slice(&payload);
        }
    }
}

/// The local send segments rank `rank` contributes (one per non-empty
/// destination).
pub(super) fn send_ranges(
    send: &[BufferId],
    plan: &A2aPlan,
    rank: usize,
) -> Vec<(BufferId, Range<usize>)> {
    plan.len[rank]
        .iter()
        .enumerate()
        .filter(|&(_, &len)| len > 0)
        .map(|(dst, &len)| {
            let off = plan.send_off[rank][dst];
            (send[rank], off..off + len)
        })
        .collect()
}

/// The local recv segments rank `rank` receives (one per non-empty
/// source).
pub(super) fn recv_ranges(
    recv: &[BufferId],
    plan: &A2aPlan,
    rank: usize,
) -> Vec<(BufferId, Range<usize>)> {
    plan.recv_off[rank]
        .iter()
        .enumerate()
        .filter(|&(src, _)| plan.len[src][rank] > 0)
        .map(|(src, &off)| (recv[rank], off..off + plan.len[src][rank]))
        .collect()
}
