//! One-sided point-to-point copies (NVLink peer writes / `ncclSend`+`Recv`
//! fused into a put), used by the decomposition baselines.

use gpu_sim::cluster::{Cluster, SpanMeta};
use gpu_sim::device::DeviceId;
use gpu_sim::memory::BufferId;
use gpu_sim::monitor::LinkTransfer;
use gpu_sim::stream::{Kernel, LaunchCtx};
use gpu_sim::ClusterSim;
use interconnect::FabricSpec;

use crate::cost::BYTES_PER_ELEM;

/// A one-sided copy of `count` elements from this device's buffer into a
/// peer's buffer, enqueued on the *source* rank's stream. The destination
/// does not participate (peer-to-peer put semantics); callers needing
/// arrival ordering should follow up with events.
#[derive(Debug)]
pub struct P2pCopy {
    /// Fabric the copy crosses.
    pub fabric: FabricSpec,
    /// Source buffer (on the launching device).
    pub src_buf: BufferId,
    /// Source element offset.
    pub src_off: usize,
    /// Destination device.
    pub dst_dev: DeviceId,
    /// Destination buffer.
    pub dst_buf: BufferId,
    /// Destination element offset.
    pub dst_off: usize,
    /// Element count.
    pub count: usize,
    /// SMs held on the source device while the copy is in flight.
    pub sm_footprint: u32,
}

impl Kernel for P2pCopy {
    fn launch(self: Box<Self>, ctx: LaunchCtx, world: &mut Cluster, sim: &mut ClusterSim) {
        assert!(
            self.fabric.peer_to_peer,
            "P2pCopy requires a peer-to-peer capable fabric"
        );
        let src_dev = ctx.device;
        world.devices[src_dev].occupy_comm_sms(self.sm_footprint);
        world.notify_sm_occupancy(sim.now(), src_dev);
        let noise = 1.0
            + world.devices[src_dev]
                .rng
                .uniform(0.0, world.noise.comm_frac.max(0.0));
        let duration = self
            .fabric
            .p2p
            .transfer_time(self.count as u64 * BYTES_PER_ELEM)
            .mul_f64(noise);
        if let Some(monitor) = world.monitor.clone() {
            monitor.on_link_transfer(&LinkTransfer {
                src: src_dev,
                dst: self.dst_dev,
                bytes: self.count as u64 * BYTES_PER_ELEM,
                start: sim.now(),
                end: sim.now() + duration,
            });
        }
        sim.schedule_in(duration, move |w, s| {
            if w.functional {
                let payload: Vec<f32> = {
                    let data = w.devices[src_dev].mem.data(self.src_buf);
                    data[self.src_off..self.src_off + self.count].to_vec()
                };
                let data = w.devices[self.dst_dev].mem.data_mut(self.dst_buf);
                data[self.dst_off..self.dst_off + self.count].copy_from_slice(&payload);
            }
            w.devices[src_dev].release_comm_sms(self.sm_footprint);
            w.notify_sm_occupancy(s.now(), src_dev);
            ctx.completion.finish(w, s);
        });
    }

    fn name(&self) -> &'static str {
        "p2p_copy"
    }

    fn span_meta(&self) -> SpanMeta {
        SpanMeta::Collective {
            bytes: self.count as u64 * BYTES_PER_ELEM,
            group: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch::GpuArch;
    use gpu_sim::stream::enqueue;
    use sim::Sim;

    #[test]
    fn copies_data_between_devices() {
        let mut world = Cluster::new(2, GpuArch::a800(), true, 1);
        let mut sim: ClusterSim = Sim::new();
        let src = world.devices[0].mem.alloc_init(&[1.0, 2.0, 3.0, 4.0]);
        let dst = world.devices[1].mem.alloc(4);
        let s = world.devices[0].create_stream();
        enqueue(
            &mut world,
            &mut sim,
            0,
            s,
            Box::new(P2pCopy {
                fabric: FabricSpec::a800_nvlink(),
                src_buf: src,
                src_off: 1,
                dst_dev: 1,
                dst_buf: dst,
                dst_off: 2,
                count: 2,
                sm_footprint: 8,
            }),
        );
        let end = sim.run(&mut world).unwrap();
        assert_eq!(world.devices[1].mem.snapshot(dst), vec![0.0, 0.0, 2.0, 3.0]);
        let expected = FabricSpec::a800_nvlink()
            .p2p
            .transfer_time(2 * BYTES_PER_ELEM);
        assert_eq!(end.as_nanos(), expected.as_nanos());
        assert_eq!(world.devices[0].comm_sms(), 0);
    }

    #[test]
    #[should_panic(expected = "peer-to-peer")]
    fn pcie_fabric_rejects_p2p() {
        let mut world = Cluster::new(2, GpuArch::rtx4090(), false, 1);
        let mut sim: ClusterSim = Sim::new();
        let s = world.devices[0].create_stream();
        let b = world.devices[0].mem.alloc(4);
        enqueue(
            &mut world,
            &mut sim,
            0,
            s,
            Box::new(P2pCopy {
                fabric: FabricSpec::rtx4090_pcie(),
                src_buf: b,
                src_off: 0,
                dst_dev: 1,
                dst_buf: b,
                dst_off: 0,
                count: 4,
                sm_footprint: 8,
            }),
        );
        sim.run(&mut world).unwrap();
    }
}
