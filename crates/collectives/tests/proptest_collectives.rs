//! Property-based tests of the collective library: data semantics for
//! arbitrary sizes/offsets/rank counts, and cost-model monotonicity.

use collectives::{
    collective_duration, inter_bytes_flat, inter_bytes_hierarchical, A2aPlan, Algorithm,
    CollectiveSpec, Communicator, Primitive, Region,
};
use gpu_sim::arch::GpuArch;
use gpu_sim::stream::enqueue;
use gpu_sim::{Cluster, ClusterSim};
use interconnect::FabricSpec;
use proptest::prelude::*;
use sim::{DetRng, Sim};
use std::rc::Rc;
use topology::Topology;

fn run_collective(
    n: usize,
    seed: u64,
    spec_of: impl FnMut(&mut Cluster) -> CollectiveSpec,
) -> Cluster {
    run_collective_on(
        Topology::single_node(FabricSpec::rtx4090_pcie(), n),
        seed,
        spec_of,
    )
}

/// Runs one collective over an explicit topology — the hierarchical
/// schedule and dataflow whenever it spans nodes — and returns the
/// cluster for buffer inspection.
fn run_collective_on(
    topo: Topology,
    seed: u64,
    mut spec_of: impl FnMut(&mut Cluster) -> CollectiveSpec,
) -> Cluster {
    let n = topo.n_gpus();
    let mut world = Cluster::new(n, GpuArch::rtx4090(), true, seed);
    let mut sim: ClusterSim = Sim::new();
    let comm = Communicator::with_topology((0..n).collect(), topo, 16, Algorithm::Ring);
    let streams: Vec<usize> = (0..n).map(|d| world.devices[d].create_stream()).collect();
    let spec = spec_of(&mut world);
    for (d, kernel) in comm.kernels(spec).into_iter().enumerate() {
        enqueue(&mut world, &mut sim, d, streams[d], Box::new(kernel));
    }
    sim.run(&mut world).expect("collective run");
    world
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// AllReduce computes the element-wise sum regardless of size, offset,
    /// and rank count.
    #[test]
    fn allreduce_is_elementwise_sum(n in 2usize..6, count in 1usize..64,
                                    offset in 0usize..16, seed in any::<u64>()) {
        let mut sources: Vec<Vec<f32>> = Vec::new();
        let world = run_collective(n, seed, |world| {
            let mut rng = DetRng::new(seed ^ 1);
            let mut regions = Vec::new();
            sources.clear();
            for d in 0..n {
                let data: Vec<f32> =
                    (0..offset + count).map(|_| rng.uniform(-4.0, 4.0) as f32).collect();
                let buf = world.devices[d].mem.alloc_init(&data);
                sources.push(data);
                regions.push(Region::new(buf, offset, count));
            }
            CollectiveSpec::AllReduce { regions }
        });
        for d in 0..n {
            let out = world.devices[d].mem.snapshot(0); // send buffer is id 0 per device
            for i in 0..count {
                let expected: f32 = sources.iter().map(|s| s[offset + i]).sum();
                prop_assert!((out[offset + i] - expected).abs() < 1e-4);
            }
            // Prefix (outside the region) is untouched.
            for i in 0..offset {
                prop_assert_eq!(out[i], sources[d][i]);
            }
        }
    }

    /// ReduceScatter chunks equal the AllReduce result sliced per rank.
    #[test]
    fn reduce_scatter_matches_sliced_sum(n in 2usize..6, chunk in 1usize..32,
                                         seed in any::<u64>()) {
        let count = chunk * n;
        let mut sources: Vec<Vec<f32>> = Vec::new();
        let world = run_collective(n, seed, |world| {
            let mut rng = DetRng::new(seed ^ 2);
            let mut send = Vec::new();
            let mut recv = Vec::new();
            sources.clear();
            for d in 0..n {
                let data: Vec<f32> = (0..count).map(|_| rng.uniform(-4.0, 4.0) as f32).collect();
                let sbuf = world.devices[d].mem.alloc_init(&data);
                let rbuf = world.devices[d].mem.alloc(chunk);
                sources.push(data);
                send.push(Region::new(sbuf, 0, count));
                recv.push(Region::new(rbuf, 0, chunk));
            }
            CollectiveSpec::ReduceScatter { send, recv }
        });
        for d in 0..n {
            // recv buffer is the second allocation (id 1) on each device.
            let out = world.devices[d].mem.snapshot(1);
            for i in 0..chunk {
                let expected: f32 = sources.iter().map(|s| s[d * chunk + i]).sum();
                prop_assert!((out[i] - expected).abs() < 1e-4);
            }
        }
    }

    /// A random All-to-All(v) plan delivers every segment unchanged.
    #[test]
    fn all_to_all_delivers_segments(n in 2usize..5, per_pair in 1usize..8,
                                    seed in any::<u64>()) {
        let seg = per_pair;
        let total = seg * n;
        let mut sources: Vec<Vec<f32>> = Vec::new();
        let world = run_collective(n, seed, |world| {
            let mut rng = DetRng::new(seed ^ 3);
            let mut send = Vec::new();
            let mut recv = Vec::new();
            sources.clear();
            for d in 0..n {
                let data: Vec<f32> = (0..total).map(|_| rng.uniform(-4.0, 4.0) as f32).collect();
                send.push(world.devices[d].mem.alloc_init(&data));
                recv.push(world.devices[d].mem.alloc(total));
                sources.push(data);
            }
            let send_off: Vec<Vec<usize>> =
                (0..n).map(|_| (0..n).map(|j| j * seg).collect()).collect();
            let len: Vec<Vec<usize>> = vec![vec![seg; n]; n];
            let recv_off: Vec<Vec<usize>> =
                (0..n).map(|_| (0..n).map(|s| s * seg).collect()).collect();
            CollectiveSpec::AllToAllV {
                send,
                recv,
                plan: Rc::new(A2aPlan { send_off, len, recv_off }),
            }
        });
        for dest in 0..n {
            // recv buffer is the second allocation (id 1) on each device.
            let out = world.devices[dest].mem.snapshot(1);
            for src in 0..n {
                for i in 0..seg {
                    prop_assert_eq!(out[src * seg + i], sources[src][dest * seg + i]);
                }
            }
        }
    }

    /// The cost model is monotone in payload size for every primitive and
    /// rank count.
    #[test]
    fn cost_monotone_in_bytes(n in 2usize..9, base in 1u64..1_000_000) {
        let fabric = FabricSpec::rtx4090_pcie();
        for prim in Primitive::ALL {
            let small = collective_duration(prim, base * n as u64, n, &fabric);
            let large = collective_duration(prim, base * n as u64 * 4, n, &fabric);
            prop_assert!(large >= small, "{prim} on {n} ranks");
        }
    }

    /// The hierarchical AllReduce (reduce-scatter in-node, all-reduce
    /// across leaders, all-gather back) is bit-exact with the flat ring
    /// on integer-valued tensors: integers this small sum exactly in
    /// f32, so any reassociation the schedule performs must be
    /// invisible.
    #[test]
    fn hierarchical_allreduce_is_bit_exact_with_flat(
        nodes in 2usize..4, g in 1usize..4, count in 1usize..48,
        offset in 0usize..8, seed in any::<u64>(),
    ) {
        let n = nodes * g;
        let mut sources: Vec<Vec<f32>> = Vec::new();
        let spec_of = |sources: &mut Vec<Vec<f32>>, world: &mut Cluster| {
            let mut rng = DetRng::new(seed ^ 5);
            let mut regions = Vec::new();
            sources.clear();
            for d in 0..n {
                let data: Vec<f32> = (0..offset + count)
                    .map(|_| (rng.uniform(-8.0, 8.0) as f32).round())
                    .collect();
                let buf = world.devices[d].mem.alloc_init(&data);
                sources.push(data);
                regions.push(Region::new(buf, offset, count));
            }
            CollectiveSpec::AllReduce { regions }
        };
        let hier = run_collective_on(Topology::a800_hdr(nodes, g), seed, |w| {
            spec_of(&mut sources, w)
        });
        let flat = run_collective_on(
            Topology::single_node(FabricSpec::a800_nvlink(), n),
            seed,
            |w| spec_of(&mut sources, w),
        );
        for d in 0..n {
            let h = hier.devices[d].mem.snapshot(0);
            let f = flat.devices[d].mem.snapshot(0);
            prop_assert_eq!(&h, &f, "rank {} diverged between schedules", d);
            for i in 0..count {
                let expected: f32 = sources.iter().map(|s| s[offset + i]).sum();
                prop_assert_eq!(h[offset + i].to_bits(), expected.to_bits());
            }
        }
    }

    /// The hierarchical schedule never crosses node boundaries with more
    /// bytes than the flat ring, for every sampled (nodes, gpus/node,
    /// payload) — and strictly fewer once nodes hold more than one GPU
    /// and the payload is at least one element per rank.
    #[test]
    fn hierarchical_never_exceeds_flat_inter_bytes(
        nodes in 1usize..5, g in 1usize..5, bytes in 0u64..(64 << 20),
    ) {
        prop_assume!(nodes * g >= 2);
        let topo = Topology::a800_hdr(nodes, g);
        for prim in [Primitive::AllReduce, Primitive::ReduceScatter, Primitive::AllGather] {
            let flat = inter_bytes_flat(prim, bytes, &topo);
            let hier = inter_bytes_hierarchical(prim, bytes, &topo);
            prop_assert!(hier <= flat, "{prim}: hier {} > flat {}", hier, flat);
            if nodes >= 2 && g >= 2 && bytes >= (nodes * g) as u64 {
                prop_assert!(hier < flat, "{prim}: hier {} not < flat {}", hier, flat);
            }
            if nodes == 1 {
                prop_assert_eq!(hier, 0);
                prop_assert_eq!(flat, 0);
            }
        }
    }
}
