//! The GEMM shape ranges of Table 3.
//!
//! Table 3 gives, per (primitive, GPU), a range of output sizes `M x N`
//! (in units of 1024^2 elements) and accumulation depths `K` (units of
//! 1024). The paper evaluates "over 200 GEMM sizes from real-world
//! workloads" inside these ranges; here a deterministic grid over
//! power-of-two-friendly `M`, `N`, and `K` values fills each range.

use collectives::Primitive;
use gpu_sim::gemm::GemmDims;

/// The two evaluation platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuKind {
    /// RTX 4090 server (PCIe).
    Rtx4090,
    /// A800 server (NVLink).
    A800,
}

impl std::fmt::Display for GpuKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GpuKind::Rtx4090 => "RTX4090",
            GpuKind::A800 => "A800",
        })
    }
}

/// One Table 3 cell: the `M x N` product range (in Mi elements) and `K`
/// range (in Ki).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeRange {
    /// Inclusive `M * N` range in units of `1024^2` elements.
    pub mn_mi: (u64, u64),
    /// Inclusive `K` range in units of `1024`.
    pub k_ki: (u32, u32),
}

/// Returns the Table 3 range for a primitive on a platform, or `None`
/// where the paper does not evaluate the combination (All-to-All is
/// 4090-only).
pub fn shape_range(primitive: Primitive, gpu: GpuKind) -> Option<ShapeRange> {
    use GpuKind::*;
    use Primitive::*;
    match (primitive, gpu) {
        (AllReduce, Rtx4090) => Some(ShapeRange {
            mn_mi: (64, 256),
            k_ki: (4, 8),
        }),
        (AllReduce, A800) => Some(ShapeRange {
            mn_mi: (16, 64),
            k_ki: (4, 8),
        }),
        (ReduceScatter, Rtx4090) => Some(ShapeRange {
            mn_mi: (64, 256),
            k_ki: (8, 16),
        }),
        (ReduceScatter, A800) => Some(ShapeRange {
            mn_mi: (16, 64),
            k_ki: (8, 16),
        }),
        (AllToAll, Rtx4090) => Some(ShapeRange {
            mn_mi: (8, 48),
            k_ki: (4, 8),
        }),
        _ => None,
    }
}

const M_CANDIDATES: [u32; 4] = [2048, 4096, 8192, 16384];
const N_CANDIDATES: [u32; 4] = [2048, 4096, 8192, 16384];

/// Generates the deterministic shape grid for one Table 3 cell.
///
/// Returns an empty vector for combinations the paper does not evaluate.
pub fn table3_shapes(primitive: Primitive, gpu: GpuKind) -> Vec<GemmDims> {
    let Some(range) = shape_range(primitive, gpu) else {
        return Vec::new();
    };
    let (mn_lo, mn_hi) = (range.mn_mi.0 << 20, range.mn_mi.1 << 20);
    let mut shapes = Vec::new();
    for &m in &M_CANDIDATES {
        for &n in &N_CANDIDATES {
            let mn = m as u64 * n as u64;
            if mn < mn_lo || mn > mn_hi {
                continue;
            }
            let mut k_ki = range.k_ki.0;
            while k_ki <= range.k_ki.1 {
                shapes.push(GemmDims::new(m, n, k_ki * 1024));
                k_ki += 2;
            }
        }
    }
    shapes.sort_by_key(|d| (d.m as u64 * d.n as u64, d.k));
    shapes
}

/// Every (primitive, GPU, shape) combination of Table 3 — the full
/// operator-evaluation workload of Fig. 9.
pub fn all_table3() -> Vec<(Primitive, GpuKind, GemmDims)> {
    let mut out = Vec::new();
    for gpu in [GpuKind::Rtx4090, GpuKind::A800] {
        for prim in [
            Primitive::AllReduce,
            Primitive::ReduceScatter,
            Primitive::AllToAll,
        ] {
            for dims in table3_shapes(prim, gpu) {
                out.push((prim, gpu, dims));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_has_shapes() {
        for (prim, gpu) in [
            (Primitive::AllReduce, GpuKind::Rtx4090),
            (Primitive::AllReduce, GpuKind::A800),
            (Primitive::ReduceScatter, GpuKind::Rtx4090),
            (Primitive::ReduceScatter, GpuKind::A800),
            (Primitive::AllToAll, GpuKind::Rtx4090),
        ] {
            let shapes = table3_shapes(prim, gpu);
            assert!(shapes.len() >= 4, "{prim} on {gpu}: {}", shapes.len());
        }
    }

    #[test]
    fn shapes_respect_their_ranges() {
        for (prim, gpu, dims) in all_table3() {
            let range = shape_range(prim, gpu).unwrap();
            let mn = dims.m as u64 * dims.n as u64;
            assert!(mn >= range.mn_mi.0 << 20 && mn <= range.mn_mi.1 << 20);
            let k_ki = dims.k / 1024;
            assert!(k_ki >= range.k_ki.0 && k_ki <= range.k_ki.1);
        }
    }

    #[test]
    fn unevaluated_combinations_are_empty() {
        assert!(table3_shapes(Primitive::AllToAll, GpuKind::A800).is_empty());
        assert!(table3_shapes(Primitive::AllGather, GpuKind::Rtx4090).is_empty());
    }

    #[test]
    fn full_sweep_reaches_papers_scale() {
        // Sec. 6.1.2: "over 200 GEMM sizes"; the grid delivers a sweep of
        // the same order across all cells and parallelism settings (each
        // shape runs at 2-3 parallelism degrees in fig9).
        let total = all_table3().len();
        assert!(total >= 60, "only {total} shapes");
    }

    #[test]
    fn shapes_are_sorted_and_unique() {
        let shapes = table3_shapes(Primitive::AllReduce, GpuKind::Rtx4090);
        for pair in shapes.windows(2) {
            let a = (pair[0].m as u64 * pair[0].n as u64, pair[0].k);
            let b = (pair[1].m as u64 * pair[1].n as u64, pair[1].k);
            assert!(a <= b);
        }
        let mut dedup = shapes.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), shapes.len());
    }
}
