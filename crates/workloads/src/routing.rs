//! MoE token-routing generators for the All-to-All workloads (§2.3).

use sim::DetRng;

/// Uniform random routing: every token is routed to a uniformly random
/// destination rank. The expected load is balanced; instantaneous load
/// fluctuates like real top-k gating under a well-trained router.
pub fn balanced_routing(tokens: usize, ranks: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(ranks > 0, "need at least one rank");
    let mut rng = DetRng::new(seed);
    (0..ranks)
        .map(|_| {
            (0..tokens)
                .map(|_| rng.next_below(ranks as u64) as usize)
                .collect()
        })
        .collect()
}

/// Skewed routing: destination 0 receives `hot_fraction` of the traffic,
/// the rest spreads uniformly — the "inherent workload imbalance" the
/// paper notes for expert parallelism.
///
/// # Panics
///
/// Panics if `hot_fraction` is outside `[0, 1]` or `ranks == 0`.
pub fn skewed_routing(
    tokens: usize,
    ranks: usize,
    hot_fraction: f64,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(ranks > 0, "need at least one rank");
    assert!(
        (0.0..=1.0).contains(&hot_fraction),
        "hot fraction {hot_fraction} out of range"
    );
    let mut rng = DetRng::new(seed);
    (0..ranks)
        .map(|_| {
            (0..tokens)
                .map(|_| {
                    if rng.next_f64() < hot_fraction {
                        0
                    } else {
                        rng.next_below(ranks as u64) as usize
                    }
                })
                .collect()
        })
        .collect()
}

/// Per-destination token counts of one routing table.
pub fn load_histogram(table: &[usize], ranks: usize) -> Vec<usize> {
    let mut counts = vec![0usize; ranks];
    for &d in table {
        counts[d] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_routing_is_roughly_uniform() {
        let routing = balanced_routing(40_000, 4, 7);
        for table in &routing {
            let hist = load_histogram(table, 4);
            for &count in &hist {
                let frac = count as f64 / 40_000.0;
                assert!((frac - 0.25).abs() < 0.02, "histogram {hist:?}");
            }
        }
    }

    #[test]
    fn skewed_routing_overloads_rank_zero() {
        let routing = skewed_routing(40_000, 4, 0.5, 3);
        let hist = load_histogram(&routing[1], 4);
        let hot = hist[0] as f64 / 40_000.0;
        assert!(hot > 0.55, "rank 0 got only {hot}");
        assert!(hist[1] < hist[0] / 3);
    }

    #[test]
    fn zero_skew_equals_balanced_statistics() {
        let routing = skewed_routing(10_000, 4, 0.0, 3);
        let hist = load_histogram(&routing[0], 4);
        for &count in &hist {
            assert!((count as f64 / 10_000.0 - 0.25).abs() < 0.03);
        }
    }

    #[test]
    fn routing_is_deterministic() {
        assert_eq!(balanced_routing(100, 4, 9), balanced_routing(100, 4, 9));
        assert_ne!(balanced_routing(100, 4, 9), balanced_routing(100, 4, 10));
    }

    #[test]
    fn histogram_counts_everything() {
        let table = vec![0, 1, 1, 2, 3, 3, 3];
        assert_eq!(load_histogram(&table, 4), vec![1, 2, 1, 3]);
    }
}
