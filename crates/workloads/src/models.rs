//! GEMM shapes taken from real model architectures (§2.3).
//!
//! Tensor parallelism splits the weight matrices of a transformer layer
//! across GPUs; the communicated GEMM is the *second* matmul of each
//! block (attention output projection, MLP down projection), whose K is
//! the per-rank shard. These generators produce the per-GPU local shapes
//! for a given batch-token count and TP degree.

use gpu_sim::gemm::GemmDims;

/// A transformer model's relevant dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSpec {
    /// Model (hidden) dimension.
    pub hidden: u32,
    /// MLP intermediate dimension.
    pub intermediate: u32,
    /// Human-readable name.
    pub name: &'static str,
}

/// Llama-2-70B-like dimensions.
pub const LLAMA2_70B: ModelSpec = ModelSpec {
    hidden: 8192,
    intermediate: 28672,
    name: "llama2-70b",
};

/// Llama-3-8B-like dimensions.
pub const LLAMA3_8B: ModelSpec = ModelSpec {
    hidden: 4096,
    intermediate: 14336,
    name: "llama3-8b",
};

/// DeepSeek-V2-Lite-like MoE expert dimensions (per-expert FFN).
pub const DEEPSEEK_MOE_EXPERT: ModelSpec = ModelSpec {
    hidden: 2048,
    intermediate: 1408,
    name: "deepseek-moe-expert",
};

/// The GEMM+AllReduce shapes of one transformer layer under tensor
/// parallelism: attention output projection and MLP down projection,
/// each with K sharded over `tp` ranks.
///
/// # Panics
///
/// Panics if `tp` does not divide the sharded dimensions.
pub fn tp_layer_shapes(model: ModelSpec, tokens: u32, tp: u32) -> Vec<GemmDims> {
    assert!(
        model.hidden.is_multiple_of(tp) && model.intermediate.is_multiple_of(tp),
        "TP degree {tp} does not shard {}",
        model.name
    );
    vec![
        // Attention output projection: [tokens, hidden/tp] x [hidden/tp, hidden].
        GemmDims::new(tokens, model.hidden, model.hidden / tp),
        // MLP down projection: [tokens, inter/tp] x [inter/tp, hidden].
        GemmDims::new(tokens, model.hidden, model.intermediate / tp),
    ]
}

/// The expert-GEMM shape preceding the MoE All-to-All: each expert's down
/// projection over the tokens routed to this rank.
pub fn moe_expert_shape(model: ModelSpec, tokens_per_rank: u32) -> GemmDims {
    GemmDims::new(tokens_per_rank, model.hidden, model.intermediate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tp_shards_k_not_output() {
        let shapes = tp_layer_shapes(LLAMA2_70B, 4096, 4);
        assert_eq!(shapes.len(), 2);
        for d in &shapes {
            assert_eq!(d.m, 4096);
            assert_eq!(d.n, 8192, "output dimension stays whole");
        }
        assert_eq!(shapes[0].k, 8192 / 4);
        assert_eq!(shapes[1].k, 28672 / 4);
    }

    #[test]
    fn higher_tp_means_less_local_work() {
        let tp2 = tp_layer_shapes(LLAMA3_8B, 2048, 2);
        let tp4 = tp_layer_shapes(LLAMA3_8B, 2048, 4);
        assert!(tp4[0].flops() < tp2[0].flops());
    }

    #[test]
    fn moe_shape_uses_expert_intermediate() {
        let d = moe_expert_shape(DEEPSEEK_MOE_EXPERT, 1024);
        assert_eq!((d.m, d.n, d.k), (1024, 2048, 1408));
    }

    #[test]
    #[should_panic(expected = "does not shard")]
    fn bad_tp_degree_panics() {
        let _ = tp_layer_shapes(LLAMA2_70B, 1024, 5);
    }
}
