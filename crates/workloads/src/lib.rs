//! Evaluation workloads (§6.1.2, Table 3).
//!
//! The operator benchmarks sweep GEMM shapes drawn from the ranges of
//! Table 3 ([`table3`]), real-model projection shapes ([`models`]), and
//! MoE token-routing tables ([`routing`]). All generators are
//! deterministic.

#![warn(missing_docs)]

pub mod models;
pub mod routing;
pub mod serve_mix;
pub mod table3;

pub use models::ModelSpec;
pub use routing::{balanced_routing, skewed_routing};
pub use serve_mix::{quantize_tokens, MixEntry, ServeMix};
pub use table3::{all_table3, shape_range, table3_shapes, GpuKind, ShapeRange};
