//! Serving-traffic shape sampling: which model a request targets and how
//! many tokens it carries.
//!
//! The serving layer (`crates/serving`) drives the cluster with a stream
//! of requests whose GEMM shapes churn — the setting where the paper's
//! cheap predictive search (§4.1.4) pays off, because plans are tuned
//! online per shape and reused from a cache. This module owns the shape
//! side of that traffic: a weighted mix of [`ModelSpec`]s, a log-uniform
//! token-count distribution per entry, and the token-bucket quantization
//! that bounds the number of distinct shapes (and therefore makes plan
//! reuse possible at all).
//!
//! Everything samples through [`sim::DetRng`], so a seeded request
//! stream is bit-reproducible.

use sim::DetRng;

use crate::models::ModelSpec;

/// One entry of a serving mix: a model, its traffic share, and the
/// token-count range its requests draw from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixEntry {
    /// The model whose TP layer shapes this traffic exercises.
    pub model: ModelSpec,
    /// Relative traffic weight (need not be normalized).
    pub weight: u32,
    /// Minimum tokens per request (inclusive).
    pub min_tokens: u32,
    /// Maximum tokens per request (inclusive).
    pub max_tokens: u32,
}

/// A weighted mix of models with per-entry token distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMix {
    entries: Vec<MixEntry>,
}

impl ServeMix {
    /// Builds a mix from entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, any weight is zero, or any token
    /// range is empty or starts at zero.
    pub fn new(entries: Vec<MixEntry>) -> Self {
        assert!(!entries.is_empty(), "mix needs at least one entry");
        for e in &entries {
            assert!(e.weight > 0, "{}: weight must be positive", e.model.name);
            assert!(
                0 < e.min_tokens && e.min_tokens <= e.max_tokens,
                "{}: bad token range [{}, {}]",
                e.model.name,
                e.min_tokens,
                e.max_tokens
            );
        }
        ServeMix { entries }
    }

    /// The default serving mix: mostly prefill-scale Llama-3-8B traffic
    /// (hundreds to thousands of tokens — batches reach the multi-wave
    /// M where wave-partition overlap actually pays on the simulated
    /// systems) with a minority of small MoE-expert decode requests
    /// whose 1–2-wave shapes tune to trivial single-group plans. Two
    /// models keep the plan cache under shape churn, not one hot key.
    pub fn default_mix() -> Self {
        ServeMix::new(vec![
            MixEntry {
                model: crate::models::LLAMA3_8B,
                weight: 3,
                min_tokens: 512,
                max_tokens: 4096,
            },
            MixEntry {
                model: crate::models::DEEPSEEK_MOE_EXPERT,
                weight: 1,
                min_tokens: 64,
                max_tokens: 512,
            },
        ])
    }

    /// The entries.
    pub fn entries(&self) -> &[MixEntry] {
        &self.entries
    }

    /// Samples one `(model, token count)` pair: the entry by weight, the
    /// token count log-uniformly over the entry's range (request sizes in
    /// serving traces are heavy-tailed; log-uniform is the standard
    /// stand-in).
    pub fn sample(&self, rng: &mut DetRng) -> (ModelSpec, u32) {
        let total: u64 = self.entries.iter().map(|e| u64::from(e.weight)).sum();
        let mut pick = rng.next_below(total);
        let entry = self
            .entries
            .iter()
            .find(|e| {
                if pick < u64::from(e.weight) {
                    true
                } else {
                    pick -= u64::from(e.weight);
                    false
                }
            })
            .expect("pick < sum of weights selects an entry");
        let tokens = if entry.min_tokens == entry.max_tokens {
            entry.min_tokens
        } else {
            let lo = f64::from(entry.min_tokens).ln();
            let hi = f64::from(entry.max_tokens).ln();
            let t = rng.uniform(lo, hi).exp().round() as u32;
            t.clamp(entry.min_tokens, entry.max_tokens)
        };
        (entry.model, tokens)
    }
}

/// Rounds a token count up to its bucket boundary: the next multiple of
/// `granularity`. Batches quantize their padded token count through this
/// before mapping to [`GemmDims`](gpu_sim::gemm::GemmDims), which bounds
/// the distinct GEMM shapes in flight — the plan cache's hit rate is a
/// direct function of this granularity.
///
/// # Panics
///
/// Panics if `granularity` is zero.
pub fn quantize_tokens(tokens: u32, granularity: u32) -> u32 {
    assert!(granularity > 0, "bucket granularity must be positive");
    tokens.div_ceil(granularity).max(1) * granularity
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let mix = ServeMix::default_mix();
        let mut a = DetRng::new(11);
        let mut b = DetRng::new(11);
        for _ in 0..200 {
            let (model, tokens) = mix.sample(&mut a);
            assert_eq!((model, tokens), mix.sample(&mut b), "same seed, same draw");
            let entry = mix
                .entries()
                .iter()
                .find(|e| e.model == model)
                .expect("sampled model is in the mix");
            assert!(tokens >= entry.min_tokens && tokens <= entry.max_tokens);
        }
    }

    #[test]
    fn weights_bias_the_draw() {
        let mix = ServeMix::default_mix();
        let mut rng = DetRng::new(7);
        let mut heavy = 0usize;
        for _ in 0..400 {
            let (model, _) = mix.sample(&mut rng);
            if model == crate::models::LLAMA3_8B {
                heavy += 1;
            }
        }
        // Weight 3-vs-1 should put the heavy entry well above half.
        assert!(heavy > 240, "heavy entry drew only {heavy}/400");
    }

    #[test]
    fn quantize_rounds_up_to_bucket() {
        assert_eq!(quantize_tokens(1, 64), 64);
        assert_eq!(quantize_tokens(64, 64), 64);
        assert_eq!(quantize_tokens(65, 64), 128);
        assert_eq!(quantize_tokens(300, 128), 384);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let _ = ServeMix::new(vec![MixEntry {
            model: crate::models::LLAMA3_8B,
            weight: 0,
            min_tokens: 1,
            max_tokens: 2,
        }]);
    }
}
