//! Summary statistics and empirical CDFs for evaluation output.

use std::fmt;

/// Streaming summary statistics (count / mean / variance / extrema) over a
/// sequence of `f64` samples, using Welford's online algorithm.
///
/// # Examples
///
/// ```
/// use sim::Summary;
///
/// let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples added.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; zero when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN)
        )
    }
}

/// An empirical cumulative distribution function over collected samples.
///
/// Used to reproduce Fig. 11 (CDF of predictor error ratios).
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Cdf {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns true if no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in Cdf"));
            self.sorted = true;
        }
    }

    /// Returns the `q`-quantile (0 ≤ q ≤ 1) by nearest-rank; `None` when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or any sample is NaN.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let idx =
            ((q * (self.samples.len() - 1) as f64).round() as usize).min(self.samples.len() - 1);
        Some(self.samples[idx])
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_at_most(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.partition_point(|&s| s <= x);
        n as f64 / self.samples.len() as f64
    }

    /// Sample mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Returns `(value, cumulative fraction)` pairs at `points` evenly
    /// spaced quantiles, suitable for plotting the CDF curve.
    pub fn curve(&mut self, points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        (0..points)
            .map(|i| {
                let q = i as f64 / (points - 1).max(1) as f64;
                let idx = ((q * (n - 1) as f64).round() as usize).min(n - 1);
                (self.samples[idx], (idx + 1) as f64 / n as f64)
            })
            .collect()
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut c = Cdf::new();
        for x in iter {
            c.add(x);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_and_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_empty_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_single_sample() {
        let mut s = Summary::new();
        s.add(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
    }

    #[test]
    fn summary_display_contains_fields() {
        let s: Summary = [1.0, 2.0].into_iter().collect();
        let text = format!("{s}");
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=1.5"));
    }

    #[test]
    fn cdf_quantiles() {
        let mut c: Cdf = (1..=100).map(|i| i as f64).collect();
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.quantile(1.0), Some(100.0));
        let median = c.quantile(0.5).unwrap();
        assert!((49.0..=51.0).contains(&median));
    }

    #[test]
    fn cdf_fraction_at_most() {
        let mut c: Cdf = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert!((c.fraction_at_most(2.0) - 0.5).abs() < 1e-12);
        assert_eq!(c.fraction_at_most(0.0), 0.0);
        assert_eq!(c.fraction_at_most(10.0), 1.0);
    }

    #[test]
    fn cdf_curve_is_monotone() {
        let mut c: Cdf = [5.0, 1.0, 3.0, 2.0, 4.0].into_iter().collect();
        let curve = c.curve(5);
        assert_eq!(curve.len(), 5);
        for pair in curve.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_empty_cases() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.mean(), 0.0);
        assert!(c.curve(10).is_empty());
    }

    #[test]
    fn cdf_mean() {
        let c: Cdf = [1.0, 2.0, 3.0].into_iter().collect();
        assert!((c.mean() - 2.0).abs() < 1e-12);
    }
}
