//! Deterministic discrete-event simulation engine.
//!
//! This crate is the foundation of the FlashOverlap reproduction: every
//! simulated GPU kernel, stream operation, and inter-GPU transfer is an
//! event scheduled on a [`Sim`] instance. The engine is intentionally
//! minimal:
//!
//! - Time is a nanosecond-resolution monotonic counter ([`SimTime`]).
//! - Events are boxed `FnOnce(&mut W, &mut Sim<W>)` closures ordered by
//!   `(time, insertion sequence)`, so same-time events fire in FIFO order
//!   and every run is exactly reproducible.
//! - Randomness comes from [`rng::DetRng`], a small splitmix64/xoshiro
//!   generator owned by the caller, never from global state.
//!
//! # Examples
//!
//! ```
//! use sim::{Sim, SimDuration};
//!
//! let mut sim: Sim<Vec<u32>> = Sim::new();
//! sim.schedule_in(SimDuration::from_nanos(10), |world, _| world.push(1));
//! sim.schedule_in(SimDuration::from_nanos(5), |world, _| world.push(2));
//! let mut world = Vec::new();
//! sim.run(&mut world);
//! assert_eq!(world, vec![2, 1]);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{EngineProbe, Sim, SimError};
pub use rng::DetRng;
pub use stats::{Cdf, Summary};
pub use time::{SimDuration, SimTime};
pub use trace::Trace;
