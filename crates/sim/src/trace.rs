//! Timestamped trace recording.
//!
//! Traces capture what happened and when inside a simulation run — e.g. the
//! per-tile completion records behind Fig. 2 — without the model code
//! needing to know how the data will be consumed.

use crate::time::SimTime;

/// A timestamped record sequence of caller-defined entries.
///
/// # Examples
///
/// ```
/// use sim::{SimTime, Trace};
///
/// let mut trace: Trace<&str> = Trace::new();
/// trace.record(SimTime::from_nanos(5), "tile 0 done");
/// trace.record(SimTime::from_nanos(9), "tile 1 done");
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.entries()[0].1, "tile 0 done");
/// ```
#[derive(Debug, Clone)]
pub struct Trace<T> {
    entries: Vec<(SimTime, T)>,
}

impl<T> Default for Trace<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Trace<T> {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace {
            entries: Vec::new(),
        }
    }

    /// Appends an entry at simulated time `at`.
    pub fn record(&mut self, at: SimTime, entry: T) {
        self.entries.push((at, entry));
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in recording order.
    pub fn entries(&self) -> &[(SimTime, T)] {
        &self.entries
    }

    /// Consumes the trace, returning its entries.
    pub fn into_entries(self) -> Vec<(SimTime, T)> {
        self.entries
    }

    /// Iterates over entries matching a predicate.
    pub fn filter<'a, F>(&'a self, mut pred: F) -> impl Iterator<Item = &'a (SimTime, T)>
    where
        F: FnMut(&T) -> bool + 'a,
    {
        self.entries.iter().filter(move |(_, e)| pred(e))
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t: Trace<u32> = Trace::new();
        t.record(SimTime::from_nanos(1), 10);
        t.record(SimTime::from_nanos(2), 20);
        let e = t.entries();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0], (SimTime::from_nanos(1), 10));
        assert_eq!(e[1], (SimTime::from_nanos(2), 20));
    }

    #[test]
    fn filter_selects_matching() {
        let mut t: Trace<u32> = Trace::new();
        for i in 0..10 {
            t.record(SimTime::from_nanos(i), i as u32);
        }
        let even: Vec<_> = t.filter(|e| e % 2 == 0).collect();
        assert_eq!(even.len(), 5);
    }

    #[test]
    fn clear_and_empty() {
        let mut t: Trace<u32> = Trace::new();
        assert!(t.is_empty());
        t.record(SimTime::ZERO, 1);
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn into_entries_consumes() {
        let mut t: Trace<&str> = Trace::new();
        t.record(SimTime::ZERO, "a");
        let v = t.into_entries();
        assert_eq!(v, vec![(SimTime::ZERO, "a")]);
    }
}
