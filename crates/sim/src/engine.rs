//! The event queue and simulation driver.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

use crate::time::{SimDuration, SimTime};

/// An event callback: runs against the world and may schedule more events.
type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

/// An observer attached to the driver with [`Sim::set_probe`].
///
/// Probes see the world after every event and once more when the queue
/// drains; they never mutate the schedule. The sanitizer (`simsan`) uses
/// the drain hook to flag waits that are still parked when the program
/// should have finished — a lost signal is invisible to the event loop
/// itself, which just runs out of events.
pub trait EngineProbe<W> {
    /// Called after each event has run, with the clock at that event.
    fn after_event(&self, _now: SimTime, _world: &mut W) {}

    /// Called once when [`Sim::run`] drains the queue without error.
    fn on_drain(&self, _now: SimTime, _world: &mut W) {}
}

/// Errors produced by the simulation driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event budget was exhausted before the queue drained, which almost
    /// always means an event loop is rescheduling itself forever.
    EventBudgetExhausted {
        /// Number of events processed before giving up.
        processed: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EventBudgetExhausted { processed } => write!(
                f,
                "simulation event budget exhausted after {processed} events \
                 (likely a runaway self-rescheduling event)"
            ),
        }
    }
}

impl Error for SimError {}

struct Queued<W> {
    at: SimTime,
    seq: u64,
    run: EventFn<W>,
}

impl<W> PartialEq for Queued<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<W> Eq for Queued<W> {}

impl<W> PartialOrd for Queued<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Queued<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq)
        // pops first. Same-time events fire in insertion (FIFO) order.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A discrete-event simulator over a caller-provided world type `W`.
///
/// The simulator owns the clock and the pending-event queue; the world (GPU
/// cluster state, buffers, counters, ...) is owned by the caller and passed
/// into [`Sim::run`]. Events are `FnOnce` closures so they can move captured
/// state (completion tokens, buffers) exactly once.
///
/// # Examples
///
/// ```
/// use sim::{Sim, SimDuration, SimTime};
///
/// let mut sim: Sim<u32> = Sim::new();
/// sim.schedule_at(SimTime::from_nanos(42), |w, s| {
///     *w += 1;
///     assert_eq!(s.now(), SimTime::from_nanos(42));
/// });
/// let mut world = 0;
/// let end = sim.run(&mut world).unwrap();
/// assert_eq!((world, end), (1, SimTime::from_nanos(42)));
/// ```
pub struct Sim<W> {
    now: SimTime,
    queue: BinaryHeap<Queued<W>>,
    next_seq: u64,
    processed: u64,
    event_budget: u64,
    probe: Option<Rc<dyn EngineProbe<W>>>,
}

impl<W> fmt::Debug for Sim<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .field("event_budget", &self.event_budget)
            .field("probe", &self.probe.is_some())
            .finish()
    }
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// Default maximum number of events a single `run` may process.
    pub const DEFAULT_EVENT_BUDGET: u64 = 500_000_000;

    /// Creates an empty simulator at t = 0.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            processed: 0,
            event_budget: Self::DEFAULT_EVENT_BUDGET,
            probe: None,
        }
    }

    /// Overrides the runaway-event budget (see [`SimError`]).
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Attaches an observer called after every event and at queue drain.
    pub fn set_probe(&mut self, probe: Rc<dyn EngineProbe<W>>) {
        self.probe = Some(probe);
    }

    /// Returns the current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Returns the number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past; events cannot rewrite history.
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={:?} now={:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Queued {
            at,
            seq,
            run: Box::new(event),
        });
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, event: F)
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` to fire at the current time, after all events
    /// already queued for the current time.
    pub fn schedule_now<F>(&mut self, event: F)
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        self.schedule_at(self.now, event);
    }

    /// Pops and runs a single event, advancing the clock to it.
    ///
    /// Returns `false` if the queue was empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        self.processed += 1;
        (ev.run)(world, self);
        // Borrow, don't clone: this runs once per event, and the Rc
        // refcount bounce shows up in the serve hot path.
        if let Some(probe) = self.probe.as_deref() {
            probe.after_event(self.now, world);
        }
        true
    }

    /// Runs until the event queue drains; returns the final simulated time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExhausted`] if more events fire than
    /// the configured budget allows, which indicates a runaway event loop.
    pub fn run(&mut self, world: &mut W) -> Result<SimTime, SimError> {
        while self.step(world) {
            if self.processed > self.event_budget {
                return Err(SimError::EventBudgetExhausted {
                    processed: self.processed,
                });
            }
        }
        if let Some(probe) = self.probe.as_deref() {
            probe.on_drain(self.now, world);
        }
        Ok(self.now)
    }

    /// Runs until the queue drains or the next event lies strictly after
    /// `deadline`; the clock never advances past `deadline`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExhausted`] like [`Sim::run`].
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> Result<SimTime, SimError> {
        loop {
            match self.queue.peek() {
                Some(ev) if ev.at <= deadline => {
                    self.step(world);
                    if self.processed > self.event_budget {
                        return Err(SimError::EventBudgetExhausted {
                            processed: self.processed,
                        });
                    }
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        Ok(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        sim.schedule_at(SimTime::from_nanos(30), |w, _| w.push(30));
        sim.schedule_at(SimTime::from_nanos(10), |w, _| w.push(10));
        sim.schedule_at(SimTime::from_nanos(20), |w, _| w.push(20));
        let mut world = Vec::new();
        let end = sim.run(&mut world).unwrap();
        assert_eq!(world, vec![10, 20, 30]);
        assert_eq!(end, SimTime::from_nanos(30));
    }

    #[test]
    fn same_time_events_fire_fifo() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        for i in 0..16 {
            sim.schedule_at(SimTime::from_nanos(5), move |w, _| w.push(i));
        }
        let mut world = Vec::new();
        sim.run(&mut world).unwrap();
        assert_eq!(world, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        sim.schedule_at(SimTime::from_nanos(1), |w, s| {
            w.push(1);
            s.schedule_in(SimDuration::from_nanos(4), |w, _| w.push(2));
        });
        let mut world = Vec::new();
        let end = sim.run(&mut world).unwrap();
        assert_eq!(world, vec![1, 2]);
        assert_eq!(end, SimTime::from_nanos(5));
    }

    #[test]
    fn schedule_now_runs_after_current_time_events() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        sim.schedule_at(SimTime::from_nanos(5), |w, s| {
            w.push(1);
            s.schedule_now(|w, _| w.push(3));
        });
        sim.schedule_at(SimTime::from_nanos(5), |w, _| w.push(2));
        let mut world = Vec::new();
        sim.run(&mut world).unwrap();
        assert_eq!(world, vec![1, 2, 3]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        sim.schedule_at(SimTime::from_nanos(10), |w, _| w.push(10));
        sim.schedule_at(SimTime::from_nanos(20), |w, _| w.push(20));
        let mut world = Vec::new();
        let t = sim.run_until(&mut world, SimTime::from_nanos(15)).unwrap();
        assert_eq!(world, vec![10]);
        assert_eq!(t, SimTime::from_nanos(15));
        assert_eq!(sim.pending(), 1);
        sim.run(&mut world).unwrap();
        assert_eq!(world, vec![10, 20]);
    }

    #[test]
    fn runaway_loop_hits_budget() {
        fn tick(w: &mut u64, s: &mut Sim<u64>) {
            *w += 1;
            s.schedule_in(SimDuration::from_nanos(1), tick);
        }
        let mut sim: Sim<u64> = Sim::new().with_event_budget(1000);
        sim.schedule_now(tick);
        let mut world = 0;
        let err = sim.run(&mut world).unwrap_err();
        assert!(matches!(err, SimError::EventBudgetExhausted { .. }));
        assert!(format!("{err}").contains("budget"));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<()> = Sim::new();
        sim.schedule_at(SimTime::from_nanos(10), |_, s| {
            s.schedule_at(SimTime::from_nanos(5), |_, _| {});
        });
        sim.run(&mut ()).unwrap();
    }

    #[test]
    fn probe_sees_every_event_and_the_drain() {
        use std::cell::RefCell;

        #[derive(Default)]
        struct Recorder {
            after: RefCell<Vec<u64>>,
            drains: RefCell<u32>,
        }
        impl EngineProbe<u32> for Recorder {
            fn after_event(&self, now: SimTime, world: &mut u32) {
                self.after.borrow_mut().push(now.as_nanos());
                *world += 1;
            }
            fn on_drain(&self, _now: SimTime, _world: &mut u32) {
                *self.drains.borrow_mut() += 1;
            }
        }

        let probe = Rc::new(Recorder::default());
        let mut sim: Sim<u32> = Sim::new();
        sim.set_probe(probe.clone());
        sim.schedule_at(SimTime::from_nanos(3), |_, _| {});
        sim.schedule_at(SimTime::from_nanos(7), |_, _| {});
        let mut world = 0u32;
        sim.run(&mut world).unwrap();
        assert_eq!(*probe.after.borrow(), vec![3, 7]);
        assert_eq!(*probe.drains.borrow(), 1);
        assert_eq!(world, 2);
    }

    #[test]
    fn processed_and_pending_counters() {
        let mut sim: Sim<()> = Sim::new();
        sim.schedule_at(SimTime::from_nanos(1), |_, _| {});
        sim.schedule_at(SimTime::from_nanos(2), |_, _| {});
        assert_eq!(sim.pending(), 2);
        sim.run(&mut ()).unwrap();
        assert_eq!(sim.events_processed(), 2);
        assert_eq!(sim.pending(), 0);
    }
}
