//! Deterministic random number generation.
//!
//! The simulator must be exactly reproducible across runs and platforms, so
//! it uses a small self-contained xoshiro256** generator seeded through
//! splitmix64 rather than a platform-seeded source. The generator is owned
//! by whoever needs randomness (never global), and child generators can be
//! forked deterministically per device / per kernel.

/// A deterministic xoshiro256** pseudo-random generator.
///
/// # Examples
///
/// ```
/// use sim::DetRng;
///
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        DetRng { state }
    }

    /// Forks a child generator whose stream is independent of (and
    /// deterministic given) the parent seed and `stream` label.
    pub fn fork(&self, stream: u64) -> DetRng {
        // Mix the label through splitmix so nearby labels diverge fully.
        let mut s = self.state[0] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        DetRng { state }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform: empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a uniform integer in `[0, n)` using rejection sampling
    /// (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below: n must be positive");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Returns a uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive: empty range [{lo}, {hi}]");
        lo + self.next_below(hi - lo + 1)
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose: empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_deterministic_and_distinct() {
        let root = DetRng::new(9);
        let mut c1 = root.fork(1);
        let mut c1_again = root.fork(1);
        let mut c2 = root.fork(2);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = DetRng::new(42);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = DetRng::new(42);
        for _ in 0..10_000 {
            let x = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn next_below_covers_all_residues() {
        let mut rng = DetRng::new(7);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_below_power_of_two_fast_path() {
        let mut rng = DetRng::new(7);
        for _ in 0..1_000 {
            assert!(rng.next_below(8) < 8);
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = DetRng::new(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            match rng.range_inclusive(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut rng = DetRng::new(2024);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    #[should_panic(expected = "next_below")]
    fn next_below_zero_panics() {
        DetRng::new(1).next_below(0);
    }
}
