//! Simulated time: nanosecond-resolution instants and durations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// `SimTime` is a plain monotonic counter: it has no relation to wall-clock
/// time, and two simulations with the same inputs produce identical
/// timestamps.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the instant as nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the instant as (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the instant as (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated time never runs
    /// backwards, so this indicates a logic error in the caller.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({}) is after self ({})",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative or non-finite inputs are clamped to zero; model code often
    /// produces tiny negative values from floating-point cancellation and a
    /// zero-length duration is always the intended result there.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a duration from fractional microseconds (clamped like
    /// [`SimDuration::from_secs_f64`]).
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Returns the duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the duration as (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a non-negative float, rounding to
    /// nanoseconds.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: returns `self - other`, or zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(
            rhs.0 <= self.0,
            "SimDuration subtraction underflow: {} - {}",
            self.0,
            rhs.0
        );
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}us", self.as_micros_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t0 = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(50);
        let t1 = t0 + d;
        assert_eq!(t1.as_nanos(), 150);
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.duration_since(t0), d);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        let d = SimDuration::from_secs_f64(1.5e-6);
        assert_eq!(d.as_nanos(), 1_500);
        assert!((d.as_micros_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_clamps_negative_and_non_finite() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_backwards_time() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_nanos(4));
    }

    #[test]
    fn min_max_behave() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let t = SimTime::from_nanos(7);
        assert_eq!(t.max(SimTime::from_nanos(3)), t);
    }

    #[test]
    fn mul_f64_rounds_to_nanos() {
        let d = SimDuration::from_nanos(1000);
        assert_eq!(d.mul_f64(0.5).as_nanos(), 500);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{:?}", SimTime::from_nanos(7)), "t+7ns");
    }
}
