//! Property-based tests for the simulation engine.

use proptest::prelude::*;
use sim::{Cdf, DetRng, Sim, SimDuration, SimTime};

proptest! {
    /// Events always fire in nondecreasing time order regardless of the
    /// order they were scheduled in.
    #[test]
    fn events_fire_in_time_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), move |w, s| {
                w.push(s.now().as_nanos());
            });
        }
        let mut fired = Vec::new();
        sim.run(&mut fired).unwrap();
        prop_assert_eq!(fired.len(), times.len());
        for pair in fired.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
        let mut expected = times.clone();
        expected.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    /// The final clock equals the maximum scheduled time.
    #[test]
    fn final_time_is_max(times in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let mut sim: Sim<()> = Sim::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), |_, _| {});
        }
        let end = sim.run(&mut ()).unwrap();
        prop_assert_eq!(end.as_nanos(), *times.iter().max().unwrap());
    }

    /// Chained events accumulate durations exactly.
    #[test]
    fn chained_delays_accumulate(delays in proptest::collection::vec(1u64..10_000, 1..50)) {
        let total: u64 = delays.iter().sum();
        let mut sim: Sim<u64> = Sim::new();
        fn chain(mut rest: Vec<u64>, w: &mut u64, s: &mut Sim<u64>) {
            if let Some(d) = rest.pop() {
                s.schedule_in(SimDuration::from_nanos(d), move |w, s| chain(rest, w, s));
            } else {
                *w = s.now().as_nanos();
            }
        }
        let mut rev = delays.clone();
        rev.reverse();
        sim.schedule_now(move |w, s| chain(rev, w, s));
        let mut world = 0;
        sim.run(&mut world).unwrap();
        prop_assert_eq!(world, total);
    }

    /// DetRng::next_below always stays below its bound.
    #[test]
    fn rng_below_bound(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = DetRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(n) < n);
        }
    }

    /// DetRng::uniform stays within bounds.
    #[test]
    fn rng_uniform_in_bounds(seed in any::<u64>(), lo in -1e6f64..1e6, width in 0.0f64..1e6) {
        let hi = lo + width;
        let mut rng = DetRng::new(seed);
        for _ in 0..50 {
            let x = rng.uniform(lo, hi);
            prop_assert!(x >= lo && (x < hi || (x == lo && width == 0.0)));
        }
    }

    /// Shuffle is a permutation.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), len in 0usize..200) {
        let mut rng = DetRng::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    /// Cdf quantile is monotone in q and bounded by the extremes.
    #[test]
    fn cdf_quantile_monotone(samples in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
        let mut cdf: Cdf = samples.iter().copied().collect();
        let lo = cdf.quantile(0.0).unwrap();
        let hi = cdf.quantile(1.0).unwrap();
        prop_assert!(lo <= hi);
        let mut prev = lo;
        for i in 1..=10 {
            let q = cdf.quantile(i as f64 / 10.0).unwrap();
            prop_assert!(q >= prev);
            prev = q;
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(lo, min);
        prop_assert_eq!(hi, max);
    }
}
