//! Parallel ≡ serial equivalence: the worker-thread replica engines
//! must reproduce the serial engine's `ServeReport` byte-for-byte for
//! any thread count — including chaos runs with a deterministically
//! wedged replica, where quarantine/re-route ordering is the hard part.

#![allow(clippy::unwrap_used)]

use flashoverlap::SystemSpec;
use proptest::prelude::*;
use serving::{serve, validate_parallel, ArrivalProcess, ExecMode, RouterPolicy, ServeConfig};

fn base_config(seed: u64, requests: usize) -> ServeConfig {
    let mut config = ServeConfig::new(SystemSpec::rtx4090(2));
    config.seed = seed;
    config.requests = requests;
    config
}

fn render(config: &ServeConfig) -> String {
    serve(config)
        .expect("serve terminates")
        .to_json()
        .to_json_pretty()
}

/// Byte-compare a config under serial vs parallel execution.
fn assert_equivalent(config: &ServeConfig, threads: usize) {
    let serial = render(&ServeConfig {
        exec: ExecMode::Serial,
        ..config.clone()
    });
    let parallel = render(&ServeConfig {
        exec: ExecMode::Parallel(threads),
        ..config.clone()
    });
    assert_eq!(
        serial, parallel,
        "parallel({threads}) diverged from serial for seed {}",
        config.seed
    );
}

#[test]
fn four_replicas_match_across_thread_counts() {
    // More threads than replicas, fewer threads than replicas, and the
    // degenerate one-thread pool must all be byte-identical.
    let mut config = base_config(7, 60);
    config.replicas = 4;
    config.process = ArrivalProcess::Poisson { rate_rps: 2400.0 };
    for threads in [1, 2, 4, 7] {
        assert_equivalent(&config, threads);
    }
}

#[test]
fn load_aware_router_matches_under_threading() {
    // Least-loaded routing reads replica drain times, exercising the
    // force-before-loads synchronization point.
    let mut config = base_config(11, 60);
    config.replicas = 3;
    config.router = RouterPolicy::LeastLoaded;
    config.process = ArrivalProcess::Poisson { rate_rps: 2400.0 };
    assert_equivalent(&config, 3);
}

#[test]
fn wedged_chaos_run_matches_under_threading() {
    // The ci.sh wedge scenario: chaos fault plans, a deterministic
    // wedge on replica 2, quarantine, and re-routing — the eager-force
    // path must land every decision at the serial engine's instant.
    let mut config = base_config(7, 120);
    config.replicas = 4;
    config.chaos = true;
    config.wedge_replica = Some(2);
    config.process = ArrivalProcess::Poisson { rate_rps: 12_000.0 };
    assert_equivalent(&config, 4);
}

#[test]
fn validate_parallel_reports_a_match() {
    let mut config = base_config(5, 40);
    config.replicas = 2;
    let (report, matched) = validate_parallel(&config, 2).unwrap();
    assert!(matched, "validation mode must diff the engines as equal");
    assert_eq!(report.offered, 40);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random (replicas, threads, seed, arrival process, chaos/wedge):
    /// the parallel engines must be byte-identical to serial every
    /// time. Chaos runs wedge a random replica so the quarantine →
    /// re-route ordering is exercised under threading.
    #[test]
    fn parallel_serve_is_byte_identical_to_serial(
        seed in any::<u64>(),
        replicas in 1usize..=4,
        threads in 1usize..=6,
        bursty in any::<bool>(),
        chaos in any::<bool>(),
    ) {
        let mut config = base_config(seed, 40);
        config.replicas = replicas;
        config.process = if bursty {
            ArrivalProcess::Bursty {
                base_rps: 1200.0,
                burst_rps: 9600.0,
                mean_phase_ms: 5.0,
            }
        } else {
            ArrivalProcess::Poisson { rate_rps: 2400.0 }
        };
        if chaos {
            config.chaos = true;
            config.wedge_replica = Some(seed as usize % replicas);
        }

        config.exec = ExecMode::Serial;
        let serial = serve(&config).expect("serial serve terminates");
        config.exec = ExecMode::Parallel(threads);
        let parallel = serve(&config).expect("parallel serve terminates");
        prop_assert_eq!(
            serial.to_json().to_json_pretty(),
            parallel.to_json().to_json_pretty(),
            "parallel engines diverged from serial"
        );
    }
}
