//! End-to-end serving tests: golden determinism, chaos accounting, and
//! tuned-vs-baseline sanity.

use flashoverlap::SystemSpec;
use serving::{serve, serve_comparison, ArrivalProcess, Disposition, ServeConfig};

fn config(seed: u64, requests: usize) -> ServeConfig {
    let mut cfg = ServeConfig::new(SystemSpec::rtx4090(2));
    cfg.seed = seed;
    cfg.requests = requests;
    cfg
}

#[test]
fn same_seed_gives_bit_identical_report_json() {
    let cfg = config(42, 80);
    let a = serve(&cfg).expect("serve run");
    let b = serve(&cfg).expect("serve rerun");
    assert_eq!(a, b, "reports must be structurally identical");
    assert_eq!(
        a.to_json().to_json_pretty(),
        b.to_json().to_json_pretty(),
        "serialized reports must be byte-identical"
    );
}

#[test]
fn different_seeds_give_different_reports() {
    let a = serve(&config(1, 60)).expect("serve seed 1");
    let b = serve(&config(2, 60)).expect("serve seed 2");
    assert_ne!(
        a.to_json().to_json_pretty(),
        b.to_json().to_json_pretty(),
        "different seeds must produce different traces"
    );
}

#[test]
fn every_request_is_accounted_and_the_cache_warms() {
    let cfg = config(7, 100);
    let report = serve(&cfg).expect("serve run");
    assert_eq!(report.offered, 100);
    assert_eq!(report.completed + report.shed, report.offered);
    assert_eq!(
        report.clean + report.recovered + report.degraded,
        report.completed
    );
    assert_eq!(report.records.len(), 100);
    // Records are in id order and every completed one has a latency.
    for (i, r) in report.records.iter().enumerate() {
        assert_eq!(r.id, i as u64);
        assert_eq!(r.latency_ns.is_some(), r.disposition != Disposition::Shed);
    }
    // Token-bucket quantization must drive shape reuse.
    assert!(
        report.cache.hit_rate() > 0.0,
        "expected plan-cache hits under shape reuse, stats {:?}",
        report.cache
    );
    assert!(report.batches > 0);
    assert_eq!(report.cache.hits + report.cache.misses, report.batches);
    assert!(report.distinct_shapes <= report.cache.misses);
    assert!(report.latency.is_some());
}

#[test]
fn attribution_waits_and_drift_are_internally_consistent() {
    let cfg = config(11, 90);
    let report = serve(&cfg).expect("serve run");

    // Serve-level critical path tiles the makespan exactly.
    assert_eq!(
        report.attribution.sum(),
        report.makespan_ns,
        "attribution identity must hold: {:?} vs makespan {}",
        report.attribution,
        report.makespan_ns
    );

    // Per-batch clips sum to the batch's execution window, and close ≤
    // dispatch for every batch.
    for b in &report.batch_records {
        let attr = b.attribution.as_ref().expect("executed batch attribution");
        assert_eq!(
            attr.sum(),
            b.exec_ns,
            "batch {} attribution must tile its exec window",
            b.id
        );
        assert!(
            b.close_ns <= b.start_ns,
            "batch {} closed after it started",
            b.id
        );
        assert!(
            b.queue_wait_ns <= b.start_ns - b.close_ns,
            "batch {}: queue wait {} exceeds close→start span",
            b.id,
            b.queue_wait_ns
        );
    }

    // Wait decomposition: form + queue ≤ total latency for every
    // completed request, and shed requests carry no waits.
    for r in &report.records {
        match r.disposition {
            Disposition::Shed => {
                assert!(r.form_wait_ns.is_none() && r.queue_wait_ns.is_none());
            }
            _ => {
                let form = r.form_wait_ns.expect("completed request form wait");
                let queue = r.queue_wait_ns.expect("completed request queue wait");
                let latency = r.latency_ns.expect("completed request latency");
                assert!(
                    form + queue <= latency,
                    "request {}: form {} + queue {} > latency {}",
                    r.id,
                    form,
                    queue,
                    latency
                );
            }
        }
    }
    assert!(report.form_wait.is_some() && report.queue_wait.is_some());

    // Drift rows exist (plans predict group completions) and are
    // finite, ordered, and backed by samples.
    assert!(!report.drift.is_empty(), "expected drift rows");
    let mut prev_key = None;
    for d in &report.drift {
        assert!(d.samples > 0);
        assert!(d.mean_predicted_ns.is_finite() && d.mean_measured_ns.is_finite());
        assert!(d.drift().is_finite());
        let key = (d.m, d.n, d.k, d.group);
        if let Some(p) = prev_key {
            assert!(key > p, "drift rows must be strictly ordered");
        }
        prev_key = Some(key);
    }
}

#[test]
fn bursty_overload_sheds_and_still_accounts_everyone() {
    let mut cfg = config(13, 150);
    cfg.process = ArrivalProcess::Bursty {
        base_rps: 1000.0,
        burst_rps: 500_000.0,
        mean_phase_ms: 2.0,
    };
    cfg.queue_capacity = 8;
    let report = serve(&cfg).expect("serve run");
    assert_eq!(report.completed + report.shed, report.offered);
    assert!(
        report.shed > 0,
        "a 500k-rps burst against an 8-deep queue must shed"
    );
    assert!(report.shed_rate > 0.0);
}

#[test]
fn chaos_serve_terminates_with_full_accounting() {
    let mut cfg = config(21, 50);
    cfg.chaos = true;
    let report = serve(&cfg).expect("chaos serve must terminate");
    assert!(report.chaos);
    assert_eq!(report.completed + report.shed, report.offered);
    assert_eq!(
        report.clean + report.recovered + report.degraded,
        report.completed,
        "every completed request carries a resilient outcome"
    );
    // With 1-3 faults armed per batch, at least one batch should need
    // recovery or degrade across 50 requests; all outcomes must be
    // legal labels either way.
    for b in &report.batch_records {
        assert!(
            ["clean", "recovered", "degraded"].contains(&b.outcome),
            "unexpected outcome {}",
            b.outcome
        );
    }
    assert!(
        report.recovered + report.degraded > 0,
        "fault plans should perturb at least one batch"
    );
}

#[test]
fn comparison_runs_both_arms_on_identical_traffic() {
    let cfg = config(5, 60);
    let cmp = serve_comparison(&cfg).expect("comparison run");
    assert!(cmp.tuned.tuned && !cmp.baseline.tuned);
    assert_eq!(cmp.tuned.offered, cmp.baseline.offered);
    // Identical traffic: same arrival trace feeds both arms.
    let arrivals_t: Vec<u64> = cmp.tuned.records.iter().map(|r| r.arrival_ns).collect();
    let arrivals_b: Vec<u64> = cmp.baseline.records.iter().map(|r| r.arrival_ns).collect();
    assert_eq!(arrivals_t, arrivals_b);
    // The baseline never tunes; the tuned arm always does on a miss.
    assert_eq!(cmp.baseline.cache.tune_evaluated, 0);
    assert!(cmp.tuned.cache.tune_evaluated > 0);
    let (p50, _p95, mean) = cmp.speedups().expect("both arms completed requests");
    // The prefill-heavy default mix reaches multi-wave batches where
    // tuned overlap beats non-overlap; queueing noise on a small run
    // can dilute p50 but the mean must come out ahead.
    assert!(
        mean > 1.0,
        "tuned serving should beat non-overlap, mean {mean}"
    );
    assert!(p50 > 0.9, "p50 {p50}");
}
