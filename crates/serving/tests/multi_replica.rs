//! Multi-replica serving: determinism, per-replica accounting,
//! replica scaling, pipelining gain, and plan-cache persistence.

#![allow(clippy::unwrap_used)]

use flashoverlap::SystemSpec;
use serving::{
    serve, serve_exporting, serve_scaling, ArrivalProcess, CacheSnapshot, RouterPolicy, ServeConfig,
};
use workloads::{MixEntry, ServeMix};

/// An overloaded-for-one-replica config: ~3.4x the single-replica
/// service capacity, so four replicas absorb it and one cannot.
fn overload_config() -> ServeConfig {
    let mut config = ServeConfig::new(SystemSpec::rtx4090(2));
    config.process = ArrivalProcess::Poisson { rate_rps: 2400.0 };
    config.requests = 240;
    config.replicas = 4;
    config.router = RouterPolicy::ShapeAffinity;
    config.seed = 7;
    config
}

#[test]
fn golden_multi_replica_serve_is_byte_identical() {
    let mut config = overload_config();
    config.requests = 100;
    let a = serve(&config).unwrap();
    let b = serve(&config).unwrap();
    assert_eq!(
        a.to_json().to_json(),
        b.to_json().to_json(),
        "same seed must produce a byte-identical multi-replica report"
    );
}

#[test]
fn per_replica_accounting_sums_to_totals() {
    let config = overload_config();
    let report = serve(&config).unwrap();
    assert_eq!(report.replicas, 4);
    assert_eq!(report.replica_stats.len(), 4);

    let batches: u64 = report.replica_stats.iter().map(|r| r.batches).sum();
    assert_eq!(batches, report.batches);
    let requests: u64 = report.replica_stats.iter().map(|r| r.requests).sum();
    assert_eq!(requests, report.completed);
    let hits: u64 = report.replica_stats.iter().map(|r| r.cache.hits).sum();
    let misses: u64 = report.replica_stats.iter().map(|r| r.cache.misses).sum();
    assert_eq!((hits, misses), (report.cache.hits, report.cache.misses));

    for b in &report.batch_records {
        assert!(b.replica < report.replicas, "batch on unknown replica");
        assert!(!b.routing.is_empty());
        assert!(b.chain_len >= 1);
    }
    for r in &report.replica_stats {
        assert!(
            (0.0..=1.0).contains(&r.utilization),
            "utilization out of range: {}",
            r.utilization
        );
    }
    // Work actually spread: no replica ran everything.
    assert!(
        report
            .replica_stats
            .iter()
            .all(|r| r.batches < report.batches),
        "one replica absorbed every batch"
    );
}

#[test]
fn four_replicas_scale_goodput_and_pipelining_cuts_p95() {
    let scaling = serve_scaling(&overload_config()).unwrap();
    let factor = scaling.goodput_scaling().expect("single arm has goodput");
    assert!(
        factor >= 3.0,
        "4 replicas must deliver >= 3x single-replica goodput, got {factor:.2}x"
    );
    let (pipelined_p95, serial_p95) = scaling.pipelining_p95().expect("both arms completed");
    assert!(
        pipelined_p95 < serial_p95,
        "pipelined p95 {pipelined_p95} must beat serial-chain p95 {serial_p95}"
    );
    // Both findings are reported in the comparison JSON.
    let json = scaling.to_json().to_json();
    assert!(json.contains("\"goodput_scaling\""));
    assert!(json.contains("\"pipelined_p95_ns\""));
    assert!(json.contains("\"serial_p95_ns\""));
}

/// A repeat-heavy mix: two fixed-size request classes, so the run sees
/// only a handful of distinct GEMM shapes over and over.
fn repeat_heavy_mix() -> ServeMix {
    ServeMix::new(vec![
        MixEntry {
            model: workloads::models::LLAMA3_8B,
            weight: 3,
            min_tokens: 1024,
            max_tokens: 1024,
        },
        MixEntry {
            model: workloads::models::DEEPSEEK_MOE_EXPERT,
            weight: 1,
            min_tokens: 256,
            max_tokens: 256,
        },
    ])
}

#[test]
fn shape_affinity_beats_round_robin_on_repeat_heavy_mix() {
    let mut config = overload_config();
    config.mix = repeat_heavy_mix();
    config.router = RouterPolicy::ShapeAffinity;
    let affinity = serve(&config).unwrap();
    config.router = RouterPolicy::RoundRobin;
    let round_robin = serve(&config).unwrap();
    assert!(
        affinity.cache.hit_rate() > round_robin.cache.hit_rate(),
        "shape affinity {:.3} must beat round-robin {:.3} on cache hit rate",
        affinity.cache.hit_rate(),
        round_robin.cache.hit_rate()
    );
    // Affinity tunes each shape once; round-robin re-tunes per replica.
    assert!(affinity.cache.misses < round_robin.cache.misses);
}

#[test]
fn plan_cache_snapshot_round_trips_and_preloads_warm() {
    let mut config = overload_config();
    config.mix = repeat_heavy_mix();
    config.requests = 80;
    let (cold, snapshot) = serve_exporting(&config).unwrap();
    assert!(!snapshot.entries.is_empty(), "run must export tuned plans");

    let reparsed = CacheSnapshot::from_json(&snapshot.to_json()).unwrap();
    assert_eq!(reparsed, snapshot, "snapshot JSON must round-trip");

    let mut warm_config = config.clone();
    warm_config.preload = Some(snapshot);
    let warm = serve(&warm_config).unwrap();
    assert!(warm.cache.preloaded > 0, "replicas must start preloaded");
    assert_eq!(
        warm.cache.misses, 0,
        "a warm-started repeat-heavy run must never tune online"
    );
    assert_eq!(
        warm.completed, cold.completed,
        "warm start must not change accounting"
    );
}
