//! Multi-node serving: seeded determinism, node placement, locality
//! routing vs. round-robin, migration accounting, and the node →
//! replica → total rollup identities.

#![allow(clippy::unwrap_used)]

use flashoverlap::{FlashOverlapError, SystemSpec};
use serving::{home_node, serve, ArrivalProcess, RouterPolicy, ServeConfig};
use workloads::ServeMix;

/// Two nodes × two replicas per node over a node-spanning TP group,
/// overloaded enough that batches queue and the locality policy has
/// real spill decisions to make.
fn two_node_config() -> ServeConfig {
    let mut config = ServeConfig::new(SystemSpec::rtx4090(2).with_nodes(2));
    config.process = ArrivalProcess::Poisson { rate_rps: 2400.0 };
    config.requests = 160;
    config.replicas = 4;
    config.nodes = 2;
    config.router = RouterPolicy::Locality;
    config.seed = 11;
    config
}

#[test]
fn two_node_serve_is_byte_identical() {
    let config = two_node_config();
    let a = serve(&config).unwrap();
    let b = serve(&config).unwrap();
    assert_eq!(
        a.to_json().to_json(),
        b.to_json().to_json(),
        "same seed must produce a byte-identical two-node report"
    );
}

#[test]
fn node_accounting_rolls_up_exactly() {
    let report = serve(&two_node_config()).unwrap();
    assert_eq!(report.nodes, 2);
    assert_eq!(report.node_stats.len(), 2);

    // Node rows sum to the run totals...
    let replicas: u64 = report.node_stats.iter().map(|n| n.replicas).sum();
    assert_eq!(replicas, report.replicas as u64);
    let batches: u64 = report.node_stats.iter().map(|n| n.batches).sum();
    assert_eq!(batches, report.batches);
    let requests: u64 = report.node_stats.iter().map(|n| n.requests).sum();
    assert_eq!(requests, report.completed);
    // ...and agree with the replica rows they fold (tokens and busy
    // time have no independent run total, so the replica sum is the
    // reference).
    let node_tokens: u64 = report.node_stats.iter().map(|n| n.tokens).sum();
    let replica_tokens: u64 = report.replica_stats.iter().map(|r| r.tokens).sum();
    assert_eq!(node_tokens, replica_tokens);
    let node_busy: u64 = report.node_stats.iter().map(|n| n.busy_ns).sum();
    let replica_busy: u64 = report.replica_stats.iter().map(|r| r.busy_ns).sum();
    assert_eq!(node_busy, replica_busy);

    // Placement is replica id modulo node count, consistently stamped.
    for r in &report.replica_stats {
        assert_eq!(r.node, r.id % report.nodes);
    }
    for b in &report.batch_records {
        assert_eq!(b.node, b.replica % report.nodes);
    }
    // The serve-level attribution identity survives migration charges.
    assert_eq!(report.attribution.sum(), report.makespan_ns);
}

#[test]
fn migration_is_charged_exactly_off_home_node() {
    let config = two_node_config();
    let report = serve(&config).unwrap();
    let tp = config.system.n_gpus as u32;
    let mix = ServeMix::default_mix();
    let mut total_migration = 0u64;
    let mut cross = 0u64;
    for b in &report.batch_records {
        let model = mix
            .entries()
            .iter()
            .map(|e| e.model)
            .find(|m| m.name == b.model)
            .expect("batch model comes from the mix");
        let dims =
            gpu_sim::gemm::GemmDims::new(b.padded_tokens, model.hidden, model.intermediate / tp);
        let home = home_node(dims, report.nodes);
        if b.node == home {
            assert_eq!(
                b.migration_ns, 0,
                "home-node batch {} must not pay migration",
                b.id
            );
        } else {
            assert!(
                b.migration_ns > 0,
                "cross-node batch {} must pay migration",
                b.id
            );
            cross += 1;
        }
        total_migration += b.migration_ns;
    }
    assert_eq!(cross, report.cross_node_batches);
    assert_eq!(total_migration, report.migration_ns);
    assert!(
        report.batch_records.len() as u64 > report.cross_node_batches,
        "locality routing must keep some batches on their home node"
    );
}

#[test]
fn hierarchical_collectives_cross_fewer_bytes_than_flat() {
    // Strict savings need multi-GPU nodes: with one GPU per node there
    // is no intra-node phase and the leader ring *is* the flat ring.
    let mut config = two_node_config();
    config.system = SystemSpec::rtx4090(4).with_nodes(2);
    let report = serve(&config).unwrap();
    assert!(
        report.inter_bytes_hierarchical > 0,
        "a node-spanning TP group must cross nodes"
    );
    assert!(
        report.inter_bytes_hierarchical < report.inter_bytes_flat,
        "hierarchical ({}) must move fewer inter-node bytes than flat ({})",
        report.inter_bytes_hierarchical,
        report.inter_bytes_flat,
    );
}

#[test]
fn locality_crosses_nodes_less_than_round_robin() {
    let locality = serve(&two_node_config()).unwrap();
    let mut rr_config = two_node_config();
    rr_config.router = RouterPolicy::RoundRobin;
    let round_robin = serve(&rr_config).unwrap();
    assert_eq!(locality.offered, round_robin.offered, "identical traffic");
    assert!(
        locality.cross_node_batches < round_robin.cross_node_batches,
        "locality ({}) must cross nodes less than round-robin ({})",
        locality.cross_node_batches,
        round_robin.cross_node_batches,
    );
    assert!(locality.migration_ns < round_robin.migration_ns);
}

#[test]
fn single_node_runs_carry_no_cross_node_accounting() {
    let mut config = two_node_config();
    config.system = SystemSpec::rtx4090(2);
    config.nodes = 1;
    config.router = RouterPolicy::RoundRobin;
    let report = serve(&config).unwrap();
    assert_eq!(report.nodes, 1);
    assert_eq!(report.cross_node_batches, 0);
    assert_eq!(report.migration_ns, 0);
    assert_eq!(report.inter_bytes_hierarchical, 0);
    assert_eq!(report.inter_bytes_flat, 0);
    assert!(report.batch_records.iter().all(|b| b.migration_ns == 0));
    assert_eq!(report.node_stats.len(), 1);
}

#[test]
fn more_nodes_than_replicas_is_rejected() {
    let mut config = two_node_config();
    config.replicas = 2;
    config.nodes = 4;
    let err = serve(&config).unwrap_err();
    assert!(matches!(err, FlashOverlapError::BadInputs { .. }));
    let msg = format!("{err}");
    assert!(
        msg.contains("every node needs at least one replica"),
        "{msg}"
    );
}
