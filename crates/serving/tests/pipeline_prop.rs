//! Property test: cross-batch pipelined execution is bit-exact with
//! serial execution for the chains every router policy actually
//! dispatches, across seeds.
//!
//! Each case runs a small multi-replica serve, reconstructs the batch
//! chains each replica executed (from the per-batch records), and
//! re-executes every chain functionally through
//! [`flashoverlap::execute_sequence`] twice — pipelined and with the
//! serial cross-batch barrier — asserting the per-rank outputs are
//! identical bit for bit. Pipelining reorders work in time; it must
//! never reorder results.

use std::rc::Rc;

use flashoverlap::{
    execute_sequence, CommPattern, FunctionalInputs, OverlapPlan, SequenceOptions, SystemSpec,
};
use gpu_sim::gemm::GemmDims;
use proptest::prelude::*;
use serving::{ArrivalProcess, PlanCache, RouterPolicy, ServeConfig};
use workloads::{MixEntry, ModelSpec, ServeMix};

/// A deliberately tiny model so the functional (data-carrying) replay
/// stays cheap: `n = hidden = 128`, `k = intermediate / tp = 64`.
const TINY: ModelSpec = ModelSpec {
    hidden: 128,
    intermediate: 128,
    name: "tiny-proptest",
};

fn tiny_config(seed: u64, router: RouterPolicy) -> ServeConfig {
    let mut config = ServeConfig::new(SystemSpec::rtx4090(2));
    config.mix = ServeMix::new(vec![MixEntry {
        model: TINY,
        weight: 1,
        min_tokens: 32,
        max_tokens: 128,
    }]);
    config.batch.max_batch_tokens = 128;
    config.batch.token_bucket = 32;
    // Dense arrivals so replicas accumulate multi-batch chains.
    config.process = ArrivalProcess::Poisson { rate_rps: 50_000.0 };
    config.requests = 16;
    config.replicas = 2;
    config.router = router;
    config.seed = seed;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn pipelined_chains_are_bit_exact_with_serial(
        seed in 0u64..1_000_000,
        router in prop::sample::select(vec![
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastLoaded,
            RouterPolicy::ShapeAffinity,
        ]),
    ) {
        let config = tiny_config(seed, router);
        let report = serving::serve(&config).expect("serve");
        prop_assert!(report.batches > 0);

        // Chains are contiguous runs in dispatch order: every batch of
        // a chain carries the chain's length and replica.
        let mut cache = PlanCache::new(16);
        let mut saw_multi_batch_chain = false;
        let mut i = 0usize;
        while i < report.batch_records.len() {
            let len = report.batch_records[i].chain_len as usize;
            let chain = &report.batch_records[i..i + len];
            prop_assert!(chain.iter().all(|b| b.replica == chain[0].replica));
            saw_multi_batch_chain |= len > 1;

            let mut plans: Vec<Rc<OverlapPlan>> = Vec::with_capacity(len);
            let mut inputs: Vec<FunctionalInputs> = Vec::with_capacity(len);
            for b in chain {
                let dims = GemmDims::new(
                    b.padded_tokens,
                    TINY.hidden,
                    TINY.intermediate / config.system.n_gpus as u32,
                );
                let (plan, _) = cache
                    .get_or_tune(dims, &CommPattern::AllReduce, &config.system)
                    .expect("tune");
                inputs.push(FunctionalInputs::random(
                    dims,
                    config.system.n_gpus,
                    seed ^ b.id,
                ));
                plans.push(plan);
            }
            let refs: Vec<&OverlapPlan> = plans.iter().map(|p| p.as_ref()).collect();
            let pipelined = execute_sequence(
                &refs,
                &SequenceOptions::new().functional(&inputs),
            )
            .expect("pipelined replay");
            let serial = execute_sequence(
                &refs,
                &SequenceOptions::new().serial().functional(&inputs),
            )
            .expect("serial replay");
            prop_assert_eq!(
                pipelined.outputs.expect("functional outputs"),
                serial.outputs.expect("functional outputs"),
                "pipelining must not change results (chain at batch {})",
                i
            );
            i += len;
        }
        prop_assert!(
            saw_multi_batch_chain,
            "traffic must be dense enough to exercise real pipelining"
        );
    }
}
