//! Chaos serving campaign: chains keep forming under fault injection, a
//! deterministically wedged replica is quarantined and its queue
//! re-routed (never a run abort), zero-batch replicas report zeroed
//! stats without breaking the sum-to-total identities, and every seeded
//! chaos run replays byte-identically.

#![allow(clippy::unwrap_used)]

use flashoverlap::SystemSpec;
use proptest::prelude::*;
use serving::{serve, ArrivalProcess, ServeConfig};

fn chaos_config(seed: u64, requests: usize) -> ServeConfig {
    let mut config = ServeConfig::new(SystemSpec::rtx4090(2));
    config.seed = seed;
    config.requests = requests;
    config.chaos = true;
    config
}

/// The reproducible wedge scenario ci.sh gates on: four replicas, the
/// third forced to wedge on its first chaos chain, arrivals fast enough
/// that its queue holds batches worth re-routing at quarantine time.
fn wedge_config() -> ServeConfig {
    let mut config = chaos_config(7, 200);
    config.replicas = 4;
    config.wedge_replica = Some(2);
    config.process = ArrivalProcess::Poisson { rate_rps: 12_000.0 };
    config
}

#[test]
fn chains_still_form_under_chaos() {
    // Overload one replica so the queue depth at dispatch time exceeds
    // one batch: chaos chains must pipeline exactly like healthy ones
    // (no execute-alone fallback).
    let mut config = chaos_config(7, 80);
    config.process = ArrivalProcess::Poisson { rate_rps: 2400.0 };
    let report = serve(&config).unwrap();
    assert!(report.chaos);
    assert_eq!(report.completed + report.shed, report.offered);
    let longest = report
        .batch_records
        .iter()
        .map(|b| b.chain_len)
        .max()
        .unwrap_or(0);
    assert!(
        longest >= 2,
        "chaos batches must chain when the queue backs up, longest {longest}"
    );
}

#[test]
fn wedged_replica_is_quarantined_and_its_queue_rerouted() {
    let config = wedge_config();
    let report = serve(&config).expect("a wedged replica must not abort the run");

    assert_eq!(report.wedge_replica, Some(2));
    assert_eq!(report.completed + report.shed, report.offered);
    assert_eq!(
        report.clean + report.recovered + report.degraded,
        report.completed
    );

    // The wedged replica ends the run quarantined, and at least one
    // healthy replica survives to absorb its queue.
    let wedged = report.replica_stats.get(2).unwrap();
    assert!(wedged.quarantined, "replica 2 was forced to wedge");
    assert!(report.replicas_quarantined >= 1);
    assert!(
        (report.replicas_quarantined as usize) < report.replicas,
        "the last healthy replica is never pulled from service"
    );
    let flagged = report
        .replica_stats
        .iter()
        .filter(|r| r.quarantined)
        .count() as u64;
    assert_eq!(flagged, report.replicas_quarantined);

    // Its queued batches moved rather than died: re-routes happened and
    // every re-routed batch ran on a non-quarantined-at-dispatch
    // replica (the wedged one never executes a re-routed batch).
    assert!(
        report.batches_rerouted > 0,
        "quarantine at 12k rps must strand batches worth re-routing"
    );
    let rerouted: Vec<_> = report
        .batch_records
        .iter()
        .filter(|b| b.routing == "re-routed")
        .collect();
    // `batches_rerouted` counts hops: a batch whose second home is also
    // quarantined re-routes again, so records ≤ hops.
    assert!(!rerouted.is_empty());
    assert!(rerouted.len() as u64 <= report.batches_rerouted);
    for b in &rerouted {
        assert_ne!(b.replica, 2, "re-routed batch landed on the wedged replica");
    }

    // Sum identities hold with a quarantined replica in the mix.
    let batches: u64 = report.replica_stats.iter().map(|r| r.batches).sum();
    assert_eq!(batches, report.batches);
    let requests: u64 = report.replica_stats.iter().map(|r| r.requests).sum();
    assert_eq!(requests, report.completed);
}

#[test]
fn wedge_scenario_replays_byte_identically() {
    let config = wedge_config();
    let a = serve(&config).unwrap();
    let b = serve(&config).unwrap();
    assert_eq!(a, b);
    assert_eq!(
        a.to_json().to_json_pretty(),
        b.to_json().to_json_pretty(),
        "quarantine and re-routing must be deterministic per seed"
    );
}

#[test]
fn zero_batch_replicas_report_zeroed_stats_and_identities_hold() {
    // Three requests across six replicas: at least three replicas never
    // execute a batch and must report all-zero stats without breaking
    // the sum-to-total identities.
    let mut config = ServeConfig::new(SystemSpec::rtx4090(2));
    config.seed = 11;
    config.requests = 3;
    config.replicas = 6;
    let report = serve(&config).unwrap();

    assert_eq!(report.replica_stats.len(), 6);
    let idle: Vec<_> = report
        .replica_stats
        .iter()
        .filter(|r| r.batches == 0)
        .collect();
    assert!(
        idle.len() >= 3,
        "3 requests cannot occupy more than 3 of 6 replicas"
    );
    for r in &idle {
        assert_eq!(
            r.requests, 0,
            "replica {} has requests but no batches",
            r.id
        );
        assert_eq!(r.tokens, 0);
        assert_eq!(r.busy_ns, 0);
        assert_eq!(r.chains, 0);
        assert_eq!(r.utilization, 0.0);
        assert!(!r.quarantined);
    }

    let batches: u64 = report.replica_stats.iter().map(|r| r.batches).sum();
    assert_eq!(batches, report.batches);
    let requests: u64 = report.replica_stats.iter().map(|r| r.requests).sum();
    assert_eq!(requests, report.completed);
    let hits: u64 = report.replica_stats.iter().map(|r| r.cache.hits).sum();
    let misses: u64 = report.replica_stats.iter().map(|r| r.cache.misses).sum();
    assert_eq!((hits, misses), (report.cache.hits, report.cache.misses));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seeded chaos serve over 1-3 replicas terminates with full
    /// accounting and replays byte-identically — random fault plans,
    /// recovery, quarantine, and re-routing are all deterministic
    /// functions of the seed.
    #[test]
    fn seeded_chaos_serves_terminate_and_replay(
        seed in any::<u64>(),
        replicas in 1usize..=3,
    ) {
        let mut config = chaos_config(seed, 40);
        config.replicas = replicas;
        let a = serve(&config).expect("chaos serve terminates");
        prop_assert_eq!(a.offered, 40);
        prop_assert_eq!(a.completed + a.shed, a.offered);
        prop_assert_eq!(a.clean + a.recovered + a.degraded, a.completed);
        prop_assert!(
            (a.replicas_quarantined as usize) < replicas.max(2),
            "quarantine must never empty the replica set"
        );
        let flagged = a.replica_stats.iter().filter(|r| r.quarantined).count() as u64;
        prop_assert_eq!(flagged, a.replicas_quarantined);
        let requests: u64 = a.replica_stats.iter().map(|r| r.requests).sum();
        prop_assert_eq!(requests, a.completed);

        let b = serve(&config).expect("chaos serve replays");
        prop_assert_eq!(
            a.to_json().to_json_pretty(),
            b.to_json().to_json_pretty(),
            "chaos serving must be byte-deterministic per seed"
        );
    }
}
