//! Property test: a plan served from the cache is bit-exact with a
//! cold tune of the same shape — caching changes cost, never results.

use flashoverlap::{CommPattern, OverlapPlan, SystemSpec};
use gpu_sim::gemm::GemmDims;
use proptest::prelude::*;
use serving::PlanCache;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cache_hit_is_bit_exact_with_cold_tune(
        m in prop::sample::select(vec![64u32, 128, 256, 384, 512]),
        shape in prop::sample::select(vec![(2048u32, 704u32), (4096, 7168), (2048, 1408)]),
        seed in 0u64..4,
    ) {
        let (n, k) = shape;
        let dims = GemmDims::new(m, n, k);
        let system = SystemSpec::rtx4090(2).with_seed(seed);
        let mut cache = PlanCache::new(4);

        // Warm the cache, then hit it.
        let (_, first_hit) = cache
            .get_or_tune(dims, &CommPattern::AllReduce, &system)
            .expect("miss path builds a plan");
        prop_assert!(!first_hit);
        let (cached, second_hit) = cache
            .get_or_tune(dims, &CommPattern::AllReduce, &system)
            .expect("hit path returns the cached plan");
        prop_assert!(second_hit);

        // Cold-tune the same shape outside the cache.
        let cold = OverlapPlan::tuned(dims, CommPattern::AllReduce, system)
            .expect("cold tune");

        prop_assert_eq!(
            cached.partition.clone(),
            cold.partition.clone(),
            "cached partition must match a cold tune"
        );
        let opts = flashoverlap::ExecOptions::new();
        let warm_report = cached
            .execute_with(&opts)
            .expect("cached plan executes")
            .report;
        let cold_report = cold.execute_with(&opts).expect("cold plan executes").report;
        prop_assert_eq!(warm_report.latency, cold_report.latency);
        prop_assert_eq!(warm_report.gemm_done, cold_report.gemm_done);
        prop_assert_eq!(warm_report.group_comm_done, cold_report.group_comm_done);
    }
}
