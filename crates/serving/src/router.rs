//! Replica routing: spreading closed batches across TP replica groups.
//!
//! A multi-replica deployment runs N independent tensor-parallel groups
//! behind one admission queue (the simulated stand-in for vLLM-style
//! replica routing — see DESIGN.md's substitution table). The router
//! picks which replica executes each closed batch. Three policies:
//!
//! - **round-robin** — rotate through replicas regardless of load; the
//!   classic stateless baseline.
//! - **least-loaded** — pick the replica with the fewest queued tokens
//!   (ties broken toward the replica that frees up soonest, then the
//!   lowest id), i.e. join-the-shortest-queue in token units.
//! - **shape-affinity** — steer repeat [`GemmDims`] to the replica that
//!   tuned a plan for that shape already, so its warm plan cache is
//!   reused instead of re-tuning the same shape on N caches. Unseen
//!   shapes fall back to least-loaded and establish the affinity.
//!
//! Routing is pure state-machine logic over load snapshots: no clocks,
//! no randomness, deterministic for a given decision sequence.

// Routing is the one module that turns replica *ids* back into array
// accesses all over the server loop, so hold it to the stricter
// no-panic standard: every index is either proven in a comment or
// routed through `get`.
#![warn(clippy::indexing_slicing)]

use std::collections::HashMap;

use gpu_sim::gemm::GemmDims;

/// Which replica gets the next batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterPolicy {
    /// Rotate through replicas in id order.
    #[default]
    RoundRobin,
    /// Fewest queued tokens wins (ties: earliest free, lowest id).
    LeastLoaded,
    /// Repeat shapes go to the replica whose plan cache is warm for
    /// them; new shapes fall back to least-loaded.
    ShapeAffinity,
}

impl RouterPolicy {
    /// Stable label used in reports and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastLoaded => "least-loaded",
            RouterPolicy::ShapeAffinity => "shape-affinity",
        }
    }

    /// Parses a CLI-style label (the inverse of [`RouterPolicy::label`]).
    pub fn parse(s: &str) -> Option<RouterPolicy> {
        match s {
            "round-robin" => Some(RouterPolicy::RoundRobin),
            "least-loaded" => Some(RouterPolicy::LeastLoaded),
            "shape-affinity" => Some(RouterPolicy::ShapeAffinity),
            _ => None,
        }
    }
}

/// A replica's load at routing time, as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicaLoad {
    /// Padded tokens sitting in the replica's dispatch queue.
    pub queued_tokens: u64,
    /// Virtual nanoseconds until the replica's current chain drains
    /// (0 when idle).
    pub busy_ns: u64,
}

/// One routing decision: the chosen replica and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Index of the chosen replica.
    pub replica: usize,
    /// Stable reason label, stamped onto the batch record.
    pub reason: &'static str,
}

/// Stateful batch router over a fixed replica set.
#[derive(Debug, Default)]
pub struct Router {
    policy: RouterPolicy,
    rr_next: usize,
    affinity: HashMap<GemmDims, usize>,
}

impl Router {
    /// A fresh router with no affinity history.
    pub fn new(policy: RouterPolicy) -> Self {
        Router {
            policy,
            rr_next: 0,
            affinity: HashMap::new(),
        }
    }

    /// The policy this router was built with.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Routes a batch with GEMM shape `dims` given per-replica `loads`.
    ///
    /// # Panics
    ///
    /// Panics if `loads` is empty — the server validates `replicas >= 1`
    /// at startup, so an empty snapshot is a caller bug.
    pub fn route(&mut self, dims: GemmDims, loads: &[ReplicaLoad]) -> RouteDecision {
        assert!(!loads.is_empty(), "router needs at least one replica");
        let eligible = vec![true; loads.len()];
        self.route_among(dims, loads, &eligible)
            .expect("every replica is eligible")
    }

    /// Routes among the replicas whose `eligible` flag is set —
    /// quarantined replicas stay in `loads` (indices are stable replica
    /// ids) but are never chosen. Returns `None` when no replica is
    /// eligible; the caller sheds the batch.
    pub fn route_among(
        &mut self,
        dims: GemmDims,
        loads: &[ReplicaLoad],
        eligible: &[bool],
    ) -> Option<RouteDecision> {
        assert_eq!(
            loads.len(),
            eligible.len(),
            "one eligibility flag per replica"
        );
        if !eligible.iter().any(|&e| e) {
            return None;
        }
        match self.policy {
            RouterPolicy::RoundRobin => {
                // Scan at most `len` slots from the rotor for the next
                // eligible replica; the any() guard above proves one
                // exists.
                for step in 0..loads.len() {
                    let replica = (self.rr_next + step) % loads.len();
                    if eligible.get(replica).copied().unwrap_or(false) {
                        self.rr_next = replica.wrapping_add(1);
                        return Some(RouteDecision {
                            replica,
                            reason: "round-robin",
                        });
                    }
                }
                None
            }
            RouterPolicy::LeastLoaded => Some(RouteDecision {
                replica: least_loaded(loads, eligible)?,
                reason: "least-loaded",
            }),
            RouterPolicy::ShapeAffinity => {
                if let Some(&r) = self.affinity.get(&dims) {
                    // Affinity entries are only ever inserted from
                    // `least_loaded` below, which returns an index
                    // `< loads.len()`; the replica count is fixed for
                    // the router's lifetime. A quarantined affine
                    // replica falls through and the shape re-homes.
                    if r < loads.len() && eligible.get(r).copied().unwrap_or(false) {
                        return Some(RouteDecision {
                            replica: r,
                            reason: "affinity-hit",
                        });
                    }
                }
                let replica = least_loaded(loads, eligible)?;
                self.affinity.insert(dims, replica);
                Some(RouteDecision {
                    replica,
                    reason: "affinity-new",
                })
            }
        }
    }
}

/// Index of the least-loaded eligible replica: fewest queued tokens,
/// then soonest free, then lowest id. `None` when nothing is eligible.
fn least_loaded(loads: &[ReplicaLoad], eligible: &[bool]) -> Option<usize> {
    loads
        .iter()
        .enumerate()
        .filter(|(i, _)| eligible.get(*i).copied().unwrap_or(false))
        .min_by_key(|(i, l)| (l.queued_tokens, l.busy_ns, *i))
        .map(|(i, _)| i)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn dims(m: u32) -> GemmDims {
        GemmDims::new(m, 2048, 704)
    }

    fn idle(n: usize) -> Vec<ReplicaLoad> {
        vec![ReplicaLoad::default(); n]
    }

    #[test]
    fn round_robin_cycles_through_replicas() {
        let mut router = Router::new(RouterPolicy::RoundRobin);
        let loads = idle(3);
        let picks: Vec<usize> = (0..6)
            .map(|_| router.route(dims(256), &loads).replica)
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_prefers_fewest_tokens_then_soonest_free() {
        let mut router = Router::new(RouterPolicy::LeastLoaded);
        let loads = vec![
            ReplicaLoad {
                queued_tokens: 512,
                busy_ns: 0,
            },
            ReplicaLoad {
                queued_tokens: 128,
                busy_ns: 900,
            },
            ReplicaLoad {
                queued_tokens: 128,
                busy_ns: 100,
            },
        ];
        let d = router.route(dims(256), &loads);
        assert_eq!((d.replica, d.reason), (2, "least-loaded"));
    }

    #[test]
    fn least_loaded_breaks_full_ties_by_lowest_id() {
        let mut router = Router::new(RouterPolicy::LeastLoaded);
        assert_eq!(router.route(dims(256), &idle(4)).replica, 0);
    }

    #[test]
    fn shape_affinity_steers_repeats_to_the_same_replica() {
        let mut router = Router::new(RouterPolicy::ShapeAffinity);
        let mut loads = idle(3);
        let first = router.route(dims(256), &loads);
        assert_eq!(first.reason, "affinity-new");
        // Pile load onto the affine replica; repeats must stick anyway.
        if let Some(l) = loads.get_mut(first.replica) {
            l.queued_tokens = 10_000;
        }
        let second = router.route(dims(256), &loads);
        assert_eq!(second.replica, first.replica);
        assert_eq!(second.reason, "affinity-hit");
        // A new shape avoids the loaded replica.
        let other = router.route(dims(512), &loads);
        assert_ne!(other.replica, first.replica);
        assert_eq!(other.reason, "affinity-new");
    }

    #[test]
    fn round_robin_skips_quarantined_replicas() {
        let mut router = Router::new(RouterPolicy::RoundRobin);
        let loads = idle(3);
        let eligible = vec![true, false, true];
        let picks: Vec<usize> = (0..4)
            .map(|_| {
                router
                    .route_among(dims(256), &loads, &eligible)
                    .unwrap()
                    .replica
            })
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn affinity_rehomes_when_the_affine_replica_is_quarantined() {
        let mut router = Router::new(RouterPolicy::ShapeAffinity);
        let loads = idle(3);
        let first = router.route(dims(256), &loads);
        assert_eq!((first.replica, first.reason), (0, "affinity-new"));
        let mut eligible = vec![true; 3];
        *eligible.get_mut(first.replica).unwrap() = false;
        let moved = router.route_among(dims(256), &loads, &eligible).unwrap();
        assert_eq!((moved.replica, moved.reason), (1, "affinity-new"));
        // The re-homed affinity sticks on later fully-eligible routes.
        let repeat = router.route(dims(256), &loads);
        assert_eq!((repeat.replica, repeat.reason), (1, "affinity-hit"));
    }

    #[test]
    fn no_eligible_replica_routes_nowhere() {
        let mut router = Router::new(RouterPolicy::LeastLoaded);
        assert_eq!(
            router.route_among(dims(256), &idle(2), &[false, false]),
            None
        );
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for policy in [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastLoaded,
            RouterPolicy::ShapeAffinity,
        ] {
            assert_eq!(RouterPolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(RouterPolicy::parse("random"), None);
    }
}
