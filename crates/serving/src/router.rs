//! Replica routing: spreading closed batches across TP replica groups.
//!
//! A multi-replica deployment runs N independent tensor-parallel groups
//! behind one admission queue (the simulated stand-in for vLLM-style
//! replica routing — see DESIGN.md's substitution table). The router
//! picks which replica executes each closed batch. Three policies:
//!
//! - **round-robin** — rotate through replicas regardless of load; the
//!   classic stateless baseline.
//! - **least-loaded** — pick the replica with the fewest queued tokens
//!   (ties broken toward the replica that frees up soonest, then the
//!   lowest id), i.e. join-the-shortest-queue in token units.
//! - **shape-affinity** — steer repeat [`GemmDims`] to the replica that
//!   tuned a plan for that shape already, so its warm plan cache is
//!   reused instead of re-tuning the same shape on N caches. Unseen
//!   shapes fall back to least-loaded and establish the affinity.
//! - **locality** — on a multi-node deployment, prefer replicas on the
//!   batch's *home node* (the node its session state would live on,
//!   derived deterministically from the shape) and spill across nodes
//!   only when the home node is overloaded past
//!   [`SPILL_SLACK_TOKENS`]; every spill is labelled so the server can
//!   account the inter-node migration penalty.
//!
//! Routing is pure state-machine logic over load snapshots: no clocks,
//! no randomness, deterministic for a given decision sequence.

// Routing is the one module that turns replica *ids* back into array
// accesses all over the server loop, so hold it to the stricter
// no-panic standard: every index is either proven in a comment or
// routed through `get`.
#![warn(clippy::indexing_slicing)]

use std::collections::HashMap;

use gpu_sim::gemm::GemmDims;

/// Which replica gets the next batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterPolicy {
    /// Rotate through replicas in id order.
    #[default]
    RoundRobin,
    /// Fewest queued tokens wins (ties: earliest free, lowest id).
    LeastLoaded,
    /// Repeat shapes go to the replica whose plan cache is warm for
    /// them; new shapes fall back to least-loaded.
    ShapeAffinity,
    /// Prefer replicas on the batch's home node; spill to another node
    /// only when the home node is overloaded (or has no healthy
    /// replica). Falls back to least-loaded on single-node deployments.
    Locality,
}

impl RouterPolicy {
    /// Stable label used in reports and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastLoaded => "least-loaded",
            RouterPolicy::ShapeAffinity => "shape-affinity",
            RouterPolicy::Locality => "locality",
        }
    }

    /// Whether routing decisions read the per-replica load values
    /// (queued tokens / busy time). Round-robin is load-blind — its
    /// rotor only counts replicas and checks eligibility — which lets
    /// the parallel serve loop route batches without synchronizing on
    /// in-flight chains. Every other policy compares loads, so the loop
    /// must force outstanding chains before snapshotting them.
    pub fn reads_loads(&self) -> bool {
        !matches!(self, RouterPolicy::RoundRobin)
    }

    /// Parses a CLI-style label (the inverse of [`RouterPolicy::label`]).
    pub fn parse(s: &str) -> Option<RouterPolicy> {
        match s {
            "round-robin" => Some(RouterPolicy::RoundRobin),
            "least-loaded" => Some(RouterPolicy::LeastLoaded),
            "shape-affinity" => Some(RouterPolicy::ShapeAffinity),
            "locality" => Some(RouterPolicy::Locality),
            _ => None,
        }
    }
}

/// A replica's load at routing time, as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicaLoad {
    /// Padded tokens sitting in the replica's dispatch queue.
    pub queued_tokens: u64,
    /// Virtual nanoseconds until the replica's current chain drains
    /// (0 when idle).
    pub busy_ns: u64,
    /// Node the replica is placed on (0 for single-node deployments).
    pub node: usize,
}

/// Extra queued tokens a home-node replica may carry, beyond double the
/// best remote replica's queue, before the locality policy spills the
/// batch across nodes.
pub const SPILL_SLACK_TOKENS: u64 = 2048;

/// The node a batch's session state lives on: a deterministic FNV-1a
/// hash of the GEMM shape folded over the node count (the simulated
/// stand-in for KV-cache placement of the session that produced the
/// shape).
pub fn home_node(dims: GemmDims, nodes: usize) -> usize {
    if nodes <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in [dims.m, dims.n, dims.k] {
        for b in part.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (h % nodes as u64) as usize
}

/// One routing decision: the chosen replica and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Index of the chosen replica.
    pub replica: usize,
    /// Stable reason label, stamped onto the batch record.
    pub reason: &'static str,
}

/// Stateful batch router over a fixed replica set.
#[derive(Debug, Default)]
pub struct Router {
    policy: RouterPolicy,
    rr_next: usize,
    affinity: HashMap<GemmDims, usize>,
}

impl Router {
    /// A fresh router with no affinity history.
    pub fn new(policy: RouterPolicy) -> Self {
        Router {
            policy,
            rr_next: 0,
            affinity: HashMap::new(),
        }
    }

    /// The policy this router was built with.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Routes a batch with GEMM shape `dims` given per-replica `loads`.
    ///
    /// # Panics
    ///
    /// Panics if `loads` is empty — the server validates `replicas >= 1`
    /// at startup, so an empty snapshot is a caller bug.
    pub fn route(&mut self, dims: GemmDims, loads: &[ReplicaLoad]) -> RouteDecision {
        assert!(!loads.is_empty(), "router needs at least one replica");
        let eligible = vec![true; loads.len()];
        self.route_among(dims, loads, &eligible)
            .expect("every replica is eligible")
    }

    /// Routes among the replicas whose `eligible` flag is set —
    /// quarantined replicas stay in `loads` (indices are stable replica
    /// ids) but are never chosen. Returns `None` when no replica is
    /// eligible; the caller sheds the batch.
    pub fn route_among(
        &mut self,
        dims: GemmDims,
        loads: &[ReplicaLoad],
        eligible: &[bool],
    ) -> Option<RouteDecision> {
        assert_eq!(
            loads.len(),
            eligible.len(),
            "one eligibility flag per replica"
        );
        if !eligible.iter().any(|&e| e) {
            return None;
        }
        match self.policy {
            RouterPolicy::RoundRobin => {
                // Scan at most `len` slots from the rotor for the next
                // eligible replica; the any() guard above proves one
                // exists.
                for step in 0..loads.len() {
                    let replica = (self.rr_next + step) % loads.len();
                    if eligible.get(replica).copied().unwrap_or(false) {
                        self.rr_next = replica.wrapping_add(1);
                        return Some(RouteDecision {
                            replica,
                            reason: "round-robin",
                        });
                    }
                }
                None
            }
            RouterPolicy::LeastLoaded => Some(RouteDecision {
                replica: least_loaded(loads, eligible)?,
                reason: "least-loaded",
            }),
            RouterPolicy::ShapeAffinity => {
                if let Some(&r) = self.affinity.get(&dims) {
                    // Affinity entries are only ever inserted from
                    // `least_loaded` below, which returns an index
                    // `< loads.len()`; the replica count is fixed for
                    // the router's lifetime. A quarantined affine
                    // replica falls through and the shape re-homes.
                    if r < loads.len() && eligible.get(r).copied().unwrap_or(false) {
                        return Some(RouteDecision {
                            replica: r,
                            reason: "affinity-hit",
                        });
                    }
                }
                let replica = least_loaded(loads, eligible)?;
                self.affinity.insert(dims, replica);
                Some(RouteDecision {
                    replica,
                    reason: "affinity-new",
                })
            }
            RouterPolicy::Locality => {
                let nodes = loads.iter().map(|l| l.node).max().map_or(1, |m| m + 1);
                let home = home_node(dims, nodes);
                let local = least_loaded_where(loads, eligible, |l| l.node == home);
                let remote = least_loaded_where(loads, eligible, |l| l.node != home);
                match (local, remote) {
                    (Some(l), Some(r)) => {
                        // `least_loaded_where` only returns in-range
                        // indices, so these lookups always succeed.
                        let local_tokens = loads.get(l).map_or(0, |x| x.queued_tokens);
                        let remote_tokens = loads.get(r).map_or(0, |x| x.queued_tokens);
                        let overloaded = local_tokens
                            > remote_tokens
                                .saturating_mul(2)
                                .saturating_add(SPILL_SLACK_TOKENS);
                        if overloaded {
                            Some(RouteDecision {
                                replica: r,
                                reason: "locality-spill",
                            })
                        } else {
                            Some(RouteDecision {
                                replica: l,
                                reason: "locality-local",
                            })
                        }
                    }
                    (Some(l), None) => Some(RouteDecision {
                        replica: l,
                        reason: "locality-local",
                    }),
                    (None, Some(r)) => Some(RouteDecision {
                        replica: r,
                        reason: "locality-spill",
                    }),
                    (None, None) => None,
                }
            }
        }
    }
}

/// Index of the least-loaded eligible replica: fewest queued tokens,
/// then soonest free, then lowest id. `None` when nothing is eligible.
fn least_loaded(loads: &[ReplicaLoad], eligible: &[bool]) -> Option<usize> {
    least_loaded_where(loads, eligible, |_| true)
}

/// [`least_loaded`] restricted to replicas matching `pred` (the locality
/// policy's home-node / remote split).
fn least_loaded_where(
    loads: &[ReplicaLoad],
    eligible: &[bool],
    pred: impl Fn(&ReplicaLoad) -> bool,
) -> Option<usize> {
    loads
        .iter()
        .enumerate()
        .filter(|(i, l)| eligible.get(*i).copied().unwrap_or(false) && pred(l))
        .min_by_key(|(i, l)| (l.queued_tokens, l.busy_ns, *i))
        .map(|(i, _)| i)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn dims(m: u32) -> GemmDims {
        GemmDims::new(m, 2048, 704)
    }

    fn idle(n: usize) -> Vec<ReplicaLoad> {
        vec![ReplicaLoad::default(); n]
    }

    #[test]
    fn round_robin_cycles_through_replicas() {
        let mut router = Router::new(RouterPolicy::RoundRobin);
        let loads = idle(3);
        let picks: Vec<usize> = (0..6)
            .map(|_| router.route(dims(256), &loads).replica)
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_prefers_fewest_tokens_then_soonest_free() {
        let mut router = Router::new(RouterPolicy::LeastLoaded);
        let loads = vec![
            ReplicaLoad {
                queued_tokens: 512,
                busy_ns: 0,
                node: 0,
            },
            ReplicaLoad {
                queued_tokens: 128,
                busy_ns: 900,
                node: 0,
            },
            ReplicaLoad {
                queued_tokens: 128,
                busy_ns: 100,
                node: 0,
            },
        ];
        let d = router.route(dims(256), &loads);
        assert_eq!((d.replica, d.reason), (2, "least-loaded"));
    }

    #[test]
    fn least_loaded_breaks_full_ties_by_lowest_id() {
        let mut router = Router::new(RouterPolicy::LeastLoaded);
        assert_eq!(router.route(dims(256), &idle(4)).replica, 0);
    }

    #[test]
    fn shape_affinity_steers_repeats_to_the_same_replica() {
        let mut router = Router::new(RouterPolicy::ShapeAffinity);
        let mut loads = idle(3);
        let first = router.route(dims(256), &loads);
        assert_eq!(first.reason, "affinity-new");
        // Pile load onto the affine replica; repeats must stick anyway.
        if let Some(l) = loads.get_mut(first.replica) {
            l.queued_tokens = 10_000;
        }
        let second = router.route(dims(256), &loads);
        assert_eq!(second.replica, first.replica);
        assert_eq!(second.reason, "affinity-hit");
        // A new shape avoids the loaded replica.
        let other = router.route(dims(512), &loads);
        assert_ne!(other.replica, first.replica);
        assert_eq!(other.reason, "affinity-new");
    }

    #[test]
    fn round_robin_skips_quarantined_replicas() {
        let mut router = Router::new(RouterPolicy::RoundRobin);
        let loads = idle(3);
        let eligible = vec![true, false, true];
        let picks: Vec<usize> = (0..4)
            .map(|_| {
                router
                    .route_among(dims(256), &loads, &eligible)
                    .unwrap()
                    .replica
            })
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn affinity_rehomes_when_the_affine_replica_is_quarantined() {
        let mut router = Router::new(RouterPolicy::ShapeAffinity);
        let loads = idle(3);
        let first = router.route(dims(256), &loads);
        assert_eq!((first.replica, first.reason), (0, "affinity-new"));
        let mut eligible = vec![true; 3];
        *eligible.get_mut(first.replica).unwrap() = false;
        let moved = router.route_among(dims(256), &loads, &eligible).unwrap();
        assert_eq!((moved.replica, moved.reason), (1, "affinity-new"));
        // The re-homed affinity sticks on later fully-eligible routes.
        let repeat = router.route(dims(256), &loads);
        assert_eq!((repeat.replica, repeat.reason), (1, "affinity-hit"));
    }

    #[test]
    fn no_eligible_replica_routes_nowhere() {
        let mut router = Router::new(RouterPolicy::LeastLoaded);
        assert_eq!(
            router.route_among(dims(256), &idle(2), &[false, false]),
            None
        );
    }

    /// Four replicas over two nodes: 0/1 on node 0, 2/3 on node 1.
    fn two_node_loads() -> Vec<ReplicaLoad> {
        (0..4)
            .map(|i| ReplicaLoad {
                queued_tokens: 0,
                busy_ns: 0,
                node: i / 2,
            })
            .collect()
    }

    #[test]
    fn locality_prefers_the_home_node() {
        let mut router = Router::new(RouterPolicy::Locality);
        let loads = two_node_loads();
        let d = dims(256);
        let home = home_node(d, 2);
        let decision = router.route(d, &loads);
        assert_eq!(decision.reason, "locality-local");
        assert_eq!(
            loads.get(decision.replica).unwrap().node,
            home,
            "local decision must land on the home node"
        );
        // Repeats keep landing locally (stateless w.r.t. history).
        assert_eq!(router.route(d, &loads).reason, "locality-local");
    }

    #[test]
    fn locality_spills_only_past_the_slack() {
        let mut router = Router::new(RouterPolicy::Locality);
        let d = dims(256);
        let home = home_node(d, 2);
        let mut loads = two_node_loads();
        // Load the home node to just under the spill threshold: stays.
        for l in loads.iter_mut().filter(|l| l.node == home) {
            l.queued_tokens = SPILL_SLACK_TOKENS;
        }
        let stay = router.route(d, &loads);
        assert_eq!(stay.reason, "locality-local");
        // Past double-remote + slack: spills to the other node.
        for l in loads.iter_mut().filter(|l| l.node == home) {
            l.queued_tokens = SPILL_SLACK_TOKENS + 1;
        }
        for l in loads.iter_mut().filter(|l| l.node != home) {
            l.queued_tokens = 0;
        }
        let spill = router.route(d, &loads);
        assert_eq!(spill.reason, "locality-spill");
        assert_ne!(loads.get(spill.replica).unwrap().node, home);
    }

    #[test]
    fn locality_spills_when_the_home_node_is_quarantined() {
        let mut router = Router::new(RouterPolicy::Locality);
        let loads = two_node_loads();
        let d = dims(256);
        let home = home_node(d, 2);
        let eligible: Vec<bool> = loads.iter().map(|l| l.node != home).collect();
        let decision = router.route_among(d, &loads, &eligible).unwrap();
        assert_eq!(decision.reason, "locality-spill");
        assert_ne!(loads.get(decision.replica).unwrap().node, home);
    }

    #[test]
    fn locality_on_one_node_degenerates_to_least_loaded() {
        let mut router = Router::new(RouterPolicy::Locality);
        let mut loads = idle(3);
        loads.get_mut(0).unwrap().queued_tokens = 512;
        let decision = router.route(dims(256), &loads);
        assert_eq!((decision.replica, decision.reason), (1, "locality-local"));
    }

    #[test]
    fn home_node_is_deterministic_and_in_range() {
        for m in [64, 128, 256, 512, 1024] {
            for nodes in [1, 2, 3, 4] {
                let h = home_node(dims(m), nodes);
                assert!(h < nodes);
                assert_eq!(h, home_node(dims(m), nodes));
            }
        }
        // Different shapes spread across nodes (not all on one).
        let homes: std::collections::HashSet<usize> =
            (1..64).map(|m| home_node(dims(m * 16), 2)).collect();
        assert_eq!(homes.len(), 2, "shapes must spread over both nodes");
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for policy in [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastLoaded,
            RouterPolicy::ShapeAffinity,
            RouterPolicy::Locality,
        ] {
            assert_eq!(RouterPolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(RouterPolicy::parse("random"), None);
    }
}
