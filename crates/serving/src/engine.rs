//! The sealed per-replica execution engine.
//!
//! A [`ReplicaEngine`] owns everything one replica group needs to run a
//! chain of batches — the simulated cluster (constructed per execution
//! by [`flashoverlap::execute_sequence`]), the tuned-plan
//! [`PlanCache`], the telemetry monitor/probe wiring, and the chain
//! assembly (per-batch fault plans, sequence options, pipelining). The
//! serve loop never touches any of that state directly: it talks to the
//! engine exclusively through typed [`EngineCommand`] /
//! [`EngineReply`] messages carrying deterministic sequence numbers,
//! which makes the thread boundary auditable and the replica state
//! `Send`-free by construction — the worker (holding `Rc`-based plans)
//! is built *inside* its thread; only plain data crosses.
//!
//! Determinism argument (the reason `--parallel N` is byte-identical to
//! serial for every `N`): a chain's result is a pure function of the
//! engine's command history — the per-replica command stream is FIFO,
//! replies are matched per replica, and the loop applies every chain's
//! accounting effects in global dispatch-sequence order (see
//! [`ChainEffects`]), so no wall-clock interleaving can reorder
//! anything observable. Virtual time lives in the commands
//! (`start_ns`) and replies (`free_ns`); threads only decide *when*
//! the answer is computed, never *what* it is.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::thread::JoinHandle;

use flashoverlap::{
    execute_sequence, CommPattern, Fault, FaultPlan, FlashOverlapError, Instrumentation,
    OverlapPlan, SequenceOptions, WatchdogConfig,
};
use telemetry::attribution::{attribute_makespan, AttributionTotals, Category};
use telemetry::{signal_summary, Telemetry, TelemetryRecord};

use crate::batch::Batch;
use crate::cache::{system_fingerprint, CacheStats, PlanCache, PlanEntry};
use crate::report::{BatchRecord, Disposition, RequestRecord};
use crate::server::{fault_seed, ExecMode, ServeConfig};

/// A closed batch sitting in a replica's dispatch queue (and, once
/// dispatched, travelling to the engine inside a chain command).
#[derive(Debug, Clone)]
pub struct PendingBatch {
    /// The closed batch.
    pub batch: Batch,
    /// Routing label stamped onto the batch record.
    pub routing: &'static str,
    /// When the batch closed and was routed — the start of its
    /// dispatch-queue wait.
    pub close_ns: u64,
    /// Inter-node migration charged before execution (computed at
    /// routing time; zero for home-node or single-node placements).
    pub migration_ns: u64,
}

/// A command sent from the serve loop to one replica engine. Sequence
/// numbers are assigned by the loop in global dispatch order and echoed
/// on the reply, pinning the deterministic merge.
#[derive(Debug)]
pub enum EngineCommand {
    /// Execute `chain` as one (pipelined) simulation starting at
    /// `start_ns` virtual time.
    ExecuteChain {
        /// Global dispatch sequence number.
        seq: u64,
        /// Virtual time the chain launches.
        start_ns: u64,
        /// The batches, in dispatch-queue order.
        chain: Vec<PendingBatch>,
    },
    /// Flush the engine: return lifetime stats, the chain log, and the
    /// cache snapshot entries. Terminal — sent exactly once.
    Finalize {
        /// Global sequence number (after every chain's).
        seq: u64,
    },
}

/// A reply from a replica engine, matched to its command by `seq`.
#[derive(Debug)]
pub enum EngineReply {
    /// Result of an [`EngineCommand::ExecuteChain`].
    Chain {
        /// Echo of the command's sequence number.
        seq: u64,
        /// The chain's timing and accounting effects, or the execution
        /// error.
        result: Result<ChainResult, FlashOverlapError>,
    },
    /// Result of an [`EngineCommand::Finalize`].
    Final {
        /// Echo of the command's sequence number.
        seq: u64,
        /// The engine's lifetime totals, or the construction error that
        /// prevented the engine from ever serving.
        result: Result<EngineFinal, FlashOverlapError>,
    },
}

/// What one executed chain did: the new replica-idle time plus every
/// accounting side effect, packaged so the loop can apply effects in
/// global dispatch-sequence order regardless of which thread finished
/// first.
#[derive(Debug)]
pub struct ChainResult {
    /// Virtual time the chain drains (the replica's next idle instant).
    pub free_ns: u64,
    /// Whether any batch in the chain came back degraded (the caller's
    /// quarantine signal; only possible under chaos).
    pub degraded: bool,
    /// The chain's accounting effects.
    pub effects: ChainEffects,
}

/// The accounting side effects of one executed chain, replayed into the
/// run's [`Accounting`](crate::server) strictly in dispatch-sequence
/// order — f64 accumulation order and batch-record order are part of
/// the byte-identical report contract.
#[derive(Debug, Default)]
pub struct ChainEffects {
    /// Per-request completion records.
    pub(crate) records: Vec<RequestRecord>,
    /// Per-batch execution records, in chain order.
    pub(crate) batch_records: Vec<BatchRecord>,
    /// Signal-latency weighted sum delta (`mean * samples`).
    pub(crate) signal_weighted_sum: f64,
    /// Signal sample count delta.
    pub(crate) signal_samples: u64,
    /// Batches executed off their home node.
    pub(crate) cross_node_batches: u64,
    /// Inter-node migration charged to those batches.
    pub(crate) migration_ns: u64,
    /// Inter-node bytes the hierarchical schedule moved.
    pub(crate) inter_bytes_hierarchical: u64,
    /// Inter-node bytes the flat ring would have moved.
    pub(crate) inter_bytes_flat: u64,
    /// Predictor-drift sample from the chain-leading batch:
    /// `(dims, predicted, measured)` group completions.
    #[allow(clippy::type_complexity)]
    pub(crate) drift: Option<(
        gpu_sim::gemm::GemmDims,
        Vec<sim::SimDuration>,
        Vec<sim::SimDuration>,
    )>,
}

/// The engine's lifetime totals, returned by
/// [`EngineCommand::Finalize`]: everything the report builder needs
/// from inside the sealed boundary.
#[derive(Debug)]
pub struct EngineFinal {
    /// Batches executed.
    pub(crate) batches: u64,
    /// Requests completed.
    pub(crate) requests: u64,
    /// Tokens processed (pre-padding).
    pub(crate) tokens: u64,
    /// Chains executed.
    pub(crate) chains: u64,
    /// Virtual busy time (migration + execution).
    pub(crate) busy_ns: u64,
    /// Executed chains as `(start_ns, total_ns, attribution)`.
    pub(crate) chain_log: Vec<(u64, u64, AttributionTotals)>,
    /// Plan-cache hit/miss/eviction counters.
    pub(crate) cache_stats: CacheStats,
    /// Exported tuned-plan entries (the `--plan-cache-out` payload).
    pub(crate) entries: Vec<PlanEntry>,
}

/// The worker behind one [`ReplicaEngine`]: owns the plan cache and the
/// chain executor. `Rc`-based internals make it deliberately `!Send` —
/// it is constructed on whichever thread runs it and never moves.
struct EngineWorker {
    config: ServeConfig,
    replica_idx: usize,
    tp: u32,
    cache: PlanCache,
    batches: u64,
    requests: u64,
    tokens: u64,
    chains: u64,
    busy_ns: u64,
    chain_log: Vec<(u64, u64, AttributionTotals)>,
    /// Recycled telemetry buffers: each chain's recorder takes this
    /// record's capacity and hands it back after harvest, so the
    /// per-event vectors stop re-growing from zero on every chain.
    scratch: TelemetryRecord,
}

impl EngineWorker {
    fn new(
        config: ServeConfig,
        tuned: bool,
        replica_idx: usize,
    ) -> Result<Self, FlashOverlapError> {
        let mut cache = if tuned {
            PlanCache::new(config.cache_capacity)
        } else {
            PlanCache::new_untuned(config.cache_capacity)
        };
        if let Some(snapshot) = &config.preload {
            // Fingerprint compatibility was validated up front.
            cache.preload(&config.system, &snapshot.entries)?;
        }
        let tp = config.system.n_gpus as u32;
        Ok(EngineWorker {
            config,
            replica_idx,
            tp,
            cache,
            batches: 0,
            requests: 0,
            tokens: 0,
            chains: 0,
            busy_ns: 0,
            chain_log: Vec::new(),
            scratch: TelemetryRecord::default(),
        })
    }

    fn handle(&mut self, cmd: EngineCommand) -> EngineReply {
        match cmd {
            EngineCommand::ExecuteChain {
                seq,
                start_ns,
                chain,
            } => EngineReply::Chain {
                seq,
                result: self.execute_chain(start_ns, chain),
            },
            EngineCommand::Finalize { seq } => EngineReply::Final {
                seq,
                result: Ok(self.finalize()),
            },
        }
    }

    /// Executes one chain of batches starting at `start_ns`, recording
    /// per-request and per-batch effects. The virtual-time math is
    /// identical to the pre-engine serve loop's inline `run_chain` —
    /// byte-compatibility of the report depends on it.
    fn execute_chain(
        &mut self,
        start_ns: u64,
        chain: Vec<PendingBatch>,
    ) -> Result<ChainResult, FlashOverlapError> {
        // Split the borrow: the cache is mutated while the config is
        // read, and the lifetime counters bump batch by batch.
        let EngineWorker {
            config,
            replica_idx,
            tp,
            cache,
            batches,
            requests,
            tokens,
            chains,
            busy_ns,
            chain_log,
            scratch,
        } = self;
        let config: &ServeConfig = config;
        let replica_idx = *replica_idx;
        let tp = *tp;
        let mut effects = ChainEffects::default();

        let pattern = CommPattern::AllReduce;
        let mut plans: Vec<(std::rc::Rc<OverlapPlan>, bool)> = Vec::with_capacity(chain.len());
        for p in &chain {
            plans.push(cache.get_or_tune(p.batch.gemm_dims(tp), &pattern, &config.system)?);
        }

        let chain_len = chain.len() as u64;
        // Total inter-node migration for the chain, charged up front: the
        // chain cannot launch until every member batch's activations have
        // crossed the inter-node fabric. Zero on single-node runs, so the
        // pre-topology timeline is reproduced exactly.
        let mig_ns: u64 = chain.iter().map(|p| p.migration_ns).sum();
        let telemetry = Telemetry::recycling(std::mem::take(scratch));
        // Per-batch deterministic fault plans. The wedge-replica override
        // replaces the leading batch's draw with an unrecoverable
        // dropped-signal wedge (group 0 starves, so no group completes and
        // recovery can only abandon the overlap — deterministically
        // degraded).
        let chaos_faults: Vec<FaultPlan> = if config.chaos {
            chain
                .iter()
                .zip(&plans)
                .enumerate()
                .map(|(i, (p, (plan, _)))| {
                    if i == 0 && config.wedge_replica == Some(replica_idx) {
                        FaultPlan::single(Fault::DroppedIncrement {
                            rank: 0,
                            group: 0,
                            count: u32::MAX,
                        })
                    } else {
                        FaultPlan::random(
                            fault_seed(config.seed, p.batch.id),
                            config.system.n_gpus,
                            plan.partition.num_groups(),
                        )
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        let watchdog = WatchdogConfig::default();
        // Resilient sequences reject probe instrumentation, so chaos chains
        // run monitor-only (spans still flow; tail/bulk recovery collectives
        // land in the `recovery` attribution category).
        let monitor_instr = Instrumentation {
            monitor: Some(telemetry.monitor()),
            probe: None,
            mutation: None,
        };
        let probe_instr = telemetry.instrumentation();
        let mut options = SequenceOptions::new().trace();
        options = if config.chaos {
            options
                .instrument(&monitor_instr)
                .resilient(&chaos_faults, &watchdog)
        } else {
            options.instrument(&probe_instr)
        };
        if !config.pipelined {
            options = options.serial();
        }
        let plan_refs: Vec<&OverlapPlan> = plans.iter().map(|(p, _)| p.as_ref()).collect();
        let outcome = execute_sequence(&plan_refs, &options)?;
        let completions: Vec<u64> = outcome
            .reports
            .iter()
            .map(|r| r.latency.as_nanos())
            .collect();
        let outcomes: Vec<&'static str> = outcome.outcomes.iter().map(|o| o.label()).collect();
        let group_dones: Vec<Vec<sim::SimDuration>> = outcome
            .reports
            .iter()
            .map(|r| r.group_comm_done.clone())
            .collect();
        let total_ns = outcome.total.as_nanos();
        let spans = outcome.spans;
        let record = telemetry.take_record();
        if let Some(sig) = signal_summary(&record, &spans) {
            effects.signal_weighted_sum = sig.mean_total_ns * sig.samples.len() as f64;
            effects.signal_samples = sig.samples.len() as u64;
        }
        // Critical-path attribution of the whole chain; per-batch shares are
        // clipped out of it below.
        let attribution = attribute_makespan(&spans, &record, total_ns);
        // Done reading the record — hand its buffers back for the next
        // chain's recorder (recycling clears them on reuse).
        *scratch = record;

        // Predictor drift: sample only the chain-leading batch — later
        // pipelined batches' measured completions include comm-stream
        // queueing behind the previous batch's tail and would bias the
        // comparison.
        if let (Some(p), Some(measured)) = (plans.first(), group_dones.first()) {
            if let Some(predicted) = p.0.predicted_group_completions() {
                let dims = chain
                    .first()
                    .expect("chain is non-empty")
                    .batch
                    .gemm_dims(tp);
                effects.drift = Some((dims, predicted, measured.clone()));
            }
        }

        let mut prev_done = 0u64;
        for ((pending, (_, cache_hit)), (done_ns, outcome)) in chain
            .iter()
            .zip(&plans)
            .zip(completions.iter().zip(&outcomes))
        {
            let batch = &pending.batch;
            let end_ns = start_ns.saturating_add(mig_ns).saturating_add(*done_ns);
            // Recovery can complete a wedged batch *after* its successor
            // (the tail re-issue runs while downstream comm drains), so the
            // accounting window is clamped monotone; request latencies keep
            // the true completion time.
            let window_end = (*done_ns).max(prev_done);
            let disposition = Disposition::from_outcome_label(outcome);
            let queue_wait = start_ns.saturating_sub(pending.close_ns);
            for r in &batch.requests {
                effects.records.push(RequestRecord {
                    id: r.id,
                    model: r.model.name,
                    tokens: r.tokens,
                    arrival_ns: r.arrival_ns,
                    disposition,
                    batch: Some(batch.id),
                    latency_ns: Some(end_ns - r.arrival_ns),
                    form_wait_ns: Some(pending.close_ns.saturating_sub(r.arrival_ns)),
                    queue_wait_ns: Some(queue_wait),
                });
            }
            if pending.migration_ns > 0 {
                effects.cross_node_batches += 1;
                effects.migration_ns += pending.migration_ns;
            }
            if config.nodes > 1 {
                // Byte accounting for the batch's tensor-parallel AllReduce
                // (full reduced M x N output): what the hierarchical schedule
                // actually crossed nodes with vs. what the flat ring would
                // have.
                let dims = batch.gemm_dims(tp);
                let payload = u64::from(dims.m) * u64::from(dims.n) * collectives::BYTES_PER_ELEM;
                let topo = &config.system.topology;
                effects.inter_bytes_hierarchical += collectives::inter_bytes_hierarchical(
                    collectives::Primitive::AllReduce,
                    payload,
                    topo,
                );
                effects.inter_bytes_flat +=
                    collectives::inter_bytes_flat(collectives::Primitive::AllReduce, payload, topo);
            }
            effects.batch_records.push(BatchRecord {
                id: batch.id,
                model: batch.model.name,
                requests: batch.requests.len() as u64,
                tokens: batch.tokens,
                padded_tokens: batch.padded_tokens,
                start_ns: start_ns.saturating_add(mig_ns).saturating_add(prev_done),
                exec_ns: window_end - prev_done,
                cache_hit: *cache_hit,
                outcome,
                replica: replica_idx,
                node: replica_idx % config.nodes,
                migration_ns: pending.migration_ns,
                routing: pending.routing,
                chain_len,
                close_ns: pending.close_ns,
                queue_wait_ns: queue_wait,
                attribution: Some(attribution.clip_window(prev_done, window_end)),
            });
            *batches += 1;
            *requests += batch.requests.len() as u64;
            *tokens += u64::from(batch.tokens);
            prev_done = window_end;
        }
        *busy_ns += mig_ns + total_ns;
        *chains += 1;
        // The chain window spans migration + execution; migration is
        // inter-node traffic, so it lands in the collective-transfer
        // category and the serve-level attribution identity still holds.
        let mut chain_totals = attribution.totals;
        chain_totals.add(Category::CollectiveTransfer, mig_ns);
        chain_log.push((start_ns, mig_ns.saturating_add(total_ns), chain_totals));
        let any_degraded = outcomes.contains(&"degraded");
        Ok(ChainResult {
            free_ns: start_ns.saturating_add(mig_ns).saturating_add(total_ns),
            degraded: any_degraded,
            effects,
        })
    }

    fn finalize(&mut self) -> EngineFinal {
        let fp = system_fingerprint(&self.config.system);
        EngineFinal {
            batches: self.batches,
            requests: self.requests,
            tokens: self.tokens,
            chains: self.chains,
            busy_ns: self.busy_ns,
            chain_log: std::mem::take(&mut self.chain_log),
            cache_stats: self.cache.stats(),
            entries: self.cache.export_entries(fp),
        }
    }
}

/// The loop-facing handle to one sealed replica engine.
///
/// Serial engines execute commands inline at `send` time and queue the
/// reply; parallel engines forward commands to a worker thread and
/// `recv` blocks until the reply lands. Either way the observable
/// protocol is identical: per-replica FIFO commands, per-replica
/// replies, sequence numbers pinning the global merge order.
pub struct ReplicaEngine {
    inner: EngineInner,
}

impl std::fmt::Debug for ReplicaEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            EngineInner::Serial { .. } => f.write_str("ReplicaEngine(serial)"),
            EngineInner::Parallel { engine, .. } => write!(f, "ReplicaEngine(parallel #{engine})"),
        }
    }
}

enum EngineInner {
    Serial {
        worker: Box<RefCell<EngineWorker>>,
        replies: RefCell<VecDeque<EngineReply>>,
    },
    Parallel {
        engine: usize,
        commands: mpsc::Sender<(usize, EngineCommand)>,
        replies: mpsc::Receiver<EngineReply>,
    },
}

impl ReplicaEngine {
    /// Submits a command to the engine. Never blocks.
    pub fn send(&self, cmd: EngineCommand) {
        match &self.inner {
            EngineInner::Serial { worker, replies } => {
                let reply = worker.borrow_mut().handle(cmd);
                replies.borrow_mut().push_back(reply);
            }
            EngineInner::Parallel {
                engine, commands, ..
            } => {
                // A send can only fail if the worker thread died, which a
                // worker panic causes; the paired recv surfaces it.
                let _ = commands.send((*engine, cmd));
            }
        }
    }

    /// Receives the next reply, blocking until the engine produces it.
    /// Replies come back in command order (per-replica FIFO).
    pub fn recv(&self) -> EngineReply {
        match &self.inner {
            EngineInner::Serial { replies, .. } => replies
                .borrow_mut()
                .pop_front()
                .expect("serial engine recv without a pending command"),
            EngineInner::Parallel { replies, .. } => replies
                .recv()
                .expect("replica engine thread terminated unexpectedly"),
        }
    }
}

/// All replica engines of one serve run, plus the worker threads that
/// back them in parallel mode. Dropping the pool closes the command
/// channels and joins the threads.
pub struct EnginePool {
    /// One engine per replica, indexed like the replicas.
    pub engines: Vec<ReplicaEngine>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for EnginePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnginePool")
            .field("engines", &self.engines.len())
            .field("threads", &self.threads.len())
            .finish()
    }
}

impl EnginePool {
    /// Builds the engines for `config.replicas` replicas.
    ///
    /// Serial mode constructs every worker inline (surfacing preload
    /// errors immediately, like the pre-engine loop). Parallel mode
    /// spawns `min(threads, replicas)` worker threads, assigns engine
    /// `i` to thread `i % threads`, and constructs each worker *on* its
    /// thread — worker state never crosses the boundary; construction
    /// errors surface on the engine's first reply.
    ///
    /// # Errors
    ///
    /// Returns any serial-mode worker construction error (e.g. a
    /// malformed preload snapshot).
    pub fn new(config: &ServeConfig, tuned: bool) -> Result<EnginePool, FlashOverlapError> {
        match config.exec {
            ExecMode::Serial => {
                let engines = (0..config.replicas)
                    .map(|idx| {
                        Ok(ReplicaEngine {
                            inner: EngineInner::Serial {
                                worker: Box::new(RefCell::new(EngineWorker::new(
                                    config.clone(),
                                    tuned,
                                    idx,
                                )?)),
                                replies: RefCell::new(VecDeque::new()),
                            },
                        })
                    })
                    .collect::<Result<Vec<_>, FlashOverlapError>>()?;
                Ok(EnginePool {
                    engines,
                    threads: Vec::new(),
                })
            }
            ExecMode::Parallel(threads) => {
                let thread_count = threads.clamp(1, config.replicas.max(1));
                let mut reply_txs: Vec<Option<mpsc::Sender<EngineReply>>> = Vec::new();
                let mut engines_by_thread: Vec<Vec<(usize, mpsc::Sender<EngineReply>)>> =
                    (0..thread_count).map(|_| Vec::new()).collect();
                let mut reply_rxs = Vec::new();
                for idx in 0..config.replicas {
                    let (tx, rx) = mpsc::channel();
                    engines_by_thread[idx % thread_count].push((idx, tx.clone()));
                    reply_txs.push(Some(tx));
                    reply_rxs.push(rx);
                }
                let mut cmd_txs = Vec::new();
                let mut threads_out = Vec::new();
                for assigned in engines_by_thread {
                    let (cmd_tx, cmd_rx) = mpsc::channel::<(usize, EngineCommand)>();
                    cmd_txs.push(cmd_tx);
                    let config = config.clone();
                    threads_out.push(std::thread::spawn(move || {
                        engine_thread(&config, tuned, assigned, &cmd_rx);
                    }));
                }
                let engines = reply_rxs
                    .into_iter()
                    .enumerate()
                    .map(|(idx, rx)| ReplicaEngine {
                        inner: EngineInner::Parallel {
                            engine: idx,
                            commands: cmd_txs[idx % thread_count].clone(),
                            replies: rx,
                        },
                    })
                    .collect();
                Ok(EnginePool {
                    engines,
                    threads: threads_out,
                })
            }
        }
    }
}

impl Drop for EnginePool {
    fn drop(&mut self) {
        // Dropping the engines drops the command senders, which drains
        // and exits the worker threads.
        self.engines.clear();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker-thread main: build the assigned workers locally (so their
/// `Rc`-based plan caches never cross threads), then serve commands in
/// arrival order until the loop drops the channel.
fn engine_thread(
    config: &ServeConfig,
    tuned: bool,
    assigned: Vec<(usize, mpsc::Sender<EngineReply>)>,
    commands: &mpsc::Receiver<(usize, EngineCommand)>,
) {
    let mut workers: HashMap<
        usize,
        (
            mpsc::Sender<EngineReply>,
            Result<EngineWorker, FlashOverlapError>,
        ),
    > = assigned
        .into_iter()
        .map(|(idx, tx)| (idx, (tx, EngineWorker::new(config.clone(), tuned, idx))))
        .collect();
    while let Ok((idx, cmd)) = commands.recv() {
        let Some((tx, worker)) = workers.get_mut(&idx) else {
            continue;
        };
        let reply = match worker {
            Ok(w) => w.handle(cmd),
            // Construction failed; every command answers with the error.
            Err(e) => match cmd {
                EngineCommand::ExecuteChain { seq, .. } => EngineReply::Chain {
                    seq,
                    result: Err(e.clone()),
                },
                EngineCommand::Finalize { seq } => EngineReply::Final {
                    seq,
                    result: Err(e.clone()),
                },
            },
        };
        let _ = tx.send(reply);
    }
}

// Everything that crosses the thread boundary must be Send; the worker
// itself (Rc-based plan cache) deliberately is not and never moves.
#[allow(dead_code)]
fn assert_boundary_types_are_send() {
    fn is_send<T: Send>() {}
    is_send::<ServeConfig>();
    is_send::<EngineCommand>();
    is_send::<EngineReply>();
    is_send::<ChainEffects>();
    is_send::<EngineFinal>();
}
