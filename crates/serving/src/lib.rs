//! Continuous-batching serving layer over the FlashOverlap runtime.
//!
//! The paper evaluates FlashOverlap operator-by-operator; this crate
//! closes the loop to the setting that motivates online tuning in the
//! first place: an inference server whose GEMM shapes churn with the
//! traffic. It is the simulated stand-in for a vLLM/Triton-style
//! serving engine (see DESIGN.md's substitution table), built from
//! five deterministic pieces:
//!
//! - [`traffic`] — seeded open-loop arrival traces (Poisson or bursty)
//!   over a weighted model mix ([`workloads::ServeMix`]);
//! - [`batch`] — continuous batching with a token budget, a max-wait
//!   deadline, and token-bucket shape quantization;
//! - [`cache`] — a bounded LRU of tuned [`OverlapPlan`]s keyed by
//!   `(shape, primitive, system fingerprint)`, running the paper's
//!   predictive search (§4.1.4) online on each miss, with snapshot
//!   export/preload for warm restarts;
//! - [`router`] — batch routing across N independent replica groups
//!   (round-robin, least-loaded, shape-affinity — which steers each
//!   bucketed shape to a home replica to keep its plan cache hot — or
//!   locality, which on multi-node deployments prefers replicas on the
//!   batch's home node and spills across nodes only under overload,
//!   with the inter-node migration penalty accounted);
//! - [`server`] — the admission/routing/execution loop over virtual
//!   time, with bounded-queue shedding, cross-batch pipelined chains
//!   (batch `k+1`'s GEMM overlaps batch `k`'s tail collectives via
//!   [`flashoverlap::execute_sequence`]), optional per-batch fault
//!   injection through the resilient runtime, and full per-request,
//!   per-replica accounting into a [`report::ServeReport`].
//!
//! Everything is seeded: the same [`server::ServeConfig`] produces a
//! bit-identical report, JSON included.
//!
//! [`OverlapPlan`]: flashoverlap::OverlapPlan

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod engine;
pub mod report;
pub mod router;
pub mod server;
pub mod trace;
pub mod traffic;

pub use batch::{form_batch, Batch, BatchConfig};
pub use cache::{system_fingerprint, CacheSnapshot, CacheStats, PlanCache, PlanEntry, PlanKey};
pub use engine::{
    ChainResult, EngineCommand, EnginePool, EngineReply, PendingBatch, ReplicaEngine,
};
pub use report::{
    BatchRecord, ComparisonReport, Disposition, DriftRow, NodeStats, ReplicaStats, RequestRecord,
    ScalingReport, ServeReport,
};
pub use router::{home_node, ReplicaLoad, RouteDecision, Router, RouterPolicy};
pub use server::{
    serve, serve_baseline, serve_comparison, serve_exporting, serve_scaling, validate_parallel,
    ExecMode, ServeConfig,
};
pub use trace::{serve_trace, serve_trace_string};
pub use traffic::{generate, ArrivalProcess, Request};
