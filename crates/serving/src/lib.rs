//! Continuous-batching serving layer over the FlashOverlap runtime.
//!
//! The paper evaluates FlashOverlap operator-by-operator; this crate
//! closes the loop to the setting that motivates online tuning in the
//! first place: an inference server whose GEMM shapes churn with the
//! traffic. It is the simulated stand-in for a vLLM/Triton-style
//! serving engine (see DESIGN.md's substitution table), built from
//! four deterministic pieces:
//!
//! - [`traffic`] — seeded open-loop arrival traces (Poisson or bursty)
//!   over a weighted model mix ([`workloads::ServeMix`]);
//! - [`batch`] — continuous batching with a token budget, a max-wait
//!   deadline, and token-bucket shape quantization;
//! - [`cache`] — a bounded LRU of tuned [`OverlapPlan`]s keyed by
//!   `(shape, primitive, system fingerprint)`, running the paper's
//!   predictive search (§4.1.4) online on each miss;
//! - [`server`] — the admission/batching/execution loop over virtual
//!   time, with bounded-queue shedding, optional per-batch fault
//!   injection through the resilient runtime, and full per-request
//!   accounting into a [`report::ServeReport`].
//!
//! Everything is seeded: the same [`server::ServeConfig`] produces a
//! bit-identical report, JSON included.
//!
//! [`OverlapPlan`]: flashoverlap::OverlapPlan

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod report;
pub mod server;
pub mod traffic;

pub use batch::{form_batch, Batch, BatchConfig};
pub use cache::{system_fingerprint, CacheStats, PlanCache, PlanKey};
pub use report::{BatchRecord, ComparisonReport, Disposition, RequestRecord, ServeReport};
pub use server::{serve, serve_baseline, serve_comparison, ServeConfig};
pub use traffic::{generate, ArrivalProcess, Request};
