//! Seeded request traffic: arrival processes and request synthesis.
//!
//! Serving systems are driven by open-loop arrival traces; here the
//! trace is synthesized deterministically from a seed so every serve
//! run is bit-reproducible. Two arrival processes are modelled:
//! [`ArrivalProcess::Poisson`] (the standard open-loop assumption) and
//! [`ArrivalProcess::Bursty`], a two-phase modulated Poisson process
//! that alternates calm and burst phases — the regime where admission
//! control and shedding actually trigger.

use sim::DetRng;
use workloads::{ModelSpec, ServeMix};

/// Dedicated fork streams so the arrival-time draws and the shape draws
/// are independent: changing the mix never perturbs arrival times and
/// vice versa.
const STREAM_ARRIVALS: u64 = 0xA221;
const STREAM_SHAPES: u64 = 0x54A9;

/// One inference request entering the serving layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Monotonic id in arrival order.
    pub id: u64,
    /// Virtual arrival time in nanoseconds.
    pub arrival_ns: u64,
    /// Model the request targets (selects the GEMM shape family).
    pub model: ModelSpec,
    /// Token count (this request's contribution to the batch `M`).
    pub tokens: u32,
}

/// Open-loop arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential inter-arrival times at `rate_rps`
    /// requests per (virtual) second.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_rps: f64,
    },
    /// Two-phase modulated Poisson: alternates a calm phase at
    /// `base_rps` and a burst phase at `burst_rps`, with exponentially
    /// distributed phase lengths of mean `mean_phase_ms`. Inter-arrival
    /// gaps are drawn at the rate of the phase in effect when the gap
    /// starts (a gap may straddle a phase boundary; the approximation
    /// is standard and keeps generation single-pass).
    Bursty {
        /// Calm-phase arrival rate in requests per second.
        base_rps: f64,
        /// Burst-phase arrival rate in requests per second.
        burst_rps: f64,
        /// Mean phase duration in milliseconds.
        mean_phase_ms: f64,
    },
}

impl ArrivalProcess {
    /// Short label used in reports ("poisson" / "bursty").
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
        }
    }
}

/// Draws an exponential variate with the given rate (events per second),
/// returned in nanoseconds. Inverse-CDF sampling over `next_f64`'s
/// `[0, 1)` output; `1 - u` is in `(0, 1]` so the log is finite.
fn exp_ns(rng: &mut DetRng, rate_per_s: f64) -> u64 {
    assert!(rate_per_s > 0.0, "arrival rate must be positive");
    let u = rng.next_f64();
    (-(1.0 - u).ln() / rate_per_s * 1e9).round() as u64
}

/// Synthesizes `n` requests from the mix under the arrival process, in
/// arrival order. Deterministic in `seed`: same arguments, bit-identical
/// trace.
pub fn generate(mix: &ServeMix, process: ArrivalProcess, n: usize, seed: u64) -> Vec<Request> {
    let root = DetRng::new(seed);
    let mut arrivals = root.fork(STREAM_ARRIVALS);
    let mut shapes = root.fork(STREAM_SHAPES);

    let mut now_ns = 0u64;
    // Bursty bookkeeping: phase toggles when `now` passes `phase_end`.
    let mut in_burst = false;
    let mut phase_end_ns = match process {
        ArrivalProcess::Poisson { .. } => u64::MAX,
        ArrivalProcess::Bursty { mean_phase_ms, .. } => {
            exp_ns(&mut arrivals, 1000.0 / mean_phase_ms)
        }
    };

    let mut out = Vec::with_capacity(n);
    for id in 0..n as u64 {
        let rate = match process {
            ArrivalProcess::Poisson { rate_rps } => rate_rps,
            ArrivalProcess::Bursty {
                base_rps,
                burst_rps,
                mean_phase_ms,
            } => {
                while now_ns >= phase_end_ns {
                    in_burst = !in_burst;
                    phase_end_ns =
                        phase_end_ns.saturating_add(exp_ns(&mut arrivals, 1000.0 / mean_phase_ms));
                }
                if in_burst {
                    burst_rps
                } else {
                    base_rps
                }
            }
        };
        now_ns = now_ns.saturating_add(exp_ns(&mut arrivals, rate));
        let (model, tokens) = mix.sample(&mut shapes);
        out.push(Request {
            id,
            arrival_ns: now_ns,
            model,
            tokens,
        });
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::indexing_slicing)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_is_deterministic_and_ordered() {
        let mix = ServeMix::default_mix();
        let p = ArrivalProcess::Poisson { rate_rps: 2000.0 };
        let a = generate(&mix, p, 100, 42);
        let b = generate(&mix, p, 100, 42);
        assert_eq!(a, b, "same seed must give a bit-identical trace");
        for w in a.windows(2) {
            assert!(w[0].arrival_ns <= w[1].arrival_ns, "arrivals are ordered");
        }
        assert!(a.iter().enumerate().all(|(i, r)| r.id == i as u64));
    }

    #[test]
    fn different_seeds_differ() {
        let mix = ServeMix::default_mix();
        let p = ArrivalProcess::Poisson { rate_rps: 2000.0 };
        assert_ne!(generate(&mix, p, 50, 1), generate(&mix, p, 50, 2));
    }

    #[test]
    fn poisson_mean_rate_is_roughly_right() {
        let mix = ServeMix::default_mix();
        let p = ArrivalProcess::Poisson { rate_rps: 1000.0 };
        let trace = generate(&mix, p, 2000, 7);
        let span_s = trace.last().unwrap().arrival_ns as f64 / 1e9;
        let rate = 2000.0 / span_s;
        assert!(
            (600.0..1600.0).contains(&rate),
            "empirical rate {rate} too far from 1000 rps"
        );
    }

    #[test]
    fn bursty_phases_modulate_density() {
        let mix = ServeMix::default_mix();
        let p = ArrivalProcess::Bursty {
            base_rps: 500.0,
            burst_rps: 20_000.0,
            mean_phase_ms: 5.0,
        };
        let trace = generate(&mix, p, 2000, 11);
        // A modulated process must produce a wider inter-arrival spread
        // than its calm rate alone: some gaps near the burst scale
        // (~50us), some near the calm scale (~2ms).
        let gaps: Vec<u64> = trace
            .windows(2)
            .map(|w| w[1].arrival_ns - w[0].arrival_ns)
            .collect();
        let short = gaps.iter().filter(|&&g| g < 200_000).count();
        let long = gaps.iter().filter(|&&g| g > 800_000).count();
        assert!(short > 100, "expected burst-scale gaps, got {short}");
        assert!(long > 10, "expected calm-scale gaps, got {long}");
    }
}
