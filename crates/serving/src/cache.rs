//! Tuned-plan cache: amortizing predictive search across a serve run.
//!
//! The paper's tuning cost argument (§4.1.4) is that predictive search
//! is cheap enough to run *online*: when a serving batch produces a GEMM
//! shape the runtime has not seen, the scheduler tunes a partition for
//! it analytically (no execution) and caches the resulting
//! [`OverlapPlan`]. Subsequent batches with the same shape on the same
//! system reuse the plan — the common case once token-bucket
//! quantization bounds the distinct shapes in flight.
//!
//! The cache is keyed by `(GemmDims, Primitive, system fingerprint)`
//! and bounded with LRU eviction. Recency is a monotonic tick (no wall
//! clock), and ticks are unique, so eviction order is deterministic
//! regardless of `HashMap` iteration order.

use std::collections::HashMap;
use std::rc::Rc;

use collectives::Primitive;
use flashoverlap::{
    predictive_search, CommPattern, FlashOverlapError, OverlapPlan, SystemSpec, WavePartition,
};
use gpu_sim::gemm::{GemmConfig, GemmDims};

/// Cache key: the GEMM shape, the collective primitive, and a
/// fingerprint of the system the plan was tuned for. A plan tuned for
/// one fabric/SM budget is wrong for another, so the fingerprint keeps
/// heterogeneous systems from aliasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// GEMM problem shape.
    pub dims: GemmDims,
    /// Collective primitive overlapped with the GEMM.
    pub primitive: Primitive,
    /// [`system_fingerprint`] of the target system.
    pub system_fp: u64,
}

/// FNV-1a over the plan-relevant fields of a [`SystemSpec`]. Two specs
/// with equal fingerprints tune to the same partition: the hash covers
/// everything `predictive_search` and plan construction read (arch,
/// fabric, group size, SM budget, algorithm, seed, launch skew).
pub fn system_fingerprint(system: &SystemSpec) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(system.arch.name.as_bytes());
    eat(&system.arch.sm_count.to_le_bytes());
    eat(system.fabric.name.as_bytes());
    eat(&(system.n_gpus as u64).to_le_bytes());
    // Topology layout: a plan tuned for a single node is wrong for a
    // node-spanning group even when every other knob matches.
    eat(&(system.topology.nodes as u64).to_le_bytes());
    eat(&(system.topology.gpus_per_node as u64).to_le_bytes());
    eat(system.topology.inter.name.as_bytes());
    eat(&system.comm_sms.to_le_bytes());
    eat(&system.seed.to_le_bytes());
    eat(&[match system.algorithm {
        collectives::Algorithm::Ring => 0u8,
        collectives::Algorithm::Direct => 1,
        collectives::Algorithm::Auto => 2,
    }]);
    eat(&system.launch_skew_ns.to_le_bytes());
    h
}

/// Hit/miss/eviction counters for a serve run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that tuned and built a fresh plan.
    pub misses: u64,
    /// Plans evicted to stay within capacity.
    pub evictions: u64,
    /// Total partitions evaluated by predictive search across all
    /// misses (the online tuning work the cache amortizes).
    pub tune_evaluated: u64,
    /// Plans seeded from a persisted snapshot before the run.
    pub preloaded: u64,
}

impl CacheStats {
    /// Element-wise sum — used to aggregate per-replica caches into the
    /// run totals.
    pub fn merge(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            tune_evaluated: self.tune_evaluated + other.tune_evaluated,
            preloaded: self.preloaded + other.preloaded,
        }
    }
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when the cache is cold).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    plan: Rc<OverlapPlan>,
    last_used: u64,
}

/// Bounded LRU cache of tuned [`OverlapPlan`]s.
// Debug by hand: `OverlapPlan` itself is not Debug.
pub struct PlanCache {
    entries: HashMap<PlanKey, Entry>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
    /// When false, misses build the non-overlap baseline partition
    /// (single group) instead of tuning — the serve-vs-baseline
    /// comparison runs the identical loop with only this bit flipped.
    tuned: bool,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("len", &self.entries.len())
            .field("capacity", &self.capacity)
            .field("tick", &self.tick)
            .field("stats", &self.stats)
            .field("tuned", &self.tuned)
            .finish()
    }
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans (at least 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            stats: CacheStats::default(),
            tuned: true,
        }
    }

    /// An empty cache whose misses build untuned single-group
    /// (non-overlap) plans — the baseline arm of a comparison run.
    pub fn new_untuned(capacity: usize) -> Self {
        PlanCache {
            tuned: false,
            ..PlanCache::new(capacity)
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Plans currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the plan for `(dims, pattern, system)`, tuning and
    /// constructing it on a miss. Returns the plan and whether the
    /// lookup hit.
    pub fn get_or_tune(
        &mut self,
        dims: GemmDims,
        pattern: &CommPattern,
        system: &SystemSpec,
    ) -> Result<(Rc<OverlapPlan>, bool), FlashOverlapError> {
        let key = PlanKey {
            dims,
            primitive: pattern.primitive(),
            system_fp: system_fingerprint(system),
        };
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.tick;
            self.stats.hits += 1;
            return Ok((Rc::clone(&entry.plan), true));
        }
        self.stats.misses += 1;
        let partition = if self.tuned {
            let outcome = predictive_search(dims, key.primitive, system);
            self.stats.tune_evaluated += outcome.evaluated as u64;
            outcome.partition
        } else {
            // Non-overlap baseline: one group spanning every wave of the
            // schedule the plan will choose for this shape.
            let config = GemmConfig::choose(dims, &system.arch);
            let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
            WavePartition::single(waves.max(1))
        };
        let plan = OverlapPlan::new(dims, pattern.clone(), system.clone(), partition)?;
        // Never cache a schedule the static verifier cannot prove safe:
        // a corrupt plan served from the cache would poison every batch
        // that hits the same shape.
        plan.check_static()?;
        let plan = Rc::new(plan);
        if self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        self.entries.insert(
            key,
            Entry {
                plan: Rc::clone(&plan),
                last_used: self.tick,
            },
        );
        Ok((plan, false))
    }

    /// Removes the least-recently-used entry. Ticks are unique, so the
    /// minimum is unique and eviction is deterministic even though
    /// `HashMap` iteration order is not.
    fn evict_lru(&mut self) {
        if let Some(key) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| *k)
        {
            self.entries.remove(&key);
            self.stats.evictions += 1;
        }
    }

    /// Exports the resident tuned partitions for `system_fp`, sorted by
    /// `(m, n, k, primitive)` so the output is deterministic regardless
    /// of map iteration order. `AllToAll` plans are skipped: their
    /// routing tables are run-specific and cannot be rebuilt from a
    /// snapshot (serving traffic never produces them).
    pub fn export_entries(&self, system_fp: u64) -> Vec<PlanEntry> {
        let mut entries: Vec<PlanEntry> = self
            .entries
            .iter()
            .filter(|(k, _)| k.system_fp == system_fp && k.primitive != Primitive::AllToAll)
            .map(|(k, e)| PlanEntry {
                dims: k.dims,
                primitive: k.primitive,
                groups: e.plan.partition.sizes().to_vec(),
                thresholds: Some(e.plan.group_tile_counts().to_vec()),
            })
            .collect();
        entries.sort_by_key(|e| (e.dims.m, e.dims.n, e.dims.k, primitive_label(e.primitive)));
        entries
    }

    /// Seeds the cache from persisted entries without counting misses
    /// or running the tuner. Returns the number of plans loaded.
    ///
    /// # Errors
    ///
    /// Propagates plan-construction errors (a snapshot whose partition
    /// does not cover the shape's wave schedule on this system).
    pub fn preload(
        &mut self,
        system: &SystemSpec,
        entries: &[PlanEntry],
    ) -> Result<usize, FlashOverlapError> {
        let system_fp = system_fingerprint(system);
        let mut loaded = 0usize;
        for entry in entries {
            let key = PlanKey {
                dims: entry.dims,
                primitive: entry.primitive,
                system_fp,
            };
            if self.entries.contains_key(&key) || self.entries.len() >= self.capacity {
                continue;
            }
            let pattern =
                pattern_of(entry.primitive).ok_or_else(|| FlashOverlapError::BadInputs {
                    reason: "AllToAll plans cannot be preloaded (routing is run-specific)".into(),
                })?;
            let plan = OverlapPlan::new(
                entry.dims,
                pattern,
                system.clone(),
                WavePartition::new(entry.groups.clone()),
            )?;
            let context = format!(
                "snapshot entry {}x{}x{} {}",
                entry.dims.m,
                entry.dims.n,
                entry.dims.k,
                primitive_label(entry.primitive)
            );
            // Cross-check persisted thresholds against the rebuilt
            // schedule: any divergence means the snapshot does not
            // describe the plan this system would execute.
            if let Some(thresholds) = &entry.thresholds {
                let rebuilt = plan.group_tile_counts();
                if thresholds.len() != rebuilt.len() {
                    return Err(FlashOverlapError::BadInputs {
                        reason: format!(
                            "{context}: snapshot has {} wait thresholds but the rebuilt plan \
                             schedules {} groups",
                            thresholds.len(),
                            rebuilt.len()
                        ),
                    });
                }
                for (g, (&snap, &built)) in thresholds.iter().zip(rebuilt).enumerate() {
                    if snap != built {
                        return Err(FlashOverlapError::BadInputs {
                            reason: format!(
                                "{context}: group {g} wait threshold {snap} does not match the \
                                 rebuilt plan's {built} scheduled increments"
                            ),
                        });
                    }
                }
            }
            // Full static verification before the plan can serve traffic.
            flashoverlap::reject_if_invalid(&plan.verify(), &context)?;
            let plan = Rc::new(plan);
            self.tick += 1;
            self.entries.insert(
                key,
                Entry {
                    plan,
                    last_used: self.tick,
                },
            );
            self.stats.preloaded += 1;
            loaded += 1;
        }
        Ok(loaded)
    }
}

/// One persisted tuned plan: the shape, the primitive, and the tuned
/// wave partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanEntry {
    /// GEMM problem shape.
    pub dims: GemmDims,
    /// Collective primitive the plan overlaps.
    pub primitive: Primitive,
    /// Tuned partition group sizes.
    pub groups: Vec<u32>,
    /// Per-group wait thresholds as the exporting plan scheduled them
    /// (the group tile counts). `None` for snapshots written before the
    /// field existed; when present, [`PlanCache::preload`] cross-checks
    /// them against the rebuilt plan and rejects any mismatch — a
    /// corrupted snapshot fails at load time with the shape, group, and
    /// threshold named, not at first execution.
    pub thresholds: Option<Vec<u32>>,
}

/// A serialized plan cache: the fingerprint of the system the plans
/// were tuned for, plus the tuned partitions. Loading a snapshot onto
/// a system with a different fingerprint is rejected — a partition
/// tuned for one fabric/SM budget is wrong for another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// [`system_fingerprint`] of the tuning system.
    pub system_fp: u64,
    /// Tuned plans, sorted by `(m, n, k, primitive)`.
    pub entries: Vec<PlanEntry>,
}

fn primitive_label(p: Primitive) -> &'static str {
    match p {
        Primitive::AllReduce => "AllReduce",
        Primitive::ReduceScatter => "ReduceScatter",
        Primitive::AllGather => "AllGather",
        Primitive::AllToAll => "AllToAll",
    }
}

fn parse_primitive(s: &str) -> Option<Primitive> {
    match s {
        "AllReduce" => Some(Primitive::AllReduce),
        "ReduceScatter" => Some(Primitive::ReduceScatter),
        "AllGather" => Some(Primitive::AllGather),
        "AllToAll" => Some(Primitive::AllToAll),
        _ => None,
    }
}

/// The reconstructible [`CommPattern`] for a primitive (`None` for
/// `AllToAll`, whose routing tables are not persisted).
fn pattern_of(p: Primitive) -> Option<CommPattern> {
    match p {
        Primitive::AllReduce => Some(CommPattern::AllReduce),
        Primitive::ReduceScatter => Some(CommPattern::ReduceScatter),
        Primitive::AllGather => Some(CommPattern::AllGather),
        Primitive::AllToAll => None,
    }
}

impl CacheSnapshot {
    /// Serializes to the `flashoverlap-plan-cache` JSON document. The
    /// fingerprint is hex-encoded: the JSON layer stores numbers as
    /// `f64`, which cannot hold a full `u64` exactly.
    pub fn to_json(&self) -> String {
        use telemetry::json::Value;
        Value::obj(vec![
            ("kind", Value::str("flashoverlap-plan-cache")),
            ("system_fp", Value::str(format!("{:016x}", self.system_fp))),
            (
                "entries",
                Value::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            let mut fields = vec![
                                ("m", Value::num(f64::from(e.dims.m))),
                                ("n", Value::num(f64::from(e.dims.n))),
                                ("k", Value::num(f64::from(e.dims.k))),
                                ("primitive", Value::str(primitive_label(e.primitive))),
                                (
                                    "groups",
                                    Value::Arr(
                                        e.groups
                                            .iter()
                                            .map(|&g| Value::num(f64::from(g)))
                                            .collect(),
                                    ),
                                ),
                            ];
                            if let Some(thresholds) = &e.thresholds {
                                fields.push((
                                    "thresholds",
                                    Value::Arr(
                                        thresholds
                                            .iter()
                                            .map(|&t| Value::num(f64::from(t)))
                                            .collect(),
                                    ),
                                ));
                            }
                            Value::obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
        .to_json_pretty()
    }

    /// Parses a document produced by [`CacheSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(text: &str) -> Result<CacheSnapshot, String> {
        let doc = telemetry::json::parse(text)?;
        let kind = doc.get("kind").and_then(|v| v.as_str()).unwrap_or("");
        if kind != "flashoverlap-plan-cache" {
            return Err(format!("not a plan-cache snapshot (kind = {kind:?})"));
        }
        let fp_hex = doc
            .get("system_fp")
            .and_then(|v| v.as_str())
            .ok_or("missing system_fp")?;
        let system_fp = u64::from_str_radix(fp_hex, 16)
            .map_err(|e| format!("bad system_fp {fp_hex:?}: {e}"))?;
        let raw_entries = doc
            .get("entries")
            .and_then(|v| v.as_arr())
            .ok_or("missing entries array")?;
        let mut entries = Vec::with_capacity(raw_entries.len());
        for (i, raw) in raw_entries.iter().enumerate() {
            let field = |name: &str| -> Result<u32, String> {
                raw.get(name)
                    .and_then(|v| v.as_f64())
                    .filter(|&f| f.fract() == 0.0 && f >= 0.0 && f <= f64::from(u32::MAX))
                    .map(|f| f as u32)
                    .ok_or_else(|| format!("entry {i}: bad field {name:?}"))
            };
            let primitive = raw
                .get("primitive")
                .and_then(|v| v.as_str())
                .and_then(parse_primitive)
                .ok_or_else(|| format!("entry {i}: bad primitive"))?;
            let groups = raw
                .get("groups")
                .and_then(|v| v.as_arr())
                .ok_or_else(|| format!("entry {i}: missing groups"))?
                .iter()
                .map(|g| {
                    g.as_f64()
                        .filter(|&f| f.fract() == 0.0 && f >= 1.0 && f <= f64::from(u32::MAX))
                        .map(|f| f as u32)
                        .ok_or_else(|| format!("entry {i}: bad group size"))
                })
                .collect::<Result<Vec<u32>, String>>()?;
            // Optional (absent in pre-verification snapshots): per-group
            // wait thresholds, cross-checked against the rebuilt plan at
            // preload time.
            let thresholds = match raw.get("thresholds").and_then(|v| v.as_arr()) {
                None => None,
                Some(arr) => Some(
                    arr.iter()
                        .map(|t| {
                            t.as_f64()
                                .filter(|&f| {
                                    f.fract() == 0.0 && f >= 0.0 && f <= f64::from(u32::MAX)
                                })
                                .map(|f| f as u32)
                                .ok_or_else(|| format!("entry {i}: bad threshold"))
                        })
                        .collect::<Result<Vec<u32>, String>>()?,
                ),
            };
            entries.push(PlanEntry {
                dims: GemmDims::new(field("m")?, field("n")?, field("k")?),
                primitive,
                groups,
                thresholds,
            });
        }
        Ok(CacheSnapshot { system_fp, entries })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn system() -> SystemSpec {
        SystemSpec::rtx4090(2)
    }

    #[test]
    fn second_lookup_hits_and_reuses_the_plan() {
        let mut cache = PlanCache::new(8);
        let dims = GemmDims::new(256, 2048, 704);
        let sys = system();
        let (a, hit_a) = cache
            .get_or_tune(dims, &CommPattern::AllReduce, &sys)
            .unwrap();
        let (b, hit_b) = cache
            .get_or_tune(dims, &CommPattern::AllReduce, &sys)
            .unwrap();
        assert!(!hit_a && hit_b);
        assert!(Rc::ptr_eq(&a, &b), "hit must return the cached plan");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert!(stats.tune_evaluated > 0, "miss must run predictive search");
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_stalest_shape() {
        let mut cache = PlanCache::new(2);
        let sys = system();
        let d1 = GemmDims::new(128, 2048, 704);
        let d2 = GemmDims::new(256, 2048, 704);
        let d3 = GemmDims::new(384, 2048, 704);
        cache
            .get_or_tune(d1, &CommPattern::AllReduce, &sys)
            .unwrap();
        cache
            .get_or_tune(d2, &CommPattern::AllReduce, &sys)
            .unwrap();
        // Touch d1 so d2 is the LRU, then overflow with d3.
        cache
            .get_or_tune(d1, &CommPattern::AllReduce, &sys)
            .unwrap();
        cache
            .get_or_tune(d3, &CommPattern::AllReduce, &sys)
            .unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        let (_, d1_hit) = cache
            .get_or_tune(d1, &CommPattern::AllReduce, &sys)
            .unwrap();
        assert!(d1_hit, "recently used entry must survive eviction");
        let (_, d2_hit) = cache
            .get_or_tune(d2, &CommPattern::AllReduce, &sys)
            .unwrap();
        assert!(!d2_hit, "LRU entry must have been evicted");
    }

    #[test]
    fn fingerprint_separates_systems() {
        let a = SystemSpec::rtx4090(2);
        let b = SystemSpec::rtx4090(4);
        let c = SystemSpec::a800(2);
        assert_ne!(system_fingerprint(&a), system_fingerprint(&b));
        assert_ne!(system_fingerprint(&a), system_fingerprint(&c));
        // Node layout changes the fingerprint: multi-node plans must not
        // alias single-node ones.
        let flat = SystemSpec::a800(8);
        let tiered = SystemSpec::a800(8).with_nodes(2);
        assert_ne!(system_fingerprint(&flat), system_fingerprint(&tiered));
        assert_eq!(
            system_fingerprint(&a),
            system_fingerprint(&SystemSpec::rtx4090(2))
        );
    }

    #[test]
    fn snapshot_round_trips_thresholds_through_json() {
        let mut cache = PlanCache::new(4);
        let sys = system();
        let dims = GemmDims::new(256, 2048, 704);
        cache
            .get_or_tune(dims, &CommPattern::AllReduce, &sys)
            .unwrap();
        let fp = system_fingerprint(&sys);
        let snapshot = CacheSnapshot {
            system_fp: fp,
            entries: cache.export_entries(fp),
        };
        let entry = &snapshot.entries[0];
        assert!(
            entry.thresholds.is_some(),
            "exports persist the wait thresholds"
        );
        let parsed = CacheSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(parsed, snapshot);
        // A fresh cache accepts the snapshot (thresholds cross-check
        // against the rebuilt plan) ...
        let mut fresh = PlanCache::new(4);
        assert_eq!(fresh.preload(&sys, &parsed.entries).unwrap(), 1);
        // ... and entries without thresholds (older snapshots) still load.
        let mut legacy_entries = parsed.entries.clone();
        legacy_entries[0].thresholds = None;
        let mut legacy = PlanCache::new(4);
        assert_eq!(legacy.preload(&sys, &legacy_entries).unwrap(), 1);
    }

    #[test]
    fn preload_rejects_threshold_mismatch_naming_shape_and_group() {
        let mut cache = PlanCache::new(4);
        let sys = system();
        let dims = GemmDims::new(256, 2048, 704);
        cache
            .get_or_tune(dims, &CommPattern::AllReduce, &sys)
            .unwrap();
        let fp = system_fingerprint(&sys);
        let mut entries = cache.export_entries(fp);
        // Corrupt one persisted threshold (DropIncrements-shaped damage).
        let thresholds = entries[0].thresholds.as_mut().unwrap();
        thresholds[0] += 7;
        let bad = thresholds[0];
        let mut fresh = PlanCache::new(4);
        let err = fresh.preload(&sys, &entries).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("256x2048x704"), "{text}");
        assert!(text.contains("group 0"), "{text}");
        assert!(text.contains(&format!("threshold {bad}")), "{text}");
        // Wrong group count is also caught at load time.
        let mut truncated = cache.export_entries(fp);
        truncated[0].thresholds.as_mut().unwrap().pop();
        let err = fresh.preload(&sys, &truncated).unwrap_err();
        assert!(err.to_string().contains("thresholds"), "{err}");
    }

    #[test]
    fn untuned_cache_builds_single_group_plans() {
        let mut cache = PlanCache::new_untuned(4);
        let dims = GemmDims::new(256, 2048, 704);
        let (plan, _) = cache
            .get_or_tune(dims, &CommPattern::AllReduce, &system())
            .unwrap();
        assert_eq!(plan.partition.num_groups(), 1, "baseline is non-overlap");
        assert_eq!(cache.stats().tune_evaluated, 0, "baseline never tunes");
    }
}
