//! Tuned-plan cache: amortizing predictive search across a serve run.
//!
//! The paper's tuning cost argument (§4.1.4) is that predictive search
//! is cheap enough to run *online*: when a serving batch produces a GEMM
//! shape the runtime has not seen, the scheduler tunes a partition for
//! it analytically (no execution) and caches the resulting
//! [`OverlapPlan`]. Subsequent batches with the same shape on the same
//! system reuse the plan — the common case once token-bucket
//! quantization bounds the distinct shapes in flight.
//!
//! The cache is keyed by `(GemmDims, Primitive, system fingerprint)`
//! and bounded with LRU eviction. Recency is a monotonic tick (no wall
//! clock), and ticks are unique, so eviction order is deterministic
//! regardless of `HashMap` iteration order.

use std::collections::HashMap;
use std::rc::Rc;

use collectives::Primitive;
use flashoverlap::{
    predictive_search, CommPattern, FlashOverlapError, OverlapPlan, SystemSpec, WavePartition,
};
use gpu_sim::gemm::{GemmConfig, GemmDims};

/// Cache key: the GEMM shape, the collective primitive, and a
/// fingerprint of the system the plan was tuned for. A plan tuned for
/// one fabric/SM budget is wrong for another, so the fingerprint keeps
/// heterogeneous systems from aliasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// GEMM problem shape.
    pub dims: GemmDims,
    /// Collective primitive overlapped with the GEMM.
    pub primitive: Primitive,
    /// [`system_fingerprint`] of the target system.
    pub system_fp: u64,
}

/// FNV-1a over the plan-relevant fields of a [`SystemSpec`]. Two specs
/// with equal fingerprints tune to the same partition: the hash covers
/// everything `predictive_search` and plan construction read (arch,
/// fabric, group size, SM budget, algorithm, seed, launch skew).
pub fn system_fingerprint(system: &SystemSpec) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(system.arch.name.as_bytes());
    eat(&system.arch.sm_count.to_le_bytes());
    eat(system.fabric.name.as_bytes());
    eat(&(system.n_gpus as u64).to_le_bytes());
    eat(&system.comm_sms.to_le_bytes());
    eat(&system.seed.to_le_bytes());
    eat(&[match system.algorithm {
        collectives::Algorithm::Ring => 0u8,
        collectives::Algorithm::Direct => 1,
        collectives::Algorithm::Auto => 2,
    }]);
    eat(&system.launch_skew_ns.to_le_bytes());
    h
}

/// Hit/miss/eviction counters for a serve run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that tuned and built a fresh plan.
    pub misses: u64,
    /// Plans evicted to stay within capacity.
    pub evictions: u64,
    /// Total partitions evaluated by predictive search across all
    /// misses (the online tuning work the cache amortizes).
    pub tune_evaluated: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when the cache is cold).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    plan: Rc<OverlapPlan>,
    last_used: u64,
}

/// Bounded LRU cache of tuned [`OverlapPlan`]s.
// Debug by hand: `OverlapPlan` itself is not Debug.
pub struct PlanCache {
    entries: HashMap<PlanKey, Entry>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
    /// When false, misses build the non-overlap baseline partition
    /// (single group) instead of tuning — the serve-vs-baseline
    /// comparison runs the identical loop with only this bit flipped.
    tuned: bool,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("len", &self.entries.len())
            .field("capacity", &self.capacity)
            .field("tick", &self.tick)
            .field("stats", &self.stats)
            .field("tuned", &self.tuned)
            .finish()
    }
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans (at least 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            stats: CacheStats::default(),
            tuned: true,
        }
    }

    /// An empty cache whose misses build untuned single-group
    /// (non-overlap) plans — the baseline arm of a comparison run.
    pub fn new_untuned(capacity: usize) -> Self {
        PlanCache {
            tuned: false,
            ..PlanCache::new(capacity)
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Plans currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the plan for `(dims, pattern, system)`, tuning and
    /// constructing it on a miss. Returns the plan and whether the
    /// lookup hit.
    pub fn get_or_tune(
        &mut self,
        dims: GemmDims,
        pattern: &CommPattern,
        system: &SystemSpec,
    ) -> Result<(Rc<OverlapPlan>, bool), FlashOverlapError> {
        let key = PlanKey {
            dims,
            primitive: pattern.primitive(),
            system_fp: system_fingerprint(system),
        };
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.tick;
            self.stats.hits += 1;
            return Ok((Rc::clone(&entry.plan), true));
        }
        self.stats.misses += 1;
        let partition = if self.tuned {
            let outcome = predictive_search(dims, key.primitive, system);
            self.stats.tune_evaluated += outcome.evaluated as u64;
            outcome.partition
        } else {
            // Non-overlap baseline: one group spanning every wave of the
            // schedule the plan will choose for this shape.
            let config = GemmConfig::choose(dims, &system.arch);
            let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
            WavePartition::single(waves.max(1))
        };
        let plan = Rc::new(OverlapPlan::new(
            dims,
            pattern.clone(),
            system.clone(),
            partition,
        )?);
        if self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        self.entries.insert(
            key,
            Entry {
                plan: Rc::clone(&plan),
                last_used: self.tick,
            },
        );
        Ok((plan, false))
    }

    /// Removes the least-recently-used entry. Ticks are unique, so the
    /// minimum is unique and eviction is deterministic even though
    /// `HashMap` iteration order is not.
    fn evict_lru(&mut self) {
        if let Some(key) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| *k)
        {
            self.entries.remove(&key);
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn system() -> SystemSpec {
        SystemSpec::rtx4090(2)
    }

    #[test]
    fn second_lookup_hits_and_reuses_the_plan() {
        let mut cache = PlanCache::new(8);
        let dims = GemmDims::new(256, 2048, 704);
        let sys = system();
        let (a, hit_a) = cache
            .get_or_tune(dims, &CommPattern::AllReduce, &sys)
            .unwrap();
        let (b, hit_b) = cache
            .get_or_tune(dims, &CommPattern::AllReduce, &sys)
            .unwrap();
        assert!(!hit_a && hit_b);
        assert!(Rc::ptr_eq(&a, &b), "hit must return the cached plan");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert!(stats.tune_evaluated > 0, "miss must run predictive search");
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_stalest_shape() {
        let mut cache = PlanCache::new(2);
        let sys = system();
        let d1 = GemmDims::new(128, 2048, 704);
        let d2 = GemmDims::new(256, 2048, 704);
        let d3 = GemmDims::new(384, 2048, 704);
        cache
            .get_or_tune(d1, &CommPattern::AllReduce, &sys)
            .unwrap();
        cache
            .get_or_tune(d2, &CommPattern::AllReduce, &sys)
            .unwrap();
        // Touch d1 so d2 is the LRU, then overflow with d3.
        cache
            .get_or_tune(d1, &CommPattern::AllReduce, &sys)
            .unwrap();
        cache
            .get_or_tune(d3, &CommPattern::AllReduce, &sys)
            .unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        let (_, d1_hit) = cache
            .get_or_tune(d1, &CommPattern::AllReduce, &sys)
            .unwrap();
        assert!(d1_hit, "recently used entry must survive eviction");
        let (_, d2_hit) = cache
            .get_or_tune(d2, &CommPattern::AllReduce, &sys)
            .unwrap();
        assert!(!d2_hit, "LRU entry must have been evicted");
    }

    #[test]
    fn fingerprint_separates_systems() {
        let a = SystemSpec::rtx4090(2);
        let b = SystemSpec::rtx4090(4);
        let c = SystemSpec::a800(2);
        assert_ne!(system_fingerprint(&a), system_fingerprint(&b));
        assert_ne!(system_fingerprint(&a), system_fingerprint(&c));
        assert_eq!(
            system_fingerprint(&a),
            system_fingerprint(&SystemSpec::rtx4090(2))
        );
    }

    #[test]
    fn untuned_cache_builds_single_group_plans() {
        let mut cache = PlanCache::new_untuned(4);
        let dims = GemmDims::new(256, 2048, 704);
        let (plan, _) = cache
            .get_or_tune(dims, &CommPattern::AllReduce, &system())
            .unwrap();
        assert_eq!(plan.partition.num_groups(), 1, "baseline is non-overlap");
        assert_eq!(cache.stats().tune_evaluated, 0, "baseline never tunes");
    }
}
