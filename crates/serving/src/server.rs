//! The serving loop: admission control, continuous batching, plan-cache
//! execution, and SLO accounting over virtual time.
//!
//! The loop is a discrete-event scheduler one level above the cluster
//! simulator: requests arrive on a seeded trace ([`crate::traffic`]),
//! wait in a bounded FIFO (overflow is shed — classic admission
//! control), close into batches under a token-budget/max-wait policy
//! ([`crate::batch`]), and execute serially through tuned
//! [`OverlapPlan`](flashoverlap::OverlapPlan)s from the
//! [`PlanCache`]. Executed operator latency advances the virtual clock,
//! so queueing delay emerges from the interaction of the arrival rate
//! and the simulated operator throughput — backpressure is real, not
//! modelled.
//!
//! With [`ServeConfig::chaos`] set, every batch executes through the
//! resilient runtime with a per-batch deterministic [`FaultPlan`], and
//! the batch's resilient outcome (clean / recovered / degraded) is
//! stamped onto its member requests — chaos under load, with every
//! request accounted for.

use flashoverlap::{CommPattern, FaultPlan, FlashOverlapError, SystemSpec, WatchdogConfig};
use telemetry::{percentiles, signal_summary, Telemetry};
use workloads::ServeMix;

use crate::batch::{form_batch, BatchConfig};
use crate::cache::PlanCache;
use crate::report::{BatchRecord, ComparisonReport, Disposition, RequestRecord, ServeReport};
use crate::traffic::{generate, ArrivalProcess, Request};

/// Everything a serve run needs. Construct with [`ServeConfig::new`]
/// and override fields as needed.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Target system (the tensor-parallel group).
    pub system: SystemSpec,
    /// Traffic mix.
    pub mix: ServeMix,
    /// Arrival process.
    pub process: ArrivalProcess,
    /// Number of requests to offer.
    pub requests: usize,
    /// Seed for the traffic trace and per-batch fault plans.
    pub seed: u64,
    /// Batch-former policy.
    pub batch: BatchConfig,
    /// Admission queue bound; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Plan-cache capacity.
    pub cache_capacity: usize,
    /// Latency SLO.
    pub slo_ns: u64,
    /// Arm per-batch fault injection (resilient execution).
    pub chaos: bool,
}

impl ServeConfig {
    /// Defaults: 200 requests of the default mix at 500 rps Poisson
    /// (≈70% utilization of a two-rank 4090 group under the default
    /// prefill-heavy mix), 20 ms SLO, 64-deep queue, 32-plan cache, no
    /// chaos.
    pub fn new(system: SystemSpec) -> Self {
        ServeConfig {
            system,
            mix: ServeMix::default_mix(),
            process: ArrivalProcess::Poisson { rate_rps: 500.0 },
            requests: 200,
            seed: 0,
            batch: BatchConfig::default(),
            queue_capacity: 64,
            cache_capacity: 32,
            slo_ns: 20_000_000,
            chaos: false,
        }
    }

    /// Validates shape divisibility: every mix model's intermediate
    /// size must split across the TP group.
    fn validate(&self) -> Result<(), FlashOverlapError> {
        let tp = self.system.n_gpus as u32;
        for entry in self.mix.entries() {
            if tp == 0 || entry.model.intermediate % tp != 0 {
                return Err(FlashOverlapError::IncompatibleShape {
                    reason: format!(
                        "{}: intermediate {} not divisible by tp {}",
                        entry.model.name, entry.model.intermediate, tp
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Per-batch fault-plan seed: decorrelated from the traffic seed and
/// from neighbouring batches (splitmix-style odd multiplier).
fn fault_seed(seed: u64, batch_id: u64) -> u64 {
    seed ^ (batch_id.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs the serving loop to completion and returns the report. Fully
/// deterministic in the config: same config, bit-identical report.
pub fn serve(config: &ServeConfig) -> Result<ServeReport, FlashOverlapError> {
    serve_with_cache(config, PlanCache::new(config.cache_capacity), true)
}

/// Runs the same loop with untuned single-group (non-overlap) plans —
/// the baseline arm of [`serve_comparison`].
pub fn serve_baseline(config: &ServeConfig) -> Result<ServeReport, FlashOverlapError> {
    serve_with_cache(config, PlanCache::new_untuned(config.cache_capacity), false)
}

/// Serves the identical seeded traffic through both the tuned and the
/// non-overlap baseline arms.
pub fn serve_comparison(config: &ServeConfig) -> Result<ComparisonReport, FlashOverlapError> {
    Ok(ComparisonReport {
        tuned: serve(config)?,
        baseline: serve_baseline(config)?,
    })
}

fn serve_with_cache(
    config: &ServeConfig,
    mut cache: PlanCache,
    tuned: bool,
) -> Result<ServeReport, FlashOverlapError> {
    config.validate()?;
    let tp = config.system.n_gpus as u32;
    let arrivals = generate(&config.mix, config.process, config.requests, config.seed);
    let offered_span_ns = arrivals.last().map_or(0, |r| r.arrival_ns);

    let mut queue: Vec<Request> = Vec::new();
    let mut next_arrival = 0usize;
    let mut now_ns = 0u64;
    let mut batch_id = 0u64;
    let mut records: Vec<RequestRecord> = Vec::with_capacity(arrivals.len());
    let mut batch_records: Vec<BatchRecord> = Vec::new();
    let mut shapes = std::collections::HashSet::new();
    let mut signal_weighted_sum = 0.0f64;
    let mut signal_samples = 0u64;

    // Loop guard: each iteration either admits, dispatches, or advances
    // the clock to a strictly later event, so this bound is generous.
    let max_iterations = 20 * arrivals.len() + 100;
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        if iterations > max_iterations {
            return Err(FlashOverlapError::Simulation(format!(
                "serve loop failed to converge after {max_iterations} iterations \
                 ({} requests unresolved)",
                arrivals.len() - records.len()
            )));
        }

        // Admission: everything that has arrived by `now` either joins
        // the bounded queue or is shed.
        while let Some(r) = arrivals.get(next_arrival) {
            if r.arrival_ns > now_ns {
                break;
            }
            if queue.len() >= config.queue_capacity {
                records.push(RequestRecord {
                    id: r.id,
                    model: r.model.name,
                    tokens: r.tokens,
                    arrival_ns: r.arrival_ns,
                    disposition: Disposition::Shed,
                    batch: None,
                    latency_ns: None,
                });
            } else {
                queue.push(*r);
            }
            next_arrival += 1;
        }

        let Some(head) = queue.first() else {
            match arrivals.get(next_arrival) {
                // Idle: jump to the next arrival.
                Some(r) => {
                    now_ns = r.arrival_ns;
                    continue;
                }
                // Drained: every request is accounted for.
                None => break,
            }
        };

        // Batch-closing policy: enough tokens of the head model, the
        // head's max-wait deadline, or no arrivals left to wait for.
        let head_deadline = head.arrival_ns.saturating_add(config.batch.max_wait_ns);
        let run_tokens: u32 = queue
            .iter()
            .take_while(|r| r.model == head.model)
            .map(|r| r.tokens)
            .sum();
        let ready = run_tokens >= config.batch.max_batch_tokens
            || now_ns >= head_deadline
            || next_arrival >= arrivals.len();
        if !ready {
            let next = arrivals
                .get(next_arrival)
                .map_or(u64::MAX, |r| r.arrival_ns);
            now_ns = next.min(head_deadline);
            continue;
        }

        let batch = form_batch(&mut queue, &config.batch, batch_id)
            .expect("queue is non-empty when a batch closes");
        batch_id += 1;

        let dims = batch.gemm_dims(tp);
        shapes.insert(dims);
        let pattern = CommPattern::AllReduce;
        let (plan, cache_hit) = cache.get_or_tune(dims, &pattern, &config.system)?;

        let telemetry = Telemetry::new();
        let (exec_ns, outcome_label, spans) = if config.chaos {
            let faults = FaultPlan::random(
                fault_seed(config.seed, batch.id),
                config.system.n_gpus,
                plan.partition.num_groups(),
            );
            let (resilient, spans) = plan.execute_resilient_traced(
                &faults,
                &WatchdogConfig::default(),
                Some(telemetry.monitor()),
            )?;
            (
                resilient.report.latency.as_nanos(),
                resilient.outcome.label(),
                spans,
            )
        } else {
            let (report, spans) = plan.execute_traced_instrumented(&telemetry.instrumentation())?;
            (report.latency.as_nanos(), "clean", spans)
        };
        let record = telemetry.take_record();
        if let Some(sig) = signal_summary(&record, &spans) {
            signal_weighted_sum += sig.mean_total_ns * sig.samples.len() as f64;
            signal_samples += sig.samples.len() as u64;
        }

        let start_ns = now_ns;
        now_ns = now_ns.saturating_add(exec_ns);
        let disposition = Disposition::from_outcome_label(outcome_label);
        for r in &batch.requests {
            records.push(RequestRecord {
                id: r.id,
                model: r.model.name,
                tokens: r.tokens,
                arrival_ns: r.arrival_ns,
                disposition,
                batch: Some(batch.id),
                latency_ns: Some(now_ns - r.arrival_ns),
            });
        }
        batch_records.push(BatchRecord {
            id: batch.id,
            model: batch.model.name,
            requests: batch.requests.len() as u64,
            tokens: batch.tokens,
            padded_tokens: batch.padded_tokens,
            start_ns,
            exec_ns,
            cache_hit,
            outcome: outcome_label,
        });
    }

    records.sort_by_key(|r| r.id);
    debug_assert_eq!(records.len(), arrivals.len(), "every request accounted for");

    Ok(build_report(
        config,
        tuned,
        now_ns,
        offered_span_ns,
        records,
        batch_records,
        shapes.len() as u64,
        cache.stats(),
        signal_weighted_sum,
        signal_samples,
    ))
}

#[allow(clippy::too_many_arguments)]
fn build_report(
    config: &ServeConfig,
    tuned: bool,
    makespan_ns: u64,
    offered_span_ns: u64,
    records: Vec<RequestRecord>,
    batch_records: Vec<BatchRecord>,
    distinct_shapes: u64,
    cache: crate::cache::CacheStats,
    signal_weighted_sum: f64,
    signal_samples: u64,
) -> ServeReport {
    let offered = records.len() as u64;
    let shed = records
        .iter()
        .filter(|r| r.disposition == Disposition::Shed)
        .count() as u64;
    let completed = offered - shed;
    let count = |d: Disposition| records.iter().filter(|r| r.disposition == d).count() as u64;
    let latencies: Vec<u64> = records.iter().filter_map(|r| r.latency_ns).collect();
    let slo_met = records
        .iter()
        .filter(|r| {
            r.disposition != Disposition::Shed
                && r.disposition != Disposition::Degraded
                && r.latency_ns.is_some_and(|l| l <= config.slo_ns)
        })
        .count() as u64;
    let makespan_s = makespan_ns as f64 / 1e9;
    let offered_span_s = offered_span_ns as f64 / 1e9;
    let total_batch_requests: u64 = batch_records.iter().map(|b| b.requests).sum();
    let total_batch_tokens: u64 = batch_records.iter().map(|b| u64::from(b.tokens)).sum();
    let n_batches = batch_records.len() as u64;

    ServeReport {
        seed: config.seed,
        arrival: config.process.label(),
        offered,
        gpus: config.system.n_gpus,
        platform: config.system.arch.name,
        slo_ns: config.slo_ns,
        chaos: config.chaos,
        tuned,
        makespan_ns,
        completed,
        shed,
        clean: count(Disposition::Clean),
        recovered: count(Disposition::Recovered),
        degraded: count(Disposition::Degraded),
        slo_met,
        latency: percentiles(&latencies),
        mean_latency_ns: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
        },
        max_latency_ns: latencies.iter().copied().max().unwrap_or(0),
        goodput_rps: if makespan_s > 0.0 {
            slo_met as f64 / makespan_s
        } else {
            0.0
        },
        offered_rps: if offered_span_s > 0.0 {
            offered as f64 / offered_span_s
        } else {
            0.0
        },
        shed_rate: if offered > 0 {
            shed as f64 / offered as f64
        } else {
            0.0
        },
        batches: n_batches,
        mean_batch_requests: if n_batches > 0 {
            total_batch_requests as f64 / n_batches as f64
        } else {
            0.0
        },
        mean_batch_tokens: if n_batches > 0 {
            total_batch_tokens as f64 / n_batches as f64
        } else {
            0.0
        },
        distinct_shapes,
        cache,
        mean_signal_ns: if signal_samples > 0 {
            signal_weighted_sum / signal_samples as f64
        } else {
            0.0
        },
        signal_samples,
        records,
        batch_records,
    }
}
