//! The serving loop: admission control, continuous batching, replica
//! routing, and pipelined plan-cache execution over virtual time.
//!
//! The loop is a discrete-event scheduler one level above the cluster
//! simulator: requests arrive on a seeded trace ([`crate::traffic`]),
//! wait in a bounded FIFO (overflow is shed — classic admission
//! control), close into batches under a token-budget/max-wait policy
//! ([`crate::batch`]), and are routed ([`crate::router`]) to one of
//! [`ServeConfig::replicas`] independent tensor-parallel groups, each
//! with its own [`PlanCache`]. An idle replica drains its dispatch
//! queue in *chains* of up to [`ServeConfig::chain`] batches executed
//! through one simulation
//! ([`flashoverlap::execute_sequence`]): with
//! [`ServeConfig::pipelined`] set, batch *k+1*'s GEMM waves run while
//! batch *k*'s tail collectives drain, double-buffered counting tables
//! carrying the cross-batch happens-before edges. Executed chain
//! latency advances the replica's virtual timeline, so queueing delay
//! emerges from the interaction of the arrival rate and the simulated
//! operator throughput — backpressure is real, not modelled.
//!
//! With [`ServeConfig::chaos`] set, chains still form and still
//! pipeline: each batch carries its own deterministic per-batch
//! [`FaultPlan`] into a resilient [`flashoverlap::execute_sequence`]
//! (the chain watchdog recovers wedged segments without poisoning the
//! counting tables downstream batches inherit), and the batch's
//! resilient outcome (clean / recovered / degraded) is stamped onto its
//! member requests — chaos under load, with every request accounted
//! for. A chain that comes back degraded marks its replica *wedged*:
//! the replica is quarantined, its queued batches are deterministically
//! re-routed to healthy replicas (or shed, with full accounting, when
//! none remain), and the run completes instead of aborting.

use std::collections::VecDeque;
use std::rc::Rc;

use flashoverlap::{
    execute_sequence, CommPattern, Fault, FaultPlan, FlashOverlapError, Instrumentation,
    OverlapPlan, SequenceOptions, SystemSpec, WatchdogConfig,
};
use telemetry::attribution::{attribute_makespan, AttributionTotals, Category};
use telemetry::{percentiles, signal_summary, Telemetry};
use workloads::ServeMix;

use crate::batch::{form_batch, Batch, BatchConfig};
use crate::cache::{system_fingerprint, CacheSnapshot, CacheStats, PlanCache, PlanEntry};
use crate::report::{
    BatchRecord, ComparisonReport, Disposition, DriftRow, NodeStats, ReplicaStats, RequestRecord,
    ScalingReport, ServeReport,
};
use crate::router::{home_node, ReplicaLoad, Router, RouterPolicy};
use crate::traffic::{generate, ArrivalProcess, Request};

/// Everything a serve run needs. Construct with [`ServeConfig::new`]
/// and override fields as needed.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Target system (one tensor-parallel replica group; every replica
    /// is identical).
    pub system: SystemSpec,
    /// Traffic mix.
    pub mix: ServeMix,
    /// Arrival process.
    pub process: ArrivalProcess,
    /// Number of requests to offer.
    pub requests: usize,
    /// Seed for the traffic trace and per-batch fault plans.
    pub seed: u64,
    /// Batch-former policy.
    pub batch: BatchConfig,
    /// Admission queue bound; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Per-replica plan-cache capacity.
    pub cache_capacity: usize,
    /// Latency SLO.
    pub slo_ns: u64,
    /// Arm per-batch fault injection (resilient execution).
    pub chaos: bool,
    /// Independent replica groups behind the router.
    pub replicas: usize,
    /// Nodes the replicas are spread across (replica `r` lives on node
    /// `r % nodes`). Batches routed off their home node pay an
    /// inter-node migration penalty over
    /// [`SystemSpec::topology`](flashoverlap::SystemSpec)'s inter
    /// fabric. 1 = the single-node deployment every prior config ran.
    pub nodes: usize,
    /// Batch-routing policy.
    pub router: RouterPolicy,
    /// Execute replica chains with cross-batch pipelining (false
    /// inserts a serial barrier between consecutive batches).
    pub pipelined: bool,
    /// Most batches an idle replica chains into one simulation.
    pub chain: usize,
    /// Force this replica's first chaos chain to wedge deterministically
    /// (an unrecoverable dropped-signal fault on its leading batch), so
    /// the quarantine → re-route path is reproducible under a fixed
    /// seed. Requires [`ServeConfig::chaos`].
    pub wedge_replica: Option<usize>,
    /// Tuned plans to seed every replica's cache with before the run.
    /// The snapshot's fingerprint must match [`ServeConfig::system`].
    pub preload: Option<CacheSnapshot>,
}

impl ServeConfig {
    /// Defaults: 200 requests of the default mix at 500 rps Poisson
    /// (≈70% utilization of a two-rank 4090 group under the default
    /// prefill-heavy mix), 20 ms SLO, 64-deep queue, 32-plan cache,
    /// one replica, round-robin router, pipelined 4-batch chains, no
    /// chaos.
    pub fn new(system: SystemSpec) -> Self {
        ServeConfig {
            system,
            mix: ServeMix::default_mix(),
            process: ArrivalProcess::Poisson { rate_rps: 500.0 },
            requests: 200,
            seed: 0,
            batch: BatchConfig::default(),
            queue_capacity: 64,
            cache_capacity: 32,
            slo_ns: 20_000_000,
            chaos: false,
            replicas: 1,
            nodes: 1,
            router: RouterPolicy::RoundRobin,
            pipelined: true,
            chain: 4,
            wedge_replica: None,
            preload: None,
        }
    }

    /// Validates shape divisibility (every mix model's intermediate
    /// size must split across the TP group), replica/chain bounds, and
    /// preload fingerprint compatibility.
    fn validate(&self) -> Result<(), FlashOverlapError> {
        let tp = self.system.n_gpus as u32;
        for entry in self.mix.entries() {
            if tp == 0 || entry.model.intermediate % tp != 0 {
                return Err(FlashOverlapError::IncompatibleShape {
                    reason: format!(
                        "{}: intermediate {} not divisible by tp {}",
                        entry.model.name, entry.model.intermediate, tp
                    ),
                });
            }
        }
        if self.replicas == 0 {
            return Err(FlashOverlapError::BadInputs {
                reason: "need at least one replica".into(),
            });
        }
        if self.chain == 0 {
            return Err(FlashOverlapError::BadInputs {
                reason: "chain length must be at least 1".into(),
            });
        }
        if self.nodes == 0 {
            return Err(FlashOverlapError::BadInputs {
                reason: "need at least one node".into(),
            });
        }
        if self.nodes > self.replicas {
            return Err(FlashOverlapError::BadInputs {
                reason: format!(
                    "--nodes {} exceeds --replicas {}; every node needs at least one replica",
                    self.nodes, self.replicas
                ),
            });
        }
        if let Some(w) = self.wedge_replica {
            if w >= self.replicas {
                return Err(FlashOverlapError::BadInputs {
                    reason: format!(
                        "--wedge-replica {w} targets a replica that does not exist \
                         ({} configured)",
                        self.replicas
                    ),
                });
            }
            if !self.chaos {
                return Err(FlashOverlapError::BadInputs {
                    reason: "--wedge-replica injects a fault plan and requires --chaos".into(),
                });
            }
        }
        if let Some(snapshot) = &self.preload {
            let fp = system_fingerprint(&self.system);
            if snapshot.system_fp != fp {
                return Err(FlashOverlapError::BadInputs {
                    reason: format!(
                        "plan-cache snapshot was tuned for system {:016x} but this run \
                         targets {fp:016x}; re-tune instead of loading stale plans",
                        snapshot.system_fp
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Per-batch fault-plan seed: decorrelated from the traffic seed and
/// from neighbouring batches (splitmix-style odd multiplier).
fn fault_seed(seed: u64, batch_id: u64) -> u64 {
    seed ^ (batch_id.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Inter-node migration penalty for executing `dims` on `node`: pulling
/// the batch's activation tensor (`m × k` elements) over the inter-node
/// fabric when the chosen replica sits off the batch's home node. Zero
/// on single-node deployments and for home-node placements, so every
/// `nodes == 1` run is byte-identical to the pre-topology simulator.
fn migration_penalty_ns(config: &ServeConfig, dims: gpu_sim::gemm::GemmDims, node: usize) -> u64 {
    if config.nodes <= 1 || node == home_node(dims, config.nodes) {
        return 0;
    }
    let bytes = u64::from(dims.m) * u64::from(dims.k) * collectives::BYTES_PER_ELEM;
    config
        .system
        .topology
        .inter
        .p2p
        .transfer_time(bytes)
        .as_nanos()
}

/// The replica a convergence failure should blame: the one with the
/// most undrained batches (ties to the lowest id, so the answer is
/// deterministic). `None` when nothing is queued anywhere.
fn wedged_replica(pending_batches: &[usize]) -> Option<usize> {
    pending_batches
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .max_by_key(|(i, &n)| (n, usize::MAX - i))
        .map(|(i, _)| i)
}

/// Sheds every member request of a batch that found no healthy replica,
/// keeping the accounting identities intact (the requests count toward
/// `shed`, and the batch id survives on their records).
fn shed_pending(p: &PendingBatch, acct: &mut Accounting) {
    for r in &p.batch.requests {
        acct.records.push(RequestRecord {
            id: r.id,
            model: r.model.name,
            tokens: r.tokens,
            arrival_ns: r.arrival_ns,
            disposition: Disposition::Shed,
            batch: Some(p.batch.id),
            latency_ns: None,
            form_wait_ns: Some(p.close_ns.saturating_sub(r.arrival_ns)),
            queue_wait_ns: None,
        });
    }
    acct.quarantine_shed += p.batch.requests.len() as u64;
}

/// Pulls replica `idx` from service: marks it quarantined, drains its
/// dispatch queue, and deterministically re-routes each queued batch to
/// a healthy replica (or sheds it, fully accounted, when none remain).
/// The caller guarantees another healthy replica exists — the last
/// replica in service is never quarantined.
fn quarantine_replica(
    replicas: &mut [Replica],
    idx: usize,
    reason: &'static str,
    router: &mut Router,
    config: &ServeConfig,
    now_ns: u64,
    acct: &mut Accounting,
) {
    let tp = config.system.n_gpus as u32;
    let Some(replica) = replicas.get_mut(idx) else {
        return;
    };
    if replica.quarantined.is_some() {
        return;
    }
    replica.quarantined = Some(reason);
    let orphans: Vec<PendingBatch> = replica.pending.drain(..).collect();
    for p in orphans {
        let eligible: Vec<bool> = replicas.iter().map(|r| r.quarantined.is_none()).collect();
        let loads: Vec<ReplicaLoad> = replicas
            .iter()
            .enumerate()
            .map(|(i, r)| ReplicaLoad {
                queued_tokens: r.queued_tokens(),
                busy_ns: r.free_ns.saturating_sub(now_ns),
                node: i % config.nodes,
            })
            .collect();
        let dims = p.batch.gemm_dims(tp);
        match router.route_among(dims, &loads, &eligible) {
            Some(decision) => {
                // The new placement may cross a node boundary the old
                // one did not (or vice versa): re-derive the penalty.
                let migration_ns =
                    migration_penalty_ns(config, dims, decision.replica % config.nodes);
                if let Some(target) = replicas.get_mut(decision.replica) {
                    target.pending.push_back(PendingBatch {
                        routing: "re-routed",
                        migration_ns,
                        ..p
                    });
                    acct.batches_rerouted += 1;
                } else {
                    shed_pending(&p, acct);
                }
            }
            None => shed_pending(&p, acct),
        }
    }
}

/// Runs the serving loop to completion and returns the report. Fully
/// deterministic in the config: same config, bit-identical report.
pub fn serve(config: &ServeConfig) -> Result<ServeReport, FlashOverlapError> {
    Ok(serve_run(config, true)?.0)
}

/// [`serve`], additionally returning the merged tuned-plan snapshot
/// from every replica's cache — the `--plan-cache-out` payload.
pub fn serve_exporting(
    config: &ServeConfig,
) -> Result<(ServeReport, CacheSnapshot), FlashOverlapError> {
    serve_run(config, true)
}

/// Runs the same loop with untuned single-group (non-overlap) plans —
/// the baseline arm of [`serve_comparison`].
pub fn serve_baseline(config: &ServeConfig) -> Result<ServeReport, FlashOverlapError> {
    Ok(serve_run(config, false)?.0)
}

/// Serves the identical seeded traffic through both the tuned and the
/// non-overlap baseline arms.
pub fn serve_comparison(config: &ServeConfig) -> Result<ComparisonReport, FlashOverlapError> {
    Ok(ComparisonReport {
        tuned: serve(config)?,
        baseline: serve_baseline(config)?,
    })
}

/// Serves the identical seeded traffic through the configured
/// multi-replica arm, a single replica, and the multi-replica arm with
/// pipelining disabled — the replica-scaling evaluation.
pub fn serve_scaling(config: &ServeConfig) -> Result<ScalingReport, FlashOverlapError> {
    let multi = serve(config)?;
    let single = serve(&ServeConfig {
        replicas: 1,
        ..config.clone()
    })?;
    let unpipelined = serve(&ServeConfig {
        pipelined: false,
        ..config.clone()
    })?;
    Ok(ScalingReport {
        multi,
        single,
        unpipelined,
    })
}

/// A closed batch sitting in a replica's dispatch queue.
struct PendingBatch {
    batch: Batch,
    routing: &'static str,
    /// When the batch closed and was routed — the start of its
    /// dispatch-queue wait.
    close_ns: u64,
    /// Inter-node migration charged before execution (computed at
    /// routing time; zero for home-node or single-node placements).
    migration_ns: u64,
}

/// One replica group's scheduler state.
struct Replica {
    cache: PlanCache,
    /// Closed batches routed here, waiting for the replica to go idle.
    pending: VecDeque<PendingBatch>,
    /// Virtual time the current chain drains (<= now means idle).
    free_ns: u64,
    busy_ns: u64,
    batches: u64,
    requests: u64,
    tokens: u64,
    chains: u64,
    /// Set when the replica is pulled from service: a chaos chain came
    /// back degraded (wedged under fault injection) or the serve loop
    /// blamed it for a stall. A quarantined replica receives no new
    /// batches and never dispatches again.
    quarantined: Option<&'static str>,
    /// Executed chains as `(start_ns, total_ns, attribution)` — the raw
    /// material of the serve-level critical-path attribution.
    chain_log: Vec<(u64, u64, AttributionTotals)>,
}

impl Replica {
    fn new(cache: PlanCache) -> Self {
        Replica {
            cache,
            pending: VecDeque::new(),
            free_ns: 0,
            busy_ns: 0,
            batches: 0,
            requests: 0,
            tokens: 0,
            chains: 0,
            quarantined: None,
            chain_log: Vec::new(),
        }
    }

    fn queued_tokens(&self) -> u64 {
        self.pending
            .iter()
            .map(|p| u64::from(p.batch.padded_tokens))
            .sum()
    }
}

/// Drift accumulator key: `(m, n, k, group)`.
type DriftKey = (u32, u32, u32, usize);
/// Drift accumulator cell: `(samples, predicted_sum, measured_sum)`.
type DriftCell = (u64, f64, f64);

/// Mutable accounting threaded through chain execution.
#[derive(Default)]
struct Accounting {
    records: Vec<RequestRecord>,
    batch_records: Vec<BatchRecord>,
    signal_weighted_sum: f64,
    signal_samples: u64,
    /// Batches moved off a quarantined replica's dispatch queue.
    batches_rerouted: u64,
    /// Requests shed because their batch had no healthy replica left.
    quarantine_shed: u64,
    /// Batches executed off their home node (multi-node deployments).
    cross_node_batches: u64,
    /// Total inter-node migration charged to cross-node batches.
    migration_ns: u64,
    /// Inter-node bytes the hierarchical schedule moved for the run's
    /// tensor-parallel AllReduces (multi-node deployments).
    inter_bytes_hierarchical: u64,
    /// Inter-node bytes the flat rank-order ring would have moved for
    /// the same AllReduces.
    inter_bytes_flat: u64,
    /// Drift accumulator; BTreeMap so the report rows come out in
    /// deterministic shape-major order.
    drift: std::collections::BTreeMap<DriftKey, DriftCell>,
}

impl Accounting {
    fn absorb_signals(&mut self, record: &telemetry::TelemetryRecord, spans: &[gpu_sim::OpSpan]) {
        if let Some(sig) = signal_summary(record, spans) {
            self.signal_weighted_sum += sig.mean_total_ns * sig.samples.len() as f64;
            self.signal_samples += sig.samples.len() as u64;
        }
    }

    /// Folds one batch's measured group completions against the plan's
    /// [`LatencyPredictor`](flashoverlap::LatencyPredictor) predictions.
    fn absorb_drift(
        &mut self,
        dims: gpu_sim::gemm::GemmDims,
        predicted: &[sim::SimDuration],
        measured: &[sim::SimDuration],
    ) {
        if predicted.len() != measured.len() {
            return;
        }
        for (group, (p, m)) in predicted.iter().zip(measured).enumerate() {
            let cell = self
                .drift
                .entry((dims.m, dims.n, dims.k, group))
                .or_insert((0, 0.0, 0.0));
            cell.0 += 1;
            cell.1 += p.as_nanos() as f64;
            cell.2 += m.as_nanos() as f64;
        }
    }
}

fn serve_run(
    config: &ServeConfig,
    tuned: bool,
) -> Result<(ServeReport, CacheSnapshot), FlashOverlapError> {
    config.validate()?;
    let tp = config.system.n_gpus as u32;
    let arrivals = generate(&config.mix, config.process, config.requests, config.seed);
    let offered_span_ns = arrivals.last().map_or(0, |r| r.arrival_ns);

    let mut replicas: Vec<Replica> = (0..config.replicas)
        .map(|_| {
            let mut cache = if tuned {
                PlanCache::new(config.cache_capacity)
            } else {
                PlanCache::new_untuned(config.cache_capacity)
            };
            if let Some(snapshot) = &config.preload {
                // Fingerprint compatibility was validated up front.
                cache.preload(&config.system, &snapshot.entries)?;
            }
            Ok(cache)
        })
        .map(|c: Result<PlanCache, FlashOverlapError>| c.map(Replica::new))
        .collect::<Result<Vec<Replica>, FlashOverlapError>>()?;
    let mut router = Router::new(config.router);

    let mut queue: Vec<Request> = Vec::new();
    let mut next_arrival = 0usize;
    let mut now_ns = 0u64;
    let mut batch_id = 0u64;
    let mut acct = Accounting {
        records: Vec::with_capacity(arrivals.len()),
        ..Accounting::default()
    };
    let mut shapes = std::collections::HashSet::new();

    // Loop guard: each iteration either admits, dispatches, or advances
    // the clock to a strictly later event, so this bound is generous.
    let max_iterations = 20 * arrivals.len() + 100;
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        if iterations > max_iterations {
            let pending: Vec<usize> = replicas.iter().map(|r| r.pending.len()).collect();
            // Survive the wedge when possible: quarantine the blamed
            // replica and re-route its queue instead of aborting. Each
            // replica can be quarantined at most once and the last
            // healthy replica is never pulled, so the retries are
            // bounded by the replica count.
            if let Some(r) = wedged_replica(&pending) {
                let healthy = replicas.iter().filter(|x| x.quarantined.is_none()).count();
                if healthy > 1 && replicas.get(r).is_some_and(|x| x.quarantined.is_none()) {
                    quarantine_replica(
                        &mut replicas,
                        r,
                        "serve loop stalled on this replica",
                        &mut router,
                        config,
                        now_ns,
                        &mut acct,
                    );
                    iterations = 0;
                    continue;
                }
            }
            let blame = match wedged_replica(&pending) {
                Some(r) => format!(
                    "; replica {r} is wedged with {} undrained batch(es)",
                    pending.get(r).copied().unwrap_or(0)
                ),
                None => String::new(),
            };
            return Err(FlashOverlapError::Simulation(format!(
                "serve loop failed to converge after {max_iterations} iterations \
                 ({} requests unresolved{blame})",
                arrivals.len() - acct.records.len()
            )));
        }

        // Admission: everything that has arrived by `now` either joins
        // the bounded queue or is shed.
        while let Some(r) = arrivals.get(next_arrival) {
            if r.arrival_ns > now_ns {
                break;
            }
            if queue.len() >= config.queue_capacity {
                acct.records.push(RequestRecord {
                    id: r.id,
                    model: r.model.name,
                    tokens: r.tokens,
                    arrival_ns: r.arrival_ns,
                    disposition: Disposition::Shed,
                    batch: None,
                    latency_ns: None,
                    form_wait_ns: None,
                    queue_wait_ns: None,
                });
            } else {
                queue.push(*r);
            }
            next_arrival += 1;
        }

        // Batch closing: form every batch that is ready at `now` and
        // route it to a replica's dispatch queue.
        while let Some(head) = queue.first() {
            let head_deadline = head.arrival_ns.saturating_add(config.batch.max_wait_ns);
            let run_tokens: u32 = queue
                .iter()
                .take_while(|r| r.model == head.model)
                .map(|r| r.tokens)
                .sum();
            let ready = run_tokens >= config.batch.max_batch_tokens
                || now_ns >= head_deadline
                || next_arrival >= arrivals.len();
            if !ready {
                break;
            }
            let batch = form_batch(&mut queue, &config.batch, batch_id)
                .expect("queue is non-empty when a batch closes");
            batch_id += 1;
            let dims = batch.gemm_dims(tp);
            shapes.insert(dims);
            let eligible: Vec<bool> = replicas.iter().map(|r| r.quarantined.is_none()).collect();
            let loads: Vec<ReplicaLoad> = replicas
                .iter()
                .enumerate()
                .map(|(i, r)| ReplicaLoad {
                    queued_tokens: r.queued_tokens(),
                    busy_ns: r.free_ns.saturating_sub(now_ns),
                    node: i % config.nodes,
                })
                .collect();
            match router.route_among(dims, &loads, &eligible) {
                Some(decision) => {
                    let migration_ns =
                        migration_penalty_ns(config, dims, decision.replica % config.nodes);
                    if let Some(replica) = replicas.get_mut(decision.replica) {
                        replica.pending.push_back(PendingBatch {
                            batch,
                            routing: decision.reason,
                            close_ns: now_ns,
                            migration_ns,
                        });
                    }
                }
                // No healthy replica left (unreachable while the
                // last-replica-in-service rule holds; kept as the
                // accounted fallback).
                None => shed_pending(
                    &PendingBatch {
                        batch,
                        routing: "no-healthy-replica",
                        close_ns: now_ns,
                        migration_ns: 0,
                    },
                    &mut acct,
                ),
            }
        }

        // Dispatch: every idle, in-service replica drains up to `chain`
        // pending batches as one (pipelined) simulation starting now —
        // chains form under chaos too; each batch just carries its own
        // fault plan into the resilient sequence.
        for idx in 0..replicas.len() {
            let degraded = {
                let Some(replica) = replicas.get_mut(idx) else {
                    continue;
                };
                if replica.quarantined.is_some()
                    || replica.free_ns > now_ns
                    || replica.pending.is_empty()
                {
                    continue;
                }
                let take = replica.pending.len().min(config.chain);
                let chain: Vec<PendingBatch> = replica.pending.drain(..take).collect();
                let (free_ns, degraded) =
                    run_chain(config, idx, replica, chain, now_ns, tp, &mut acct)?;
                replica.free_ns = free_ns;
                degraded
            };
            // A degraded chain marks the replica wedged. Quarantine it
            // and re-route its queue — unless it is the last replica in
            // service, which keeps limping rather than shedding all
            // remaining traffic.
            let healthy = replicas.iter().filter(|r| r.quarantined.is_none()).count();
            if degraded && healthy > 1 {
                quarantine_replica(
                    &mut replicas,
                    idx,
                    "wedged: chaos chain came back degraded",
                    &mut router,
                    config,
                    now_ns,
                    &mut acct,
                );
            }
        }

        // Termination: every request admitted, batched, and executed.
        if next_arrival >= arrivals.len()
            && queue.is_empty()
            && replicas.iter().all(|r| r.pending.is_empty())
        {
            break;
        }

        // Advance the clock to the next event: an arrival, the head
        // request's batching deadline, or a busy replica with queued
        // work going idle.
        let mut next_event = arrivals.get(next_arrival).map(|r| r.arrival_ns);
        if let Some(head) = queue.first() {
            let deadline = head.arrival_ns.saturating_add(config.batch.max_wait_ns);
            next_event = Some(next_event.map_or(deadline, |t| t.min(deadline)));
        }
        for replica in &replicas {
            if !replica.pending.is_empty() {
                next_event = Some(next_event.map_or(replica.free_ns, |t| t.min(replica.free_ns)));
            }
        }
        match next_event {
            Some(t) => now_ns = now_ns.max(t),
            None => {
                debug_assert!(false, "no next event yet not terminated");
                break;
            }
        }
    }

    acct.records.sort_by_key(|r| r.id);
    debug_assert_eq!(
        acct.records.len(),
        arrivals.len(),
        "every request accounted for"
    );
    let makespan_ns = replicas.iter().map(|r| r.free_ns).max().unwrap_or(0);

    let fp = system_fingerprint(&config.system);
    let mut entries: Vec<PlanEntry> = replicas
        .iter()
        .flat_map(|r| r.cache.export_entries(fp))
        .collect();
    entries.sort_by_key(|e| (e.dims.m, e.dims.n, e.dims.k, format!("{}", e.primitive)));
    entries.dedup_by_key(|e| (e.dims, e.primitive));
    let snapshot = CacheSnapshot {
        system_fp: fp,
        entries,
    };

    let report = build_report(
        config,
        tuned,
        makespan_ns,
        offered_span_ns,
        acct,
        shapes.len() as u64,
        &replicas,
    );
    Ok((report, snapshot))
}

/// Executes one chain of batches on `replica` starting at `start_ns`,
/// pushing per-request and per-batch records. Returns the virtual time
/// the chain drains and whether any batch in it came back degraded
/// (the caller's quarantine signal).
fn run_chain(
    config: &ServeConfig,
    replica_idx: usize,
    replica: &mut Replica,
    chain: Vec<PendingBatch>,
    start_ns: u64,
    tp: u32,
    acct: &mut Accounting,
) -> Result<(u64, bool), FlashOverlapError> {
    let pattern = CommPattern::AllReduce;
    let mut plans: Vec<(Rc<OverlapPlan>, bool)> = Vec::with_capacity(chain.len());
    for p in &chain {
        plans.push(
            replica
                .cache
                .get_or_tune(p.batch.gemm_dims(tp), &pattern, &config.system)?,
        );
    }

    let chain_len = chain.len() as u64;
    // Total inter-node migration for the chain, charged up front: the
    // chain cannot launch until every member batch's activations have
    // crossed the inter-node fabric. Zero on single-node runs, so the
    // pre-topology timeline is reproduced exactly.
    let mig_ns: u64 = chain.iter().map(|p| p.migration_ns).sum();
    let telemetry = Telemetry::new();
    // Per-batch deterministic fault plans. The wedge-replica override
    // replaces the leading batch's draw with an unrecoverable
    // dropped-signal wedge (group 0 starves, so no group completes and
    // recovery can only abandon the overlap — deterministically
    // degraded).
    let chaos_faults: Vec<FaultPlan> = if config.chaos {
        chain
            .iter()
            .zip(&plans)
            .enumerate()
            .map(|(i, (p, (plan, _)))| {
                if i == 0 && config.wedge_replica == Some(replica_idx) {
                    FaultPlan::single(Fault::DroppedIncrement {
                        rank: 0,
                        group: 0,
                        count: u32::MAX,
                    })
                } else {
                    FaultPlan::random(
                        fault_seed(config.seed, p.batch.id),
                        config.system.n_gpus,
                        plan.partition.num_groups(),
                    )
                }
            })
            .collect()
    } else {
        Vec::new()
    };
    let watchdog = WatchdogConfig::default();
    // Resilient sequences reject probe instrumentation, so chaos chains
    // run monitor-only (spans still flow; tail/bulk recovery collectives
    // land in the `recovery` attribution category).
    let monitor_instr = Instrumentation {
        monitor: Some(telemetry.monitor()),
        probe: None,
        mutation: None,
    };
    let probe_instr = telemetry.instrumentation();
    let mut options = SequenceOptions::new().trace();
    options = if config.chaos {
        options
            .instrument(&monitor_instr)
            .resilient(&chaos_faults, &watchdog)
    } else {
        options.instrument(&probe_instr)
    };
    if !config.pipelined {
        options = options.serial();
    }
    let plan_refs: Vec<&OverlapPlan> = plans.iter().map(|(p, _)| p.as_ref()).collect();
    let outcome = execute_sequence(&plan_refs, &options)?;
    let completions: Vec<u64> = outcome
        .reports
        .iter()
        .map(|r| r.latency.as_nanos())
        .collect();
    let outcomes: Vec<&'static str> = outcome.outcomes.iter().map(|o| o.label()).collect();
    let group_dones: Vec<Vec<sim::SimDuration>> = outcome
        .reports
        .iter()
        .map(|r| r.group_comm_done.clone())
        .collect();
    let total_ns = outcome.total.as_nanos();
    let spans = outcome.spans;
    let record = telemetry.take_record();
    acct.absorb_signals(&record, &spans);
    // Critical-path attribution of the whole chain; per-batch shares are
    // clipped out of it below.
    let attribution = attribute_makespan(&spans, &record, total_ns);

    // Predictor drift: sample only the chain-leading batch — later
    // pipelined batches' measured completions include comm-stream
    // queueing behind the previous batch's tail and would bias the
    // comparison.
    if let (Some(p), Some(measured)) = (plans.first(), group_dones.first()) {
        if let Some(predicted) = p.0.predicted_group_completions() {
            let dims = chain
                .first()
                .expect("chain is non-empty")
                .batch
                .gemm_dims(tp);
            acct.absorb_drift(dims, &predicted, measured);
        }
    }

    let mut prev_done = 0u64;
    for ((pending, (_, cache_hit)), (done_ns, outcome)) in chain
        .iter()
        .zip(&plans)
        .zip(completions.iter().zip(&outcomes))
    {
        let batch = &pending.batch;
        let end_ns = start_ns.saturating_add(mig_ns).saturating_add(*done_ns);
        // Recovery can complete a wedged batch *after* its successor
        // (the tail re-issue runs while downstream comm drains), so the
        // accounting window is clamped monotone; request latencies keep
        // the true completion time.
        let window_end = (*done_ns).max(prev_done);
        let disposition = Disposition::from_outcome_label(outcome);
        let queue_wait = start_ns.saturating_sub(pending.close_ns);
        for r in &batch.requests {
            acct.records.push(RequestRecord {
                id: r.id,
                model: r.model.name,
                tokens: r.tokens,
                arrival_ns: r.arrival_ns,
                disposition,
                batch: Some(batch.id),
                latency_ns: Some(end_ns - r.arrival_ns),
                form_wait_ns: Some(pending.close_ns.saturating_sub(r.arrival_ns)),
                queue_wait_ns: Some(queue_wait),
            });
        }
        if pending.migration_ns > 0 {
            acct.cross_node_batches += 1;
            acct.migration_ns += pending.migration_ns;
        }
        if config.nodes > 1 {
            // Byte accounting for the batch's tensor-parallel AllReduce
            // (full reduced M x N output): what the hierarchical schedule
            // actually crossed nodes with vs. what the flat ring would
            // have.
            let dims = batch.gemm_dims(tp);
            let payload = u64::from(dims.m) * u64::from(dims.n) * collectives::BYTES_PER_ELEM;
            let topo = &config.system.topology;
            acct.inter_bytes_hierarchical += collectives::inter_bytes_hierarchical(
                collectives::Primitive::AllReduce,
                payload,
                topo,
            );
            acct.inter_bytes_flat +=
                collectives::inter_bytes_flat(collectives::Primitive::AllReduce, payload, topo);
        }
        acct.batch_records.push(BatchRecord {
            id: batch.id,
            model: batch.model.name,
            requests: batch.requests.len() as u64,
            tokens: batch.tokens,
            padded_tokens: batch.padded_tokens,
            start_ns: start_ns.saturating_add(mig_ns).saturating_add(prev_done),
            exec_ns: window_end - prev_done,
            cache_hit: *cache_hit,
            outcome,
            replica: replica_idx,
            node: replica_idx % config.nodes,
            migration_ns: pending.migration_ns,
            routing: pending.routing,
            chain_len,
            close_ns: pending.close_ns,
            queue_wait_ns: queue_wait,
            attribution: Some(attribution.clip_window(prev_done, window_end)),
        });
        replica.batches += 1;
        replica.requests += batch.requests.len() as u64;
        replica.tokens += u64::from(batch.tokens);
        prev_done = window_end;
    }
    replica.busy_ns += mig_ns + total_ns;
    replica.chains += 1;
    // The chain window spans migration + execution; migration is
    // inter-node traffic, so it lands in the collective-transfer
    // category and the serve-level attribution identity still holds.
    let mut chain_totals = attribution.totals;
    chain_totals.add(Category::CollectiveTransfer, mig_ns);
    replica
        .chain_log
        .push((start_ns, mig_ns.saturating_add(total_ns), chain_totals));
    let any_degraded = outcomes.contains(&"degraded");
    Ok((
        start_ns.saturating_add(mig_ns).saturating_add(total_ns),
        any_degraded,
    ))
}

/// Serve-level critical-path attribution: the bottleneck replica's
/// timeline (its last chain ends at the makespan) is its executed
/// chains plus the gaps between them. Chain windows carry their own
/// attribution; a gap is charged [`Category::QueueWait`] where requests
/// were in the system still forming batches (the union of per-request
/// `[arrival, arrival + form_wait]` intervals) and [`Category::Idle`]
/// where the system was truly empty. Totals sum to `makespan_ns`.
fn serve_attribution(
    makespan_ns: u64,
    replicas: &[Replica],
    records: &[RequestRecord],
) -> AttributionTotals {
    let mut totals = AttributionTotals::default();
    // Bottleneck replica: max free_ns, ties to the lowest id.
    let Some(bottleneck) = replicas
        .iter()
        .enumerate()
        .max_by_key(|(i, r)| (r.free_ns, usize::MAX - i))
        .map(|(_, r)| r)
    else {
        totals.add(Category::Idle, makespan_ns);
        return totals;
    };

    // Merged union of batch-forming intervals across all requests.
    let mut forming: Vec<(u64, u64)> = records
        .iter()
        .filter_map(|r| r.form_wait_ns.map(|w| (r.arrival_ns, r.arrival_ns + w)))
        .filter(|(lo, hi)| hi > lo)
        .collect();
    forming.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::new();
    for (lo, hi) in forming {
        match merged.last_mut() {
            Some((_, last_hi)) if lo <= *last_hi => *last_hi = (*last_hi).max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    let charge_gap = |totals: &mut AttributionTotals, lo: u64, hi: u64| {
        if hi <= lo {
            return;
        }
        let mut queue_wait = 0u64;
        for &(ilo, ihi) in &merged {
            let o_lo = ilo.max(lo);
            let o_hi = ihi.min(hi);
            if o_hi > o_lo {
                queue_wait += o_hi - o_lo;
            }
        }
        totals.add(Category::QueueWait, queue_wait);
        totals.add(Category::Idle, (hi - lo) - queue_wait);
    };

    let mut chains = bottleneck.chain_log.clone();
    chains.sort_unstable_by_key(|&(start, _, _)| start);
    let mut cursor = 0u64;
    for (start, total, chain_totals) in &chains {
        charge_gap(&mut totals, cursor, *start);
        totals.merge(chain_totals);
        cursor = start + total;
    }
    charge_gap(&mut totals, cursor, makespan_ns);
    totals
}

fn build_report(
    config: &ServeConfig,
    tuned: bool,
    makespan_ns: u64,
    offered_span_ns: u64,
    acct: Accounting,
    distinct_shapes: u64,
    replicas: &[Replica],
) -> ServeReport {
    let Accounting {
        records,
        batch_records,
        signal_weighted_sum,
        signal_samples,
        batches_rerouted,
        quarantine_shed,
        cross_node_batches,
        migration_ns,
        inter_bytes_hierarchical,
        inter_bytes_flat,
        drift,
    } = acct;
    let attribution = serve_attribution(makespan_ns, replicas, &records);
    let form_waits: Vec<u64> = records.iter().filter_map(|r| r.form_wait_ns).collect();
    let queue_waits: Vec<u64> = records.iter().filter_map(|r| r.queue_wait_ns).collect();
    let drift_rows: Vec<DriftRow> = drift
        .into_iter()
        .map(|((m, n, k, group), (samples, pred, meas))| DriftRow {
            m,
            n,
            k,
            group,
            samples,
            mean_predicted_ns: pred / samples as f64,
            mean_measured_ns: meas / samples as f64,
        })
        .collect();
    let offered = records.len() as u64;
    let shed = records
        .iter()
        .filter(|r| r.disposition == Disposition::Shed)
        .count() as u64;
    let completed = offered - shed;
    let count = |d: Disposition| records.iter().filter(|r| r.disposition == d).count() as u64;
    // The merged per-request completion stream across every replica:
    // percentiles are order statistics of the run, not averages of
    // per-replica summaries (a hot replica must drag the run's p95).
    let latencies: Vec<u64> = records.iter().filter_map(|r| r.latency_ns).collect();
    let slo_met = records
        .iter()
        .filter(|r| {
            r.disposition != Disposition::Shed
                && r.disposition != Disposition::Degraded
                && r.latency_ns.is_some_and(|l| l <= config.slo_ns)
        })
        .count() as u64;
    let makespan_s = makespan_ns as f64 / 1e9;
    let offered_span_s = offered_span_ns as f64 / 1e9;
    let total_batch_requests: u64 = batch_records.iter().map(|b| b.requests).sum();
    let total_batch_tokens: u64 = batch_records.iter().map(|b| u64::from(b.tokens)).sum();
    let n_batches = batch_records.len() as u64;
    let cache = replicas
        .iter()
        .fold(CacheStats::default(), |sum, r| sum.merge(&r.cache.stats()));
    let replica_stats: Vec<ReplicaStats> = replicas
        .iter()
        .enumerate()
        .map(|(id, r)| ReplicaStats {
            id,
            node: id % config.nodes,
            batches: r.batches,
            requests: r.requests,
            tokens: r.tokens,
            busy_ns: r.busy_ns,
            chains: r.chains,
            utilization: if makespan_ns > 0 {
                r.busy_ns as f64 / makespan_ns as f64
            } else {
                0.0
            },
            quarantined: r.quarantined.is_some(),
            cache: r.cache.stats(),
        })
        .collect();
    // Node rollup: fold replica rows into their node; summing the node
    // rows reproduces the run totals (node → replica → total identity).
    let mut node_stats: Vec<NodeStats> = (0..config.nodes)
        .map(|node| NodeStats {
            node,
            ..NodeStats::default()
        })
        .collect();
    for r in &replica_stats {
        if let Some(n) = node_stats.get_mut(r.node) {
            n.replicas += 1;
            n.batches += r.batches;
            n.requests += r.requests;
            n.tokens += r.tokens;
            n.busy_ns += r.busy_ns;
        }
    }

    ServeReport {
        seed: config.seed,
        arrival: config.process.label(),
        offered,
        gpus: config.system.n_gpus,
        platform: config.system.arch.name,
        slo_ns: config.slo_ns,
        chaos: config.chaos,
        tuned,
        replicas: config.replicas,
        nodes: config.nodes,
        router: config.router.label(),
        pipelined: config.pipelined,
        wedge_replica: config.wedge_replica,
        replicas_quarantined: replicas.iter().filter(|r| r.quarantined.is_some()).count() as u64,
        batches_rerouted,
        quarantine_shed,
        cross_node_batches,
        migration_ns,
        inter_bytes_hierarchical,
        inter_bytes_flat,
        makespan_ns,
        completed,
        shed,
        clean: count(Disposition::Clean),
        recovered: count(Disposition::Recovered),
        degraded: count(Disposition::Degraded),
        slo_met,
        latency: percentiles(&latencies),
        mean_latency_ns: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
        },
        max_latency_ns: latencies.iter().copied().max().unwrap_or(0),
        goodput_rps: if makespan_s > 0.0 {
            slo_met as f64 / makespan_s
        } else {
            0.0
        },
        offered_rps: if offered_span_s > 0.0 {
            offered as f64 / offered_span_s
        } else {
            0.0
        },
        shed_rate: if offered > 0 {
            shed as f64 / offered as f64
        } else {
            0.0
        },
        batches: n_batches,
        mean_batch_requests: if n_batches > 0 {
            total_batch_requests as f64 / n_batches as f64
        } else {
            0.0
        },
        mean_batch_tokens: if n_batches > 0 {
            total_batch_tokens as f64 / n_batches as f64
        } else {
            0.0
        },
        distinct_shapes,
        cache,
        replica_stats,
        node_stats,
        mean_signal_ns: if signal_samples > 0 {
            signal_weighted_sum / signal_samples as f64
        } else {
            0.0
        },
        signal_samples,
        form_wait: percentiles(&form_waits),
        queue_wait: percentiles(&queue_waits),
        attribution,
        drift: drift_rows,
        records,
        batch_records,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn wedged_replica_blames_the_deepest_queue_tie_lowest_id() {
        assert_eq!(wedged_replica(&[0, 3, 1, 3]), Some(1));
        assert_eq!(wedged_replica(&[2]), Some(0));
        assert_eq!(wedged_replica(&[0, 0]), None);
        assert_eq!(wedged_replica(&[]), None);
    }

    #[test]
    fn zero_replicas_is_rejected() {
        let mut config = ServeConfig::new(SystemSpec::rtx4090(2));
        config.replicas = 0;
        assert!(matches!(
            serve(&config),
            Err(FlashOverlapError::BadInputs { .. })
        ));
    }

    #[test]
    fn mismatched_snapshot_fingerprint_is_rejected() {
        let mut config = ServeConfig::new(SystemSpec::rtx4090(2));
        config.preload = Some(CacheSnapshot {
            system_fp: 0xdead_beef,
            entries: Vec::new(),
        });
        let err = serve(&config).unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("00000000deadbeef"),
            "error must name the stale fingerprint: {msg}"
        );
    }
}
