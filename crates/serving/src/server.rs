//! The serving loop: admission control, continuous batching, replica
//! routing, and pipelined plan-cache execution over virtual time.
//!
//! The loop is a discrete-event scheduler one level above the cluster
//! simulator: requests arrive on a seeded trace ([`crate::traffic`]),
//! wait in a bounded FIFO (overflow is shed — classic admission
//! control), close into batches under a token-budget/max-wait policy
//! ([`crate::batch`]), and are routed ([`crate::router`]) to one of
//! [`ServeConfig::replicas`] independent tensor-parallel groups, each
//! sealed behind a [`crate::engine::ReplicaEngine`] that owns the
//! replica's [`PlanCache`](crate::cache::PlanCache), telemetry wiring,
//! and chain executor. An idle replica drains its dispatch queue in
//! *chains* of up to [`ServeConfig::chain`] batches executed through
//! one simulation ([`flashoverlap::execute_sequence`]): with
//! [`ServeConfig::pipelined`] set, batch *k+1*'s GEMM waves run while
//! batch *k*'s tail collectives drain, double-buffered counting tables
//! carrying the cross-batch happens-before edges. Executed chain
//! latency advances the replica's virtual timeline, so queueing delay
//! emerges from the interaction of the arrival rate and the simulated
//! operator throughput — backpressure is real, not modelled.
//!
//! With [`ServeConfig::exec`] set to [`ExecMode::Parallel`], the
//! engines run on worker threads and the loop forces an outstanding
//! chain's reply only at the points where a scheduling decision reads
//! its result (dispatch eligibility, clock advance, load-aware
//! routing). Every chain carries a dispatch sequence number and its
//! accounting effects are merged in sequence order, so the report is
//! byte-identical to [`ExecMode::Serial`] for any thread count — the
//! gpucachesim-style deterministic-parallel contract. See DESIGN.md's
//! "Parallel simulation" section for the determinism argument.
//!
//! With [`ServeConfig::chaos`] set, chains still form and still
//! pipeline: each batch carries its own deterministic per-batch
//! [`FaultPlan`](flashoverlap::FaultPlan) into a resilient
//! [`flashoverlap::execute_sequence`] (the chain watchdog recovers
//! wedged segments without poisoning the counting tables downstream
//! batches inherit), and the batch's resilient outcome (clean /
//! recovered / degraded) is stamped onto its member requests — chaos
//! under load, with every request accounted for. A chain that comes
//! back degraded marks its replica *wedged*: the replica is
//! quarantined, its queued batches are deterministically re-routed to
//! healthy replicas (or shed, with full accounting, when none remain),
//! and the run completes instead of aborting. Chaos dispatches are
//! forced eagerly — the quarantine/re-route decision must land at the
//! exact virtual instant the serial engine would make it.

use std::collections::VecDeque;

use flashoverlap::{FlashOverlapError, SystemSpec};
use telemetry::attribution::{AttributionTotals, Category};
use telemetry::percentiles;
use workloads::ServeMix;

use crate::batch::{form_batch, BatchConfig};
use crate::cache::{system_fingerprint, CacheSnapshot, CacheStats, PlanEntry};
use crate::engine::{
    ChainEffects, EngineCommand, EngineFinal, EnginePool, EngineReply, PendingBatch, ReplicaEngine,
};
use crate::report::{
    BatchRecord, ComparisonReport, Disposition, DriftRow, NodeStats, ReplicaStats, RequestRecord,
    ScalingReport, ServeReport,
};
use crate::router::{home_node, ReplicaLoad, Router, RouterPolicy};
use crate::traffic::{generate, ArrivalProcess, Request};

/// How the serve loop runs its replica engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Every engine executes inline on the serve-loop thread — the
    /// reference engine.
    Serial,
    /// Engines are spread over up to this many worker threads (clamped
    /// to the replica count; `Parallel(0)` and `Parallel(1)` still use
    /// one worker thread). Byte-identical to [`ExecMode::Serial`] for
    /// any thread count.
    Parallel(usize),
}

/// Everything a serve run needs. Construct with [`ServeConfig::new`]
/// and override fields as needed.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Target system (one tensor-parallel replica group; every replica
    /// is identical).
    pub system: SystemSpec,
    /// Traffic mix.
    pub mix: ServeMix,
    /// Arrival process.
    pub process: ArrivalProcess,
    /// Number of requests to offer.
    pub requests: usize,
    /// Seed for the traffic trace and per-batch fault plans.
    pub seed: u64,
    /// Batch-former policy.
    pub batch: BatchConfig,
    /// Admission queue bound; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Per-replica plan-cache capacity.
    pub cache_capacity: usize,
    /// Latency SLO.
    pub slo_ns: u64,
    /// Arm per-batch fault injection (resilient execution).
    pub chaos: bool,
    /// Independent replica groups behind the router.
    pub replicas: usize,
    /// Nodes the replicas are spread across (replica `r` lives on node
    /// `r % nodes`). Batches routed off their home node pay an
    /// inter-node migration penalty over
    /// [`SystemSpec::topology`](flashoverlap::SystemSpec)'s inter
    /// fabric. 1 = the single-node deployment every prior config ran.
    pub nodes: usize,
    /// Batch-routing policy.
    pub router: RouterPolicy,
    /// Execute replica chains with cross-batch pipelining (false
    /// inserts a serial barrier between consecutive batches).
    pub pipelined: bool,
    /// Most batches an idle replica chains into one simulation.
    pub chain: usize,
    /// Force this replica's first chaos chain to wedge deterministically
    /// (an unrecoverable dropped-signal fault on its leading batch), so
    /// the quarantine → re-route path is reproducible under a fixed
    /// seed. Requires [`ServeConfig::chaos`].
    pub wedge_replica: Option<usize>,
    /// Tuned plans to seed every replica's cache with before the run.
    /// The snapshot's fingerprint must match [`ServeConfig::system`].
    pub preload: Option<CacheSnapshot>,
    /// Replica-engine execution mode. [`ExecMode::Parallel`] runs the
    /// engines on worker threads with a sequence-numbered deterministic
    /// merge — same config, bit-identical report, any thread count.
    /// Virtual-time results never depend on this knob; only wall-clock
    /// does.
    pub exec: ExecMode,
}

impl ServeConfig {
    /// Defaults: 200 requests of the default mix at 500 rps Poisson
    /// (≈70% utilization of a two-rank 4090 group under the default
    /// prefill-heavy mix), 20 ms SLO, 64-deep queue, 32-plan cache,
    /// one replica, round-robin router, pipelined 4-batch chains, no
    /// chaos, serial execution.
    pub fn new(system: SystemSpec) -> Self {
        ServeConfig {
            system,
            mix: ServeMix::default_mix(),
            process: ArrivalProcess::Poisson { rate_rps: 500.0 },
            requests: 200,
            seed: 0,
            batch: BatchConfig::default(),
            queue_capacity: 64,
            cache_capacity: 32,
            slo_ns: 20_000_000,
            chaos: false,
            replicas: 1,
            nodes: 1,
            router: RouterPolicy::RoundRobin,
            pipelined: true,
            chain: 4,
            wedge_replica: None,
            preload: None,
            exec: ExecMode::Serial,
        }
    }

    /// Validates shape divisibility (every mix model's intermediate
    /// size must split across the TP group), replica/chain bounds, and
    /// preload fingerprint compatibility.
    fn validate(&self) -> Result<(), FlashOverlapError> {
        let tp = self.system.n_gpus as u32;
        for entry in self.mix.entries() {
            if tp == 0 || entry.model.intermediate % tp != 0 {
                return Err(FlashOverlapError::IncompatibleShape {
                    reason: format!(
                        "{}: intermediate {} not divisible by tp {}",
                        entry.model.name, entry.model.intermediate, tp
                    ),
                });
            }
        }
        if self.replicas == 0 {
            return Err(FlashOverlapError::BadInputs {
                reason: "need at least one replica".into(),
            });
        }
        if self.chain == 0 {
            return Err(FlashOverlapError::BadInputs {
                reason: "chain length must be at least 1".into(),
            });
        }
        if self.nodes == 0 {
            return Err(FlashOverlapError::BadInputs {
                reason: "need at least one node".into(),
            });
        }
        if self.nodes > self.replicas {
            return Err(FlashOverlapError::BadInputs {
                reason: format!(
                    "--nodes {} exceeds --replicas {}; every node needs at least one replica",
                    self.nodes, self.replicas
                ),
            });
        }
        if let Some(w) = self.wedge_replica {
            if w >= self.replicas {
                return Err(FlashOverlapError::BadInputs {
                    reason: format!(
                        "--wedge-replica {w} targets a replica that does not exist \
                         ({} configured)",
                        self.replicas
                    ),
                });
            }
            if !self.chaos {
                return Err(FlashOverlapError::BadInputs {
                    reason: "--wedge-replica injects a fault plan and requires --chaos".into(),
                });
            }
        }
        if let Some(snapshot) = &self.preload {
            let fp = system_fingerprint(&self.system);
            if snapshot.system_fp != fp {
                return Err(FlashOverlapError::BadInputs {
                    reason: format!(
                        "plan-cache snapshot was tuned for system {:016x} but this run \
                         targets {fp:016x}; re-tune instead of loading stale plans",
                        snapshot.system_fp
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Per-batch fault-plan seed: decorrelated from the traffic seed and
/// from neighbouring batches (splitmix-style odd multiplier).
pub(crate) fn fault_seed(seed: u64, batch_id: u64) -> u64 {
    seed ^ (batch_id.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Inter-node migration penalty for executing `dims` on `node`: pulling
/// the batch's activation tensor (`m × k` elements) over the inter-node
/// fabric when the chosen replica sits off the batch's home node. Zero
/// on single-node deployments and for home-node placements, so every
/// `nodes == 1` run is byte-identical to the pre-topology simulator.
fn migration_penalty_ns(config: &ServeConfig, dims: gpu_sim::gemm::GemmDims, node: usize) -> u64 {
    if config.nodes <= 1 || node == home_node(dims, config.nodes) {
        return 0;
    }
    let bytes = u64::from(dims.m) * u64::from(dims.k) * collectives::BYTES_PER_ELEM;
    config
        .system
        .topology
        .inter
        .p2p
        .transfer_time(bytes)
        .as_nanos()
}

/// The replica a convergence failure should blame: the one with the
/// most undrained batches (ties to the lowest id, so the answer is
/// deterministic). `None` when nothing is queued anywhere.
fn wedged_replica(pending_batches: &[usize]) -> Option<usize> {
    pending_batches
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .max_by_key(|(i, &n)| (n, usize::MAX - i))
        .map(|(i, _)| i)
}

/// Sheds every member request of a batch that found no healthy replica,
/// keeping the accounting identities intact (the requests count toward
/// `shed`, and the batch id survives on their records).
fn shed_pending(p: &PendingBatch, acct: &mut Accounting) {
    for r in &p.batch.requests {
        acct.records.push(RequestRecord {
            id: r.id,
            model: r.model.name,
            tokens: r.tokens,
            arrival_ns: r.arrival_ns,
            disposition: Disposition::Shed,
            batch: Some(p.batch.id),
            latency_ns: None,
            form_wait_ns: Some(p.close_ns.saturating_sub(r.arrival_ns)),
            queue_wait_ns: None,
        });
    }
    acct.quarantine_shed += p.batch.requests.len() as u64;
}

/// Pulls replica `idx` from service: marks it quarantined, drains its
/// dispatch queue, and deterministically re-routes each queued batch to
/// a healthy replica (or sheds it, fully accounted, when none remain).
/// The caller guarantees another healthy replica exists — the last
/// replica in service is never quarantined — and that no chain is in
/// flight anywhere if the router reads loads (chaos dispatches are
/// forced eagerly; the stall path forces everything first).
fn quarantine_replica(
    slots: &mut [ReplicaSlot],
    idx: usize,
    reason: &'static str,
    router: &mut Router,
    config: &ServeConfig,
    now_ns: u64,
    acct: &mut Accounting,
) {
    let tp = config.system.n_gpus as u32;
    let Some(slot) = slots.get_mut(idx) else {
        return;
    };
    if slot.quarantined.is_some() {
        return;
    }
    slot.quarantined = Some(reason);
    let orphans: Vec<PendingBatch> = slot.pending.drain(..).collect();
    for p in orphans {
        let eligible: Vec<bool> = slots.iter().map(|s| s.quarantined.is_none()).collect();
        let loads: Vec<ReplicaLoad> = slots
            .iter()
            .enumerate()
            .map(|(i, s)| ReplicaLoad {
                queued_tokens: s.queued_tokens(),
                busy_ns: s.free_ns.saturating_sub(now_ns),
                node: i % config.nodes,
            })
            .collect();
        let dims = p.batch.gemm_dims(tp);
        match router.route_among(dims, &loads, &eligible) {
            Some(decision) => {
                // The new placement may cross a node boundary the old
                // one did not (or vice versa): re-derive the penalty.
                let migration_ns =
                    migration_penalty_ns(config, dims, decision.replica % config.nodes);
                if let Some(target) = slots.get_mut(decision.replica) {
                    target.pending.push_back(PendingBatch {
                        routing: "re-routed",
                        migration_ns,
                        ..p
                    });
                    acct.batches_rerouted += 1;
                } else {
                    shed_pending(&p, acct);
                }
            }
            None => shed_pending(&p, acct),
        }
    }
}

/// Runs the serving loop to completion and returns the report. Fully
/// deterministic in the config: same config, bit-identical report —
/// including [`ServeConfig::exec`] thread counts, which only change
/// wall-clock.
pub fn serve(config: &ServeConfig) -> Result<ServeReport, FlashOverlapError> {
    Ok(serve_run(config, true)?.0)
}

/// [`serve`], additionally returning the merged tuned-plan snapshot
/// from every replica's cache — the `--plan-cache-out` payload.
pub fn serve_exporting(
    config: &ServeConfig,
) -> Result<(ServeReport, CacheSnapshot), FlashOverlapError> {
    serve_run(config, true)
}

/// Runs the same loop with untuned single-group (non-overlap) plans —
/// the baseline arm of [`serve_comparison`].
pub fn serve_baseline(config: &ServeConfig) -> Result<ServeReport, FlashOverlapError> {
    Ok(serve_run(config, false)?.0)
}

/// Serves the identical seeded traffic through both the tuned and the
/// non-overlap baseline arms.
pub fn serve_comparison(config: &ServeConfig) -> Result<ComparisonReport, FlashOverlapError> {
    Ok(ComparisonReport {
        tuned: serve(config)?,
        baseline: serve_baseline(config)?,
    })
}

/// Serves the identical seeded traffic through the configured
/// multi-replica arm, a single replica, and the multi-replica arm with
/// pipelining disabled — the replica-scaling evaluation.
pub fn serve_scaling(config: &ServeConfig) -> Result<ScalingReport, FlashOverlapError> {
    let multi = serve(config)?;
    let single = serve(&ServeConfig {
        replicas: 1,
        ..config.clone()
    })?;
    let unpipelined = serve(&ServeConfig {
        pipelined: false,
        ..config.clone()
    })?;
    Ok(ScalingReport {
        multi,
        single,
        unpipelined,
    })
}

/// Runs the serial and parallel engines over the same config and diffs
/// the rendered reports byte-for-byte — the validation mode from the
/// gpucachesim playbook. Returns the serial report plus whether the
/// parallel run (on `threads` worker threads) reproduced it exactly.
pub fn validate_parallel(
    config: &ServeConfig,
    threads: usize,
) -> Result<(ServeReport, bool), FlashOverlapError> {
    let serial = serve(&ServeConfig {
        exec: ExecMode::Serial,
        ..config.clone()
    })?;
    let parallel = serve(&ServeConfig {
        exec: ExecMode::Parallel(threads),
        ..config.clone()
    })?;
    let matched = serial.to_json().to_json_pretty() == parallel.to_json().to_json_pretty();
    Ok((serial, matched))
}

/// The serve loop's mirror of one replica. The dispatch queue stays
/// loop-side — routing reads queue depth synchronously — while all
/// execution state lives behind the sealed engine. `free_ns` is the
/// *last known* drain time: stale while a chain is in flight, and
/// refreshed by [`force_chain`] exactly at the scheduling points that
/// read it.
struct ReplicaSlot {
    /// Closed batches routed here, waiting for the replica to go idle.
    pending: VecDeque<PendingBatch>,
    /// Virtual time the last known chain drains (<= now means idle).
    free_ns: u64,
    /// Whether an `ExecuteChain` reply is still outstanding.
    in_flight: bool,
    /// Set when the replica is pulled from service: a chaos chain came
    /// back degraded (wedged under fault injection) or the serve loop
    /// blamed it for a stall. A quarantined replica receives no new
    /// batches and never dispatches again.
    quarantined: Option<&'static str>,
}

impl ReplicaSlot {
    fn new() -> Self {
        ReplicaSlot {
            pending: VecDeque::new(),
            free_ns: 0,
            in_flight: false,
            quarantined: None,
        }
    }

    fn queued_tokens(&self) -> u64 {
        self.pending
            .iter()
            .map(|p| u64::from(p.batch.padded_tokens))
            .sum()
    }
}

/// Blocks on replica `idx`'s outstanding chain reply (no-op when none
/// is outstanding), folding the result into the mirror and the
/// sequence-ordered effect merge. Returns the chain's degraded flag.
/// Execution errors land in `failures` instead of propagating, so the
/// caller can drain every engine and then surface the lowest-sequence
/// error — the one the serial engine would have hit first.
fn force_chain(
    engines: &[ReplicaEngine],
    slots: &mut [ReplicaSlot],
    completed: &mut Vec<(u64, ChainEffects)>,
    failures: &mut Vec<(u64, FlashOverlapError)>,
    idx: usize,
) -> bool {
    let Some(slot) = slots.get_mut(idx) else {
        return false;
    };
    if !slot.in_flight {
        return false;
    }
    slot.in_flight = false;
    let Some(engine) = engines.get(idx) else {
        return false;
    };
    match engine.recv() {
        EngineReply::Chain { seq, result } => match result {
            Ok(res) => {
                slot.free_ns = res.free_ns;
                completed.push((seq, res.effects));
                res.degraded
            }
            Err(e) => {
                failures.push((seq, e));
                false
            }
        },
        EngineReply::Final { .. } => {
            unreachable!("finalize reply received while a chain was outstanding")
        }
    }
}

/// Forces every outstanding chain. Lazily forced chains are always
/// clean (only chaos chains degrade, and chaos dispatches are forced
/// eagerly at dispatch time), so the degraded flag is asserted away.
fn force_all(
    engines: &[ReplicaEngine],
    slots: &mut [ReplicaSlot],
    completed: &mut Vec<(u64, ChainEffects)>,
    failures: &mut Vec<(u64, FlashOverlapError)>,
) {
    for idx in 0..slots.len() {
        let degraded = force_chain(engines, slots, completed, failures, idx);
        debug_assert!(!degraded, "lazily forced chain came back degraded");
    }
}

/// Drains every outstanding chain and takes the lowest-sequence failure
/// — the error the serial engine would have returned first. `None` when
/// every chain so far succeeded.
fn first_failure(
    engines: &[ReplicaEngine],
    slots: &mut [ReplicaSlot],
    completed: &mut Vec<(u64, ChainEffects)>,
    failures: &mut Vec<(u64, FlashOverlapError)>,
) -> Option<FlashOverlapError> {
    if failures.is_empty() {
        return None;
    }
    force_all(engines, slots, completed, failures);
    failures.sort_by_key(|&(seq, _)| seq);
    failures.drain(..).next().map(|(_, e)| e)
}

/// A replica's end-of-run state: the loop-side mirror joined with the
/// engine's finalize reply.
struct ReplicaView {
    free_ns: u64,
    quarantined: Option<&'static str>,
    fin: EngineFinal,
}

/// Drift accumulator key: `(m, n, k, group)`.
type DriftKey = (u32, u32, u32, usize);
/// Drift accumulator cell: `(samples, predicted_sum, measured_sum)`.
type DriftCell = (u64, f64, f64);

/// Mutable accounting threaded through chain execution.
#[derive(Default)]
struct Accounting {
    records: Vec<RequestRecord>,
    batch_records: Vec<BatchRecord>,
    signal_weighted_sum: f64,
    signal_samples: u64,
    /// Batches moved off a quarantined replica's dispatch queue.
    batches_rerouted: u64,
    /// Requests shed because their batch had no healthy replica left.
    quarantine_shed: u64,
    /// Batches executed off their home node (multi-node deployments).
    cross_node_batches: u64,
    /// Total inter-node migration charged to cross-node batches.
    migration_ns: u64,
    /// Inter-node bytes the hierarchical schedule moved for the run's
    /// tensor-parallel AllReduces (multi-node deployments).
    inter_bytes_hierarchical: u64,
    /// Inter-node bytes the flat rank-order ring would have moved for
    /// the same AllReduces.
    inter_bytes_flat: u64,
    /// Drift accumulator; BTreeMap so the report rows come out in
    /// deterministic shape-major order.
    drift: std::collections::BTreeMap<DriftKey, DriftCell>,
}

impl Accounting {
    /// Applies one executed chain's effects. Callers apply chains in
    /// dispatch-sequence order: the f64 accumulation order and the
    /// batch-record order are part of the byte-identical report
    /// contract.
    fn absorb_chain(&mut self, eff: ChainEffects) {
        let ChainEffects {
            records,
            batch_records,
            signal_weighted_sum,
            signal_samples,
            cross_node_batches,
            migration_ns,
            inter_bytes_hierarchical,
            inter_bytes_flat,
            drift,
        } = eff;
        self.records.extend(records);
        self.batch_records.extend(batch_records);
        self.signal_weighted_sum += signal_weighted_sum;
        self.signal_samples += signal_samples;
        self.cross_node_batches += cross_node_batches;
        self.migration_ns += migration_ns;
        self.inter_bytes_hierarchical += inter_bytes_hierarchical;
        self.inter_bytes_flat += inter_bytes_flat;
        if let Some((dims, predicted, measured)) = drift {
            self.absorb_drift(dims, &predicted, &measured);
        }
    }

    /// Folds one batch's measured group completions against the plan's
    /// [`LatencyPredictor`](flashoverlap::LatencyPredictor) predictions.
    fn absorb_drift(
        &mut self,
        dims: gpu_sim::gemm::GemmDims,
        predicted: &[sim::SimDuration],
        measured: &[sim::SimDuration],
    ) {
        if predicted.len() != measured.len() {
            return;
        }
        for (group, (p, m)) in predicted.iter().zip(measured).enumerate() {
            let cell = self
                .drift
                .entry((dims.m, dims.n, dims.k, group))
                .or_insert((0, 0.0, 0.0));
            cell.0 += 1;
            cell.1 += p.as_nanos() as f64;
            cell.2 += m.as_nanos() as f64;
        }
    }
}

fn serve_run(
    config: &ServeConfig,
    tuned: bool,
) -> Result<(ServeReport, CacheSnapshot), FlashOverlapError> {
    config.validate()?;
    let tp = config.system.n_gpus as u32;
    let arrivals = generate(&config.mix, config.process, config.requests, config.seed);
    let offered_span_ns = arrivals.last().map_or(0, |r| r.arrival_ns);

    let pool = EnginePool::new(config, tuned)?;
    let mut slots: Vec<ReplicaSlot> = (0..config.replicas).map(|_| ReplicaSlot::new()).collect();
    let mut router = Router::new(config.router);

    let mut queue: Vec<Request> = Vec::new();
    let mut next_arrival = 0usize;
    let mut now_ns = 0u64;
    let mut batch_id = 0u64;
    // Global dispatch sequence: assigned at ExecuteChain send time,
    // echoed on the reply, and the order chain effects merge in.
    let mut next_seq = 0u64;
    let mut acct = Accounting {
        records: Vec::with_capacity(arrivals.len()),
        ..Accounting::default()
    };
    let mut completed: Vec<(u64, ChainEffects)> = Vec::new();
    let mut failures: Vec<(u64, FlashOverlapError)> = Vec::new();
    let mut shapes = std::collections::HashSet::new();

    // Loop guard: each iteration either admits, dispatches, or advances
    // the clock to a strictly later event, so this bound is generous.
    let max_iterations = 20 * arrivals.len() + 100;
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        if iterations > max_iterations {
            // Drain in-flight chains so the accounting below matches
            // what the serial engine had executed by this point.
            force_all(&pool.engines, &mut slots, &mut completed, &mut failures);
            if let Some(err) =
                first_failure(&pool.engines, &mut slots, &mut completed, &mut failures)
            {
                return Err(err);
            }
            let pending: Vec<usize> = slots.iter().map(|s| s.pending.len()).collect();
            // Survive the wedge when possible: quarantine the blamed
            // replica and re-route its queue instead of aborting. Each
            // replica can be quarantined at most once and the last
            // healthy replica is never pulled, so the retries are
            // bounded by the replica count.
            if let Some(r) = wedged_replica(&pending) {
                let healthy = slots.iter().filter(|x| x.quarantined.is_none()).count();
                if healthy > 1 && slots.get(r).is_some_and(|x| x.quarantined.is_none()) {
                    quarantine_replica(
                        &mut slots,
                        r,
                        "serve loop stalled on this replica",
                        &mut router,
                        config,
                        now_ns,
                        &mut acct,
                    );
                    iterations = 0;
                    continue;
                }
            }
            let blame = match wedged_replica(&pending) {
                Some(r) => format!(
                    "; replica {r} is wedged with {} undrained batch(es)",
                    pending.get(r).copied().unwrap_or(0)
                ),
                None => String::new(),
            };
            // Fold executed chains in so the unresolved-request count
            // matches the serial engine's.
            completed.sort_by_key(|&(seq, _)| seq);
            for (_, eff) in completed.drain(..) {
                acct.absorb_chain(eff);
            }
            return Err(FlashOverlapError::Simulation(format!(
                "serve loop failed to converge after {max_iterations} iterations \
                 ({} requests unresolved{blame})",
                arrivals.len() - acct.records.len()
            )));
        }

        // Admission: everything that has arrived by `now` either joins
        // the bounded queue or is shed.
        while let Some(r) = arrivals.get(next_arrival) {
            if r.arrival_ns > now_ns {
                break;
            }
            if queue.len() >= config.queue_capacity {
                acct.records.push(RequestRecord {
                    id: r.id,
                    model: r.model.name,
                    tokens: r.tokens,
                    arrival_ns: r.arrival_ns,
                    disposition: Disposition::Shed,
                    batch: None,
                    latency_ns: None,
                    form_wait_ns: None,
                    queue_wait_ns: None,
                });
            } else {
                queue.push(*r);
            }
            next_arrival += 1;
        }

        // Batch closing: form every batch that is ready at `now` and
        // route it to a replica's dispatch queue.
        while let Some(head) = queue.first() {
            let head_deadline = head.arrival_ns.saturating_add(config.batch.max_wait_ns);
            let run_tokens: u32 = queue
                .iter()
                .take_while(|r| r.model == head.model)
                .map(|r| r.tokens)
                .sum();
            let ready = run_tokens >= config.batch.max_batch_tokens
                || now_ns >= head_deadline
                || next_arrival >= arrivals.len();
            if !ready {
                break;
            }
            let batch = form_batch(&mut queue, &config.batch, batch_id)
                .expect("queue is non-empty when a batch closes");
            batch_id += 1;
            let dims = batch.gemm_dims(tp);
            shapes.insert(dims);
            // A load-aware router compares busy times, so outstanding
            // chains must land before the snapshot. Round-robin is
            // load-blind and keeps routing while chains are in flight —
            // the free-running fast path.
            if config.router.reads_loads() {
                force_all(&pool.engines, &mut slots, &mut completed, &mut failures);
                if let Some(err) =
                    first_failure(&pool.engines, &mut slots, &mut completed, &mut failures)
                {
                    return Err(err);
                }
            }
            let eligible: Vec<bool> = slots.iter().map(|s| s.quarantined.is_none()).collect();
            let loads: Vec<ReplicaLoad> = slots
                .iter()
                .enumerate()
                .map(|(i, s)| ReplicaLoad {
                    queued_tokens: s.queued_tokens(),
                    busy_ns: s.free_ns.saturating_sub(now_ns),
                    node: i % config.nodes,
                })
                .collect();
            match router.route_among(dims, &loads, &eligible) {
                Some(decision) => {
                    let migration_ns =
                        migration_penalty_ns(config, dims, decision.replica % config.nodes);
                    if let Some(slot) = slots.get_mut(decision.replica) {
                        slot.pending.push_back(PendingBatch {
                            batch,
                            routing: decision.reason,
                            close_ns: now_ns,
                            migration_ns,
                        });
                    }
                }
                // No healthy replica left (unreachable while the
                // last-replica-in-service rule holds; kept as the
                // accounted fallback).
                None => shed_pending(
                    &PendingBatch {
                        batch,
                        routing: "no-healthy-replica",
                        close_ns: now_ns,
                        migration_ns: 0,
                    },
                    &mut acct,
                ),
            }
        }

        // Dispatch: every idle, in-service replica drains up to `chain`
        // pending batches as one (pipelined) simulation starting now —
        // chains form under chaos too; each batch just carries its own
        // fault plan into the resilient sequence.
        for idx in 0..slots.len() {
            if slots
                .get(idx)
                .is_none_or(|s| s.quarantined.is_some() || s.pending.is_empty())
            {
                continue;
            }
            // The dispatch decision reads this replica's drain time, so
            // an outstanding chain must land first. (Under chaos every
            // dispatch is forced eagerly below, so nothing is ever
            // outstanding here.)
            if slots.get(idx).is_some_and(|s| s.in_flight) {
                let degraded = force_chain(
                    &pool.engines,
                    &mut slots,
                    &mut completed,
                    &mut failures,
                    idx,
                );
                debug_assert!(!degraded, "lazily forced chain came back degraded");
                if let Some(err) =
                    first_failure(&pool.engines, &mut slots, &mut completed, &mut failures)
                {
                    return Err(err);
                }
            }
            if slots.get(idx).is_none_or(|s| s.free_ns > now_ns) {
                continue;
            }
            let chain: Vec<PendingBatch> = match slots.get_mut(idx) {
                Some(slot) => {
                    let take = slot.pending.len().min(config.chain);
                    slot.pending.drain(..take).collect()
                }
                None => continue,
            };
            if let Some(engine) = pool.engines.get(idx) {
                engine.send(EngineCommand::ExecuteChain {
                    seq: next_seq,
                    start_ns: now_ns,
                    chain,
                });
            }
            next_seq += 1;
            if let Some(slot) = slots.get_mut(idx) {
                slot.in_flight = true;
            }
            // Chaos chains are forced eagerly: the degrade → quarantine
            // → re-route decision must happen at the exact virtual
            // instant the serial engine makes it, before any later
            // routing or dispatch can observe different state.
            let degraded = if config.chaos {
                let d = force_chain(
                    &pool.engines,
                    &mut slots,
                    &mut completed,
                    &mut failures,
                    idx,
                );
                if let Some(err) =
                    first_failure(&pool.engines, &mut slots, &mut completed, &mut failures)
                {
                    return Err(err);
                }
                d
            } else {
                false
            };
            // A degraded chain marks the replica wedged. Quarantine it
            // and re-route its queue — unless it is the last replica in
            // service, which keeps limping rather than shedding all
            // remaining traffic.
            let healthy = slots.iter().filter(|s| s.quarantined.is_none()).count();
            if degraded && healthy > 1 {
                quarantine_replica(
                    &mut slots,
                    idx,
                    "wedged: chaos chain came back degraded",
                    &mut router,
                    config,
                    now_ns,
                    &mut acct,
                );
            }
        }

        // Termination: every request admitted, batched, and executed.
        // In-flight chains don't block termination — their effects are
        // already determined; the post-loop drain collects them.
        if next_arrival >= arrivals.len()
            && queue.is_empty()
            && slots.iter().all(|s| s.pending.is_empty())
        {
            break;
        }

        // Advance the clock to the next event: an arrival, the head
        // request's batching deadline, or a busy replica with queued
        // work going idle. A replica's drain time only matters when it
        // still has queued work, so only those chains are forced — a
        // replica executing with an empty queue keeps running
        // concurrently with the loop.
        for idx in 0..slots.len() {
            if slots
                .get(idx)
                .is_some_and(|s| !s.pending.is_empty() && s.in_flight)
            {
                let degraded = force_chain(
                    &pool.engines,
                    &mut slots,
                    &mut completed,
                    &mut failures,
                    idx,
                );
                debug_assert!(!degraded, "lazily forced chain came back degraded");
                if let Some(err) =
                    first_failure(&pool.engines, &mut slots, &mut completed, &mut failures)
                {
                    return Err(err);
                }
            }
        }
        let mut next_event = arrivals.get(next_arrival).map(|r| r.arrival_ns);
        if let Some(head) = queue.first() {
            let deadline = head.arrival_ns.saturating_add(config.batch.max_wait_ns);
            next_event = Some(next_event.map_or(deadline, |t| t.min(deadline)));
        }
        for slot in &slots {
            if !slot.pending.is_empty() {
                next_event = Some(next_event.map_or(slot.free_ns, |t| t.min(slot.free_ns)));
            }
        }
        match next_event {
            Some(t) => now_ns = now_ns.max(t),
            None => {
                debug_assert!(false, "no next event yet not terminated");
                break;
            }
        }
    }

    // Drain every outstanding chain — the makespan needs final drain
    // times — then surface any execution error the lazy schedule had
    // not yet observed.
    force_all(&pool.engines, &mut slots, &mut completed, &mut failures);
    if let Some(err) = first_failure(&pool.engines, &mut slots, &mut completed, &mut failures) {
        return Err(err);
    }

    // Finalize every engine. Commands are FIFO per engine and all
    // chains are drained, so the next reply on each channel is the
    // finalize result.
    for engine in &pool.engines {
        engine.send(EngineCommand::Finalize { seq: next_seq });
        next_seq += 1;
    }
    let mut views: Vec<ReplicaView> = Vec::with_capacity(slots.len());
    for (slot, engine) in slots.iter().zip(&pool.engines) {
        match engine.recv() {
            EngineReply::Final { result, .. } => views.push(ReplicaView {
                free_ns: slot.free_ns,
                quarantined: slot.quarantined,
                fin: result?,
            }),
            EngineReply::Chain { .. } => {
                unreachable!("chain reply after every chain was drained")
            }
        }
    }

    // The deterministic merge: apply every chain's accounting effects
    // in dispatch-sequence order — exactly the order the serial engine
    // produced them in, whatever thread computed them.
    completed.sort_by_key(|&(seq, _)| seq);
    for (_, eff) in completed.drain(..) {
        acct.absorb_chain(eff);
    }

    acct.records.sort_by_key(|r| r.id);
    debug_assert_eq!(
        acct.records.len(),
        arrivals.len(),
        "every request accounted for"
    );
    let makespan_ns = views.iter().map(|r| r.free_ns).max().unwrap_or(0);

    let fp = system_fingerprint(&config.system);
    let mut entries: Vec<PlanEntry> = views
        .iter()
        .flat_map(|r| r.fin.entries.iter().cloned())
        .collect();
    entries.sort_by_key(|e| (e.dims.m, e.dims.n, e.dims.k, format!("{}", e.primitive)));
    entries.dedup_by_key(|e| (e.dims, e.primitive));
    let snapshot = CacheSnapshot {
        system_fp: fp,
        entries,
    };

    let report = build_report(
        config,
        tuned,
        makespan_ns,
        offered_span_ns,
        acct,
        shapes.len() as u64,
        &views,
    );
    Ok((report, snapshot))
}

/// Serve-level critical-path attribution: the bottleneck replica's
/// timeline (its last chain ends at the makespan) is its executed
/// chains plus the gaps between them. Chain windows carry their own
/// attribution; a gap is charged [`Category::QueueWait`] where requests
/// were in the system still forming batches (the union of per-request
/// `[arrival, arrival + form_wait]` intervals) and [`Category::Idle`]
/// where the system was truly empty. Totals sum to `makespan_ns`.
fn serve_attribution(
    makespan_ns: u64,
    replicas: &[ReplicaView],
    records: &[RequestRecord],
) -> AttributionTotals {
    let mut totals = AttributionTotals::default();
    // Bottleneck replica: max free_ns, ties to the lowest id.
    let Some(bottleneck) = replicas
        .iter()
        .enumerate()
        .max_by_key(|(i, r)| (r.free_ns, usize::MAX - i))
        .map(|(_, r)| r)
    else {
        totals.add(Category::Idle, makespan_ns);
        return totals;
    };

    // Merged union of batch-forming intervals across all requests.
    let mut forming: Vec<(u64, u64)> = records
        .iter()
        .filter_map(|r| r.form_wait_ns.map(|w| (r.arrival_ns, r.arrival_ns + w)))
        .filter(|(lo, hi)| hi > lo)
        .collect();
    forming.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::new();
    for (lo, hi) in forming {
        match merged.last_mut() {
            Some((_, last_hi)) if lo <= *last_hi => *last_hi = (*last_hi).max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    let charge_gap = |totals: &mut AttributionTotals, lo: u64, hi: u64| {
        if hi <= lo {
            return;
        }
        let mut queue_wait = 0u64;
        for &(ilo, ihi) in &merged {
            let o_lo = ilo.max(lo);
            let o_hi = ihi.min(hi);
            if o_hi > o_lo {
                queue_wait += o_hi - o_lo;
            }
        }
        totals.add(Category::QueueWait, queue_wait);
        totals.add(Category::Idle, (hi - lo) - queue_wait);
    };

    let mut chains = bottleneck.fin.chain_log.clone();
    chains.sort_unstable_by_key(|&(start, _, _)| start);
    let mut cursor = 0u64;
    for (start, total, chain_totals) in &chains {
        charge_gap(&mut totals, cursor, *start);
        totals.merge(chain_totals);
        cursor = start + total;
    }
    charge_gap(&mut totals, cursor, makespan_ns);
    totals
}

fn build_report(
    config: &ServeConfig,
    tuned: bool,
    makespan_ns: u64,
    offered_span_ns: u64,
    acct: Accounting,
    distinct_shapes: u64,
    replicas: &[ReplicaView],
) -> ServeReport {
    let Accounting {
        records,
        batch_records,
        signal_weighted_sum,
        signal_samples,
        batches_rerouted,
        quarantine_shed,
        cross_node_batches,
        migration_ns,
        inter_bytes_hierarchical,
        inter_bytes_flat,
        drift,
    } = acct;
    let attribution = serve_attribution(makespan_ns, replicas, &records);
    let form_waits: Vec<u64> = records.iter().filter_map(|r| r.form_wait_ns).collect();
    let queue_waits: Vec<u64> = records.iter().filter_map(|r| r.queue_wait_ns).collect();
    let drift_rows: Vec<DriftRow> = drift
        .into_iter()
        .map(|((m, n, k, group), (samples, pred, meas))| DriftRow {
            m,
            n,
            k,
            group,
            samples,
            mean_predicted_ns: pred / samples as f64,
            mean_measured_ns: meas / samples as f64,
        })
        .collect();
    let offered = records.len() as u64;
    let shed = records
        .iter()
        .filter(|r| r.disposition == Disposition::Shed)
        .count() as u64;
    let completed = offered - shed;
    let count = |d: Disposition| records.iter().filter(|r| r.disposition == d).count() as u64;
    // The merged per-request completion stream across every replica:
    // percentiles are order statistics of the run, not averages of
    // per-replica summaries (a hot replica must drag the run's p95).
    let latencies: Vec<u64> = records.iter().filter_map(|r| r.latency_ns).collect();
    let slo_met = records
        .iter()
        .filter(|r| {
            r.disposition != Disposition::Shed
                && r.disposition != Disposition::Degraded
                && r.latency_ns.is_some_and(|l| l <= config.slo_ns)
        })
        .count() as u64;
    let makespan_s = makespan_ns as f64 / 1e9;
    let offered_span_s = offered_span_ns as f64 / 1e9;
    let total_batch_requests: u64 = batch_records.iter().map(|b| b.requests).sum();
    let total_batch_tokens: u64 = batch_records.iter().map(|b| u64::from(b.tokens)).sum();
    let n_batches = batch_records.len() as u64;
    let cache = replicas.iter().fold(CacheStats::default(), |sum, r| {
        sum.merge(&r.fin.cache_stats)
    });
    let replica_stats: Vec<ReplicaStats> = replicas
        .iter()
        .enumerate()
        .map(|(id, r)| ReplicaStats {
            id,
            node: id % config.nodes,
            batches: r.fin.batches,
            requests: r.fin.requests,
            tokens: r.fin.tokens,
            busy_ns: r.fin.busy_ns,
            chains: r.fin.chains,
            utilization: if makespan_ns > 0 {
                r.fin.busy_ns as f64 / makespan_ns as f64
            } else {
                0.0
            },
            quarantined: r.quarantined.is_some(),
            cache: r.fin.cache_stats,
        })
        .collect();
    // Node rollup: fold replica rows into their node; summing the node
    // rows reproduces the run totals (node → replica → total identity).
    let mut node_stats: Vec<NodeStats> = (0..config.nodes)
        .map(|node| NodeStats {
            node,
            ..NodeStats::default()
        })
        .collect();
    for r in &replica_stats {
        if let Some(n) = node_stats.get_mut(r.node) {
            n.replicas += 1;
            n.batches += r.batches;
            n.requests += r.requests;
            n.tokens += r.tokens;
            n.busy_ns += r.busy_ns;
        }
    }

    ServeReport {
        seed: config.seed,
        arrival: config.process.label(),
        offered,
        gpus: config.system.n_gpus,
        platform: config.system.arch.name,
        slo_ns: config.slo_ns,
        chaos: config.chaos,
        tuned,
        replicas: config.replicas,
        nodes: config.nodes,
        router: config.router.label(),
        pipelined: config.pipelined,
        wedge_replica: config.wedge_replica,
        replicas_quarantined: replicas.iter().filter(|r| r.quarantined.is_some()).count() as u64,
        batches_rerouted,
        quarantine_shed,
        cross_node_batches,
        migration_ns,
        inter_bytes_hierarchical,
        inter_bytes_flat,
        makespan_ns,
        completed,
        shed,
        clean: count(Disposition::Clean),
        recovered: count(Disposition::Recovered),
        degraded: count(Disposition::Degraded),
        slo_met,
        latency: percentiles(&latencies),
        mean_latency_ns: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
        },
        max_latency_ns: latencies.iter().copied().max().unwrap_or(0),
        goodput_rps: if makespan_s > 0.0 {
            slo_met as f64 / makespan_s
        } else {
            0.0
        },
        offered_rps: if offered_span_s > 0.0 {
            offered as f64 / offered_span_s
        } else {
            0.0
        },
        shed_rate: if offered > 0 {
            shed as f64 / offered as f64
        } else {
            0.0
        },
        batches: n_batches,
        mean_batch_requests: if n_batches > 0 {
            total_batch_requests as f64 / n_batches as f64
        } else {
            0.0
        },
        mean_batch_tokens: if n_batches > 0 {
            total_batch_tokens as f64 / n_batches as f64
        } else {
            0.0
        },
        distinct_shapes,
        cache,
        replica_stats,
        node_stats,
        mean_signal_ns: if signal_samples > 0 {
            signal_weighted_sum / signal_samples as f64
        } else {
            0.0
        },
        signal_samples,
        form_wait: percentiles(&form_waits),
        queue_wait: percentiles(&queue_waits),
        attribution,
        drift: drift_rows,
        records,
        batch_records,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn wedged_replica_blames_the_deepest_queue_tie_lowest_id() {
        assert_eq!(wedged_replica(&[0, 3, 1, 3]), Some(1));
        assert_eq!(wedged_replica(&[2]), Some(0));
        assert_eq!(wedged_replica(&[0, 0]), None);
        assert_eq!(wedged_replica(&[]), None);
    }

    #[test]
    fn zero_replicas_is_rejected() {
        let mut config = ServeConfig::new(SystemSpec::rtx4090(2));
        config.replicas = 0;
        assert!(matches!(
            serve(&config),
            Err(FlashOverlapError::BadInputs { .. })
        ));
    }

    #[test]
    fn mismatched_snapshot_fingerprint_is_rejected() {
        let mut config = ServeConfig::new(SystemSpec::rtx4090(2));
        config.preload = Some(CacheSnapshot {
            system_fp: 0xdead_beef,
            entries: Vec::new(),
        });
        let err = serve(&config).unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("00000000deadbeef"),
            "error must name the stale fingerprint: {msg}"
        );
    }

    #[test]
    fn parallel_mode_rejects_bad_configs_like_serial() {
        let mut config = ServeConfig::new(SystemSpec::rtx4090(2));
        config.replicas = 0;
        config.exec = ExecMode::Parallel(4);
        assert!(matches!(
            serve(&config),
            Err(FlashOverlapError::BadInputs { .. })
        ));
    }
}
