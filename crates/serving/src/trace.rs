//! Request-lifecycle Perfetto exporter for serve runs.
//!
//! Renders a [`ServeReport`] as a `{"traceEvents": [...]}` document
//! loadable in [ui.perfetto.dev](https://ui.perfetto.dev):
//!
//! - process 0 (`serving`) carries one async span (`ph: "b"` → `"e"`)
//!   per completed request, from arrival to completion, plus a
//!   queue-depth counter track stepping at every arrival (+1) and batch
//!   close (−1) — admission backpressure at a glance;
//! - one process per replica with a duration (`ph: "X"`) slice per
//!   executed batch, carrying its routing decision, outcome, and
//!   queue wait in `args`;
//! - a flow arrow (`ph: "s"` → `"f"`) per request from its batch-close
//!   instant on the serving track into the batch slice that executed
//!   it, so a slow request traces visually to the replica and batch
//!   that served it.
//!
//! Timestamps are microseconds (the trace-event format's unit). The
//! export is deterministic: events are emitted in fixed id order.

use telemetry::json::Value;

use crate::report::{BatchRecord, ServeReport};

fn event(ph: &str, name: &str, pid: usize, tid: usize, ts: f64) -> Vec<(&'static str, Value)> {
    vec![
        ("name", Value::str(name)),
        ("ph", Value::str(ph)),
        ("pid", Value::num(pid as f64)),
        ("tid", Value::num(tid as f64)),
        ("ts", Value::num(ts)),
    ]
}

fn named_meta(kind: &str, pid: usize, tid: usize, name: &str) -> Value {
    let mut e = event("M", kind, pid, tid, 0.0);
    e.push(("args", Value::obj(vec![("name", Value::str(name))])));
    Value::obj(e)
}

/// Builds the request-lifecycle trace document for a serve run.
pub fn serve_trace(report: &ServeReport) -> Value {
    let mut events: Vec<Value> = Vec::new();

    events.push(named_meta("process_name", 0, 0, "serving"));
    events.push(named_meta("thread_name", 0, 0, "requests"));
    for r in &report.replica_stats {
        let pid = r.id + 1;
        events.push(named_meta(
            "process_name",
            pid,
            0,
            &format!("replica {}", r.id),
        ));
        events.push(named_meta("thread_name", pid, 0, "batches"));
    }

    // Async request spans: arrival → completion on the serving track.
    for r in &report.records {
        let Some(latency) = r.latency_ns else {
            continue;
        };
        let id = (r.id + 1) as f64;
        let mut b = event("b", r.model, 0, 0, r.arrival_ns as f64 / 1e3);
        b.push(("cat", Value::str("request")));
        b.push(("id", Value::num(id)));
        b.push((
            "args",
            Value::obj(vec![
                ("tokens", Value::num(f64::from(r.tokens))),
                ("disposition", Value::str(r.disposition.label())),
                (
                    "batch",
                    r.batch.map_or(Value::Null, |b| Value::num(b as f64)),
                ),
            ]),
        ));
        events.push(Value::obj(b));
        let mut e = event("e", r.model, 0, 0, (r.arrival_ns + latency) as f64 / 1e3);
        e.push(("cat", Value::str("request")));
        e.push(("id", Value::num(id)));
        events.push(Value::obj(e));
    }

    // Batch slices on their replicas' tracks.
    for b in &report.batch_records {
        events.push(batch_slice(b));
    }

    // Flow arrows: batch close on the serving track → the executing
    // batch slice. One arrow per request keeps slow requests traceable
    // to the replica that served them.
    for r in &report.records {
        let (Some(form_wait), Some(batch_id)) = (r.form_wait_ns, r.batch) else {
            continue;
        };
        let Some(batch) = report.batch_records.iter().find(|b| b.id == batch_id) else {
            continue;
        };
        let id = (r.id + 1) as f64;
        let close_us = (r.arrival_ns + form_wait) as f64 / 1e3;
        let mut s = event("s", "dispatch", 0, 0, close_us);
        s.push(("cat", Value::str("dispatch")));
        s.push(("id", Value::num(id)));
        events.push(Value::obj(s));
        let mut f = event(
            "f",
            "dispatch",
            batch.replica + 1,
            0,
            batch.start_ns as f64 / 1e3,
        );
        f.push(("cat", Value::str("dispatch")));
        f.push(("id", Value::num(id)));
        f.push(("bp", Value::str("e")));
        events.push(Value::obj(f));
    }

    // Queue-depth counter: +1 at each admitted arrival, −1 when the
    // request's batch closes. Edges are sorted, then coalesced so every
    // emitted sample is the exact depth after that instant.
    let mut edges: Vec<(u64, i64)> = Vec::new();
    for r in &report.records {
        if let Some(form_wait) = r.form_wait_ns {
            edges.push((r.arrival_ns, 1));
            edges.push((r.arrival_ns + form_wait, -1));
        }
    }
    edges.sort_unstable();
    let mut depth = 0i64;
    let mut i = 0;
    while i < edges.len() {
        let at = edges[i].0;
        while let Some(&(t, delta)) = edges.get(i) {
            if t != at {
                break;
            }
            depth += delta;
            i += 1;
        }
        let mut e = event("C", "queue depth", 0, 0, at as f64 / 1e3);
        e.push((
            "args",
            Value::obj(vec![("requests", Value::num(depth.max(0) as f64))]),
        ));
        events.push(Value::obj(e));
    }

    Value::obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", Value::str("ns")),
    ])
}

fn batch_slice(b: &BatchRecord) -> Value {
    let mut e = event(
        "X",
        &format!("batch {}", b.id),
        b.replica + 1,
        0,
        b.start_ns as f64 / 1e3,
    );
    e.push(("dur", Value::num(b.exec_ns as f64 / 1e3)));
    e.push(("cat", Value::str("batch")));
    e.push((
        "args",
        Value::obj(vec![
            ("model", Value::str(b.model)),
            ("requests", Value::num(b.requests as f64)),
            ("tokens", Value::num(f64::from(b.tokens))),
            ("padded_tokens", Value::num(f64::from(b.padded_tokens))),
            ("outcome", Value::str(b.outcome)),
            ("routing", Value::str(b.routing)),
            ("cache_hit", Value::Bool(b.cache_hit)),
            ("chain_len", Value::num(b.chain_len as f64)),
            ("queue_wait_ns", Value::num(b.queue_wait_ns as f64)),
        ]),
    ));
    Value::obj(e)
}

/// Serializes the serve trace compactly.
pub fn serve_trace_string(report: &ServeReport) -> String {
    serve_trace(report).to_json()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::indexing_slicing)]
mod tests {
    use super::*;
    use flashoverlap::SystemSpec;

    use crate::server::{serve, ServeConfig};

    #[test]
    fn serve_trace_links_requests_to_batches_and_balances_the_queue() {
        let mut cfg = ServeConfig::new(SystemSpec::rtx4090(2));
        cfg.requests = 40;
        cfg.seed = 3;
        let report = serve(&cfg).unwrap();
        let doc = serve_trace(&report);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();

        let count = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some(ph))
                .count()
        };
        let completed = report
            .records
            .iter()
            .filter(|r| r.latency_ns.is_some())
            .count();
        // One async begin/end pair per completed request.
        assert_eq!(count("b"), completed);
        assert_eq!(count("e"), completed);
        // One slice per batch; one flow pair per completed request.
        assert_eq!(count("X"), report.batch_records.len());
        assert_eq!(count("s"), completed);
        assert_eq!(count("f"), completed);

        // Every flow lands on a replica pid with a slice starting there.
        for f in events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("f"))
        {
            let pid = f.get("pid").unwrap().as_f64().unwrap();
            let ts = f.get("ts").unwrap().as_f64().unwrap();
            assert!(events.iter().any(|e| {
                e.get("ph").and_then(Value::as_str) == Some("X")
                    && e.get("pid").unwrap().as_f64() == Some(pid)
                    && e.get("ts").unwrap().as_f64() == Some(ts)
            }));
        }

        // The queue-depth counter returns to zero at the end.
        let depths: Vec<f64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("requests")
                    .unwrap()
                    .as_f64()
                    .unwrap()
            })
            .collect();
        assert!(!depths.is_empty());
        assert!(depths.iter().any(|&d| d > 0.0), "queue must fill");
        assert_eq!(*depths.last().unwrap(), 0.0, "queue must drain");
    }
}
