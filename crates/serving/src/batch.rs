//! Continuous batching: folding queued requests into GEMM-shaped work.
//!
//! The batch former implements the standard continuous-batching
//! trade-off: wait to accumulate tokens (bigger, more efficient GEMMs)
//! versus dispatch now (lower queueing latency). A batch closes when it
//! reaches [`BatchConfig::max_batch_tokens`] or when the head request
//! has waited [`BatchConfig::max_wait_ns`]. Batches are same-model and
//! FIFO — the head of the queue fixes the model, and only requests for
//! that model join (head-of-line batching, as in single-model serving
//! engines replicated per model).
//!
//! A closed batch's token total is padded up to the token bucket and
//! mapped to the model's tensor-parallel MLP down-projection shape
//! `(M = padded tokens, N = hidden, K = intermediate / tp)` — the
//! GEMM→AllReduce pair FlashOverlap targets in TP inference.

use gpu_sim::gemm::GemmDims;
use workloads::{quantize_tokens, ModelSpec};

use crate::traffic::Request;

/// Batch-former policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Close the batch once accumulated tokens reach this (a single
    /// larger request still forms its own batch).
    pub max_batch_tokens: u32,
    /// Close the batch once the head request has queued this long.
    pub max_wait_ns: u64,
    /// Token-bucket granularity: batch `M` is padded up to a multiple
    /// of this, bounding distinct GEMM shapes (and driving plan reuse).
    pub token_bucket: u32,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            // Sized for prefill-scale traffic: a full batch reaches the
            // multi-wave M where partition tuning beats non-overlap.
            max_batch_tokens: 2048,
            max_wait_ns: 2_000_000,
            token_bucket: 256,
        }
    }
}

/// A closed batch ready for execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Monotonic batch id in dispatch order.
    pub id: u64,
    /// Model every member targets.
    pub model: ModelSpec,
    /// Member requests, FIFO.
    pub requests: Vec<Request>,
    /// Sum of member token counts (before padding).
    pub tokens: u32,
    /// `M` after token-bucket padding.
    pub padded_tokens: u32,
}

impl Batch {
    /// The GEMM shape this batch executes: the TP MLP down-projection
    /// `(padded_tokens, hidden, intermediate / tp)`.
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero or does not divide the model's
    /// intermediate size (the server validates this at startup).
    pub fn gemm_dims(&self, tp: u32) -> GemmDims {
        assert!(tp > 0, "tensor-parallel degree must be positive");
        assert_eq!(
            self.model.intermediate % tp,
            0,
            "{}: intermediate {} not divisible by tp {}",
            self.model.name,
            self.model.intermediate,
            tp
        );
        GemmDims::new(
            self.padded_tokens,
            self.model.hidden,
            self.model.intermediate / tp,
        )
    }
}

/// Pops the next batch off the FIFO `queue` (same-model, FIFO, bounded
/// by `max_batch_tokens`) and stamps it with `id`. The caller decides
/// *when* a batch should close; this only decides *what* goes in it.
/// Returns `None` on an empty queue.
pub fn form_batch(queue: &mut Vec<Request>, config: &BatchConfig, id: u64) -> Option<Batch> {
    let head = queue.first()?;
    let model = head.model;
    let mut tokens = 0u32;
    let mut take = 0usize;
    for r in queue.iter() {
        if r.model != model {
            break;
        }
        // Always take the head, even when it alone exceeds the budget.
        if take > 0 && tokens + r.tokens > config.max_batch_tokens {
            break;
        }
        tokens += r.tokens;
        take += 1;
        if tokens >= config.max_batch_tokens {
            break;
        }
    }
    let requests: Vec<Request> = queue.drain(..take).collect();
    Some(Batch {
        id,
        model,
        requests,
        tokens,
        padded_tokens: quantize_tokens(tokens, config.token_bucket),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::indexing_slicing)]
mod tests {
    use super::*;
    use workloads::models::{DEEPSEEK_MOE_EXPERT, LLAMA3_8B};

    fn req(id: u64, model: ModelSpec, tokens: u32) -> Request {
        Request {
            id,
            arrival_ns: id * 1000,
            model,
            tokens,
        }
    }

    #[test]
    fn batches_are_same_model_fifo_and_token_bounded() {
        let cfg = BatchConfig {
            max_batch_tokens: 200,
            token_bucket: 64,
            ..BatchConfig::default()
        };
        let mut queue = vec![
            req(0, DEEPSEEK_MOE_EXPERT, 100),
            req(1, DEEPSEEK_MOE_EXPERT, 90),
            req(2, DEEPSEEK_MOE_EXPERT, 80),
            req(3, LLAMA3_8B, 10),
        ];
        let b = form_batch(&mut queue, &cfg, 0).unwrap();
        // 100 + 90 < 200 so both join; adding 80 would exceed the cap.
        assert_eq!(b.requests.len(), 2);
        assert_eq!(b.tokens, 190);
        assert_eq!(b.padded_tokens, 192);
        assert_eq!(queue.len(), 2, "rest stays queued");
        assert_eq!(queue[0].id, 2);
    }

    #[test]
    fn model_boundary_closes_the_batch() {
        let cfg = BatchConfig::default();
        let mut queue = vec![
            req(0, LLAMA3_8B, 50),
            req(1, DEEPSEEK_MOE_EXPERT, 50),
            req(2, LLAMA3_8B, 50),
        ];
        let b = form_batch(&mut queue, &cfg, 0).unwrap();
        assert_eq!(b.model, LLAMA3_8B);
        assert_eq!(b.requests.len(), 1, "different model blocks the batch");
    }

    #[test]
    fn oversize_head_forms_its_own_batch() {
        let cfg = BatchConfig {
            max_batch_tokens: 64,
            ..BatchConfig::default()
        };
        let mut queue = vec![req(0, LLAMA3_8B, 500), req(1, LLAMA3_8B, 10)];
        let b = form_batch(&mut queue, &cfg, 0).unwrap();
        assert_eq!(b.requests.len(), 1);
        assert_eq!(b.tokens, 500);
    }

    #[test]
    fn dims_map_to_tp_down_projection() {
        let mut queue = vec![req(0, DEEPSEEK_MOE_EXPERT, 100)];
        let b = form_batch(&mut queue, &BatchConfig::default(), 0).unwrap();
        let dims = b.gemm_dims(2);
        assert_eq!(
            (dims.m, dims.n, dims.k),
            (
                256,
                DEEPSEEK_MOE_EXPERT.hidden,
                DEEPSEEK_MOE_EXPERT.intermediate / 2
            )
        );
    }

    #[test]
    fn empty_queue_forms_nothing() {
        assert!(form_batch(&mut Vec::new(), &BatchConfig::default(), 0).is_none());
    }
}
