//! Serve-run accounting: per-request dispositions, SLO statistics, and
//! the JSON report.
//!
//! Every request that enters the generator leaves exactly one
//! [`RequestRecord`] — completed (clean / recovered / degraded under
//! chaos) or shed at admission. The aggregate [`ServeReport`] carries
//! latency percentiles (via [`telemetry::metrics::percentiles`]),
//! goodput, shed rate, plan-cache counters, and signaling cost, and
//! serializes through the vendored `telemetry::json` module so `--seed`
//! determinism is checkable byte-for-byte on the JSON output.

use telemetry::attribution::{AttributionTotals, Category};
use telemetry::json::Value;
use telemetry::Percentiles;

use crate::cache::CacheStats;

/// How a request left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Completed with no recovery intervention.
    Clean,
    /// Completed after watchdog-driven recovery (bit-exact result).
    Recovered,
    /// Completed via the degraded non-overlap fallback.
    Degraded,
    /// Rejected at admission (queue full).
    Shed,
}

impl Disposition {
    /// Stable label used in JSON and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            Disposition::Clean => "clean",
            Disposition::Recovered => "recovered",
            Disposition::Degraded => "degraded",
            Disposition::Shed => "shed",
        }
    }

    /// Maps a [`ResilientOutcome`](flashoverlap::ResilientOutcome) label.
    pub fn from_outcome_label(label: &str) -> Disposition {
        match label {
            "recovered" => Disposition::Recovered,
            "degraded" => Disposition::Degraded,
            _ => Disposition::Clean,
        }
    }
}

/// Final accounting for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Request id (arrival order).
    pub id: u64,
    /// Model name.
    pub model: &'static str,
    /// Token count.
    pub tokens: u32,
    /// Arrival time.
    pub arrival_ns: u64,
    /// How the request left the system.
    pub disposition: Disposition,
    /// Batch that executed it (`None` when shed at admission; a request
    /// shed because its batch found no healthy replica keeps its batch
    /// id).
    pub batch: Option<u64>,
    /// Enqueue→complete latency (`None` when shed).
    pub latency_ns: Option<u64>,
    /// Arrival→batch-close wait — the batch-forming share of the
    /// latency (`None` when shed).
    pub form_wait_ns: Option<u64>,
    /// Batch-close→dispatch wait — time the closed batch sat queued
    /// behind the replica's earlier work (`None` when shed).
    pub queue_wait_ns: Option<u64>,
}

/// Accounting for one executed batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// Batch id (dispatch order).
    pub id: u64,
    /// Model the batch ran.
    pub model: &'static str,
    /// Member request count.
    pub requests: u64,
    /// Raw token total.
    pub tokens: u32,
    /// Padded `M` actually executed.
    pub padded_tokens: u32,
    /// Dispatch time.
    pub start_ns: u64,
    /// Executed operator latency. In a pipelined chain this is the
    /// batch's incremental completion delta, so per-replica sums stay
    /// additive even when batches overlap.
    pub exec_ns: u64,
    /// Whether the plan lookup hit the cache.
    pub cache_hit: bool,
    /// Resilient outcome label ("clean" outside chaos mode).
    pub outcome: &'static str,
    /// Replica that executed the batch.
    pub replica: usize,
    /// Node the executing replica lives on (0 on single-node
    /// deployments).
    pub node: usize,
    /// Inter-node migration charged before execution — non-zero only
    /// when the batch ran off its home node on a multi-node deployment.
    pub migration_ns: u64,
    /// Router decision label ("round-robin", "least-loaded",
    /// "affinity-hit", "affinity-new").
    pub routing: &'static str,
    /// Batches executed in the same chain as this one (1 = alone).
    pub chain_len: u64,
    /// When the batch closed and was routed.
    pub close_ns: u64,
    /// Close→dispatch wait behind the replica's earlier chains.
    pub queue_wait_ns: u64,
    /// Critical-path attribution of this batch's execution window,
    /// clipped from its chain's attribution; totals sum to `exec_ns`.
    pub attribution: Option<AttributionTotals>,
}

/// Per-replica accounting over a serve run. Sums across replicas equal
/// the run totals (the CI smoke gate checks this invariant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaStats {
    /// Replica index.
    pub id: usize,
    /// Node the replica is placed on (replica id modulo the node
    /// count; 0 on single-node deployments).
    pub node: usize,
    /// Batches this replica executed.
    pub batches: u64,
    /// Requests completed on this replica.
    pub requests: u64,
    /// Unpadded tokens executed.
    pub tokens: u64,
    /// Virtual time the replica spent executing chains.
    pub busy_ns: u64,
    /// Chains dispatched (a chain is 1..=chain batches pipelined
    /// back-to-back through one simulation).
    pub chains: u64,
    /// `busy_ns` over the run makespan.
    pub utilization: f64,
    /// Whether the replica ended the run quarantined (a chaos chain
    /// came back degraded, or the serve loop blamed it for a stall);
    /// its queued batches were re-routed or shed.
    pub quarantined: bool,
    /// This replica's plan-cache counters.
    pub cache: CacheStats,
}

/// Per-node rollup of replica accounting on a multi-node deployment.
/// Each row sums the node's replicas; summing the rows reproduces the
/// run totals, so requests/tokens/busy time roll up node → replica →
/// total exactly (the CI topology gate checks this identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeStats {
    /// Node index.
    pub node: usize,
    /// Replicas placed on the node.
    pub replicas: u64,
    /// Batches the node's replicas executed.
    pub batches: u64,
    /// Requests completed on the node.
    pub requests: u64,
    /// Unpadded tokens executed on the node.
    pub tokens: u64,
    /// Virtual time the node's replicas spent executing chains
    /// (including inter-node migration they absorbed).
    pub busy_ns: u64,
}

/// Measured-vs-predicted collective-completion drift for one
/// `(GEMM shape, wave group)` pair, aggregated over a serve run — the
/// signal the ROADMAP's online-autotuning item needs to decide when a
/// cached plan has gone stale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftRow {
    /// GEMM rows.
    pub m: u32,
    /// GEMM columns.
    pub n: u32,
    /// GEMM reduction depth.
    pub k: u32,
    /// Wave-group index within the plan.
    pub group: usize,
    /// Executions sampled (chain-leading and chaos batches, where the
    /// measured completion is not skewed by pipelining).
    pub samples: u64,
    /// Mean [`LatencyPredictor`](flashoverlap::LatencyPredictor)
    /// completion prediction.
    pub mean_predicted_ns: f64,
    /// Mean measured completion.
    pub mean_measured_ns: f64,
}

impl DriftRow {
    /// Relative drift: `(measured − predicted) / predicted` (zero when
    /// the prediction is zero). Positive means the fabric/occupancy ran
    /// slower than the model.
    pub fn drift(&self) -> f64 {
        if self.mean_predicted_ns > 0.0 {
            (self.mean_measured_ns - self.mean_predicted_ns) / self.mean_predicted_ns
        } else {
            0.0
        }
    }
}

/// Aggregate report of one serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Seed the run was generated from.
    pub seed: u64,
    /// Arrival-process label.
    pub arrival: &'static str,
    /// Requests offered.
    pub offered: u64,
    /// GPUs in the serving group.
    pub gpus: usize,
    /// GPU platform name.
    pub platform: &'static str,
    /// Latency SLO.
    pub slo_ns: u64,
    /// Whether fault injection was armed.
    pub chaos: bool,
    /// Whether plans were tuned (false = non-overlap baseline arm).
    pub tuned: bool,
    /// Replica groups serving the traffic.
    pub replicas: usize,
    /// Nodes the replicas are placed across (1 = single-node).
    pub nodes: usize,
    /// Router policy label.
    pub router: &'static str,
    /// Whether chains executed with cross-batch pipelining (false =
    /// serial barrier between consecutive batches).
    pub pipelined: bool,
    /// Replica forced to wedge deterministically (`--wedge-replica`).
    pub wedge_replica: Option<usize>,
    /// Replicas quarantined during the run (wedged under chaos or
    /// blamed for a serve-loop stall).
    pub replicas_quarantined: u64,
    /// Batches re-routed off a quarantined replica's dispatch queue to
    /// a healthy one.
    pub batches_rerouted: u64,
    /// Requests shed because their batch had no healthy replica left
    /// (counted inside `shed` as well).
    pub quarantine_shed: u64,
    /// Batches executed off their home node (0 on single-node runs).
    pub cross_node_batches: u64,
    /// Total inter-node migration time charged to cross-node batches.
    pub migration_ns: u64,
    /// Inter-node bytes the hierarchical collective schedule moved for
    /// the run's tensor-parallel AllReduces (0 on single-node runs).
    pub inter_bytes_hierarchical: u64,
    /// Inter-node bytes the flat rank-order ring would have moved for
    /// the same AllReduces — the baseline hierarchical scheduling is
    /// measured against (0 on single-node runs).
    pub inter_bytes_flat: u64,
    /// Virtual time from first arrival epoch to last completion.
    pub makespan_ns: u64,
    /// Requests completed (any disposition but shed).
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Completed cleanly.
    pub clean: u64,
    /// Completed after recovery.
    pub recovered: u64,
    /// Completed degraded.
    pub degraded: u64,
    /// Completed within the SLO, not degraded.
    pub slo_met: u64,
    /// Latency percentiles over completed requests.
    pub latency: Option<Percentiles>,
    /// Mean completed-request latency.
    pub mean_latency_ns: f64,
    /// Worst completed-request latency.
    pub max_latency_ns: u64,
    /// SLO-met requests per virtual second.
    pub goodput_rps: f64,
    /// Offered arrival rate over the trace span.
    pub offered_rps: f64,
    /// Shed fraction of offered requests.
    pub shed_rate: f64,
    /// Batches executed.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch_requests: f64,
    /// Mean (unpadded) tokens per batch.
    pub mean_batch_tokens: f64,
    /// Distinct GEMM shapes executed.
    pub distinct_shapes: u64,
    /// Plan-cache counters, summed over replicas.
    pub cache: CacheStats,
    /// Per-replica accounting, id order.
    pub replica_stats: Vec<ReplicaStats>,
    /// Per-node rollup of `replica_stats`, node order.
    pub node_stats: Vec<NodeStats>,
    /// Mean signal latency across batch executions (signaling cost of
    /// §4, aggregated over the run).
    pub mean_signal_ns: f64,
    /// Signal-latency samples behind the mean.
    pub signal_samples: u64,
    /// Batch-forming wait percentiles (arrival → batch close) over
    /// completed requests.
    pub form_wait: Option<Percentiles>,
    /// Dispatch-queue wait percentiles (batch close → execution start)
    /// over completed requests.
    pub queue_wait: Option<Percentiles>,
    /// Critical-path attribution of the bottleneck replica's timeline:
    /// per-category totals that sum exactly to `makespan_ns` (tuner
    /// time is zero by construction — plan search is analytic and costs
    /// no virtual time; `cache.tune_evaluated` counts the searches).
    pub attribution: AttributionTotals,
    /// Per-(shape, group) measured-vs-predicted drift rows, shape-major
    /// order.
    pub drift: Vec<DriftRow>,
    /// Per-request accounting, id order.
    pub records: Vec<RequestRecord>,
    /// Per-batch accounting, dispatch order.
    pub batch_records: Vec<BatchRecord>,
}

impl ServeReport {
    /// Serializes to the vendored JSON model. Deterministic: field
    /// order is fixed and no map iteration is involved.
    pub fn to_json(&self) -> Value {
        let latency = match &self.latency {
            Some(p) => Value::obj(vec![
                ("p50_ns", Value::num(p.p50 as f64)),
                ("p95_ns", Value::num(p.p95 as f64)),
                ("p99_ns", Value::num(p.p99 as f64)),
                ("mean_ns", Value::num(self.mean_latency_ns)),
                ("max_ns", Value::num(self.max_latency_ns as f64)),
            ]),
            None => Value::Null,
        };
        Value::obj(vec![
            ("kind", Value::str("flashoverlap-serve")),
            ("seed", Value::num(self.seed as f64)),
            ("arrival", Value::str(self.arrival)),
            ("offered", Value::num(self.offered as f64)),
            ("gpus", Value::num(self.gpus as f64)),
            ("platform", Value::str(self.platform)),
            ("slo_ms", Value::num(self.slo_ns as f64 / 1e6)),
            ("chaos", Value::Bool(self.chaos)),
            ("tuned", Value::Bool(self.tuned)),
            ("replicas", Value::num(self.replicas as f64)),
            ("nodes", Value::num(self.nodes as f64)),
            ("router", Value::str(self.router)),
            ("pipelined", Value::Bool(self.pipelined)),
            (
                "wedge_replica",
                self.wedge_replica
                    .map_or(Value::Null, |r| Value::num(r as f64)),
            ),
            ("makespan_ns", Value::num(self.makespan_ns as f64)),
            (
                "requests",
                Value::obj(vec![
                    ("completed", Value::num(self.completed as f64)),
                    ("shed", Value::num(self.shed as f64)),
                    ("clean", Value::num(self.clean as f64)),
                    ("recovered", Value::num(self.recovered as f64)),
                    ("degraded", Value::num(self.degraded as f64)),
                    ("slo_met", Value::num(self.slo_met as f64)),
                ]),
            ),
            ("latency", latency),
            (
                "throughput",
                Value::obj(vec![
                    ("goodput_rps", Value::num(self.goodput_rps)),
                    ("offered_rps", Value::num(self.offered_rps)),
                    ("shed_rate", Value::num(self.shed_rate)),
                ]),
            ),
            (
                "batches",
                Value::obj(vec![
                    ("executed", Value::num(self.batches as f64)),
                    ("mean_requests", Value::num(self.mean_batch_requests)),
                    ("mean_tokens", Value::num(self.mean_batch_tokens)),
                    ("distinct_shapes", Value::num(self.distinct_shapes as f64)),
                ]),
            ),
            (
                "plan_cache",
                Value::obj(vec![
                    ("hits", Value::num(self.cache.hits as f64)),
                    ("misses", Value::num(self.cache.misses as f64)),
                    ("evictions", Value::num(self.cache.evictions as f64)),
                    ("hit_rate", Value::num(self.cache.hit_rate())),
                    (
                        "tune_evaluated",
                        Value::num(self.cache.tune_evaluated as f64),
                    ),
                    ("preloaded", Value::num(self.cache.preloaded as f64)),
                ]),
            ),
            (
                "resilience",
                Value::obj(vec![
                    (
                        "replicas_quarantined",
                        Value::num(self.replicas_quarantined as f64),
                    ),
                    ("batches_rerouted", Value::num(self.batches_rerouted as f64)),
                    ("quarantine_shed", Value::num(self.quarantine_shed as f64)),
                    ("recovered", Value::num(self.recovered as f64)),
                    ("degraded", Value::num(self.degraded as f64)),
                ]),
            ),
            (
                "cross_node",
                Value::obj(vec![
                    ("batches", Value::num(self.cross_node_batches as f64)),
                    ("migration_ns", Value::num(self.migration_ns as f64)),
                    (
                        "inter_bytes",
                        Value::obj(vec![
                            (
                                "hierarchical",
                                Value::num(self.inter_bytes_hierarchical as f64),
                            ),
                            ("flat_baseline", Value::num(self.inter_bytes_flat as f64)),
                        ]),
                    ),
                ]),
            ),
            (
                "per_replica",
                Value::Arr(self.replica_stats.iter().map(replica_json).collect()),
            ),
            (
                "per_node",
                Value::Arr(self.node_stats.iter().map(node_json).collect()),
            ),
            (
                "signaling",
                Value::obj(vec![
                    ("mean_signal_ns", Value::num(self.mean_signal_ns)),
                    ("samples", Value::num(self.signal_samples as f64)),
                ]),
            ),
            (
                "scheduling",
                Value::obj(vec![
                    ("form_wait", wait_json(&self.form_wait)),
                    ("queue_wait", wait_json(&self.queue_wait)),
                ]),
            ),
            (
                "attribution",
                Value::obj(vec![
                    ("makespan_ns", Value::num(self.makespan_ns as f64)),
                    (
                        "identity_holds",
                        Value::Bool(self.attribution.sum() == self.makespan_ns),
                    ),
                    ("categories", self.attribution.to_json()),
                    ("shares", self.attribution.shares_json(self.makespan_ns)),
                ]),
            ),
            (
                "predictor_drift",
                Value::Arr(self.drift.iter().map(drift_json).collect()),
            ),
            (
                "per_request",
                Value::Arr(self.records.iter().map(request_json).collect()),
            ),
            (
                "per_batch",
                Value::Arr(self.batch_records.iter().map(batch_json).collect()),
            ),
        ])
    }

    /// Short human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serve: {} offered over {:.2} ms virtual ({} {}, seed {})\n",
            self.offered,
            self.makespan_ns as f64 / 1e6,
            self.arrival,
            if self.chaos {
                "with chaos"
            } else {
                "fault-free"
            },
            self.seed,
        ));
        out.push_str(&format!(
            "  {} replica(s), {} router, {}\n",
            self.replicas,
            self.router,
            if self.pipelined {
                "cross-batch pipelining"
            } else {
                "serial chains"
            },
        ));
        if self.nodes > 1 {
            out.push_str(&format!(
                "  {} nodes: {} cross-node batch(es), {:.1} us total inter-node migration\n",
                self.nodes,
                self.cross_node_batches,
                self.migration_ns as f64 / 1e3,
            ));
            out.push_str(&format!(
                "  collectives: {:.1} MB inter-node (hierarchical) vs {:.1} MB flat ring\n",
                self.inter_bytes_hierarchical as f64 / 1e6,
                self.inter_bytes_flat as f64 / 1e6,
            ));
            for n in &self.node_stats {
                out.push_str(&format!(
                    "  node {}: {} replica(s), {} batches, {} requests, busy {:.2} ms\n",
                    n.node,
                    n.replicas,
                    n.batches,
                    n.requests,
                    n.busy_ns as f64 / 1e6,
                ));
            }
        }
        out.push_str(&format!(
            "  completed {} (clean {}, recovered {}, degraded {}), shed {} ({:.1}%)\n",
            self.completed,
            self.clean,
            self.recovered,
            self.degraded,
            self.shed,
            self.shed_rate * 100.0,
        ));
        if let Some(p) = &self.latency {
            out.push_str(&format!(
                "  latency p50/p95/p99: {:.1}/{:.1}/{:.1} us (slo {:.1} ms met by {})\n",
                p.p50 as f64 / 1e3,
                p.p95 as f64 / 1e3,
                p.p99 as f64 / 1e3,
                self.slo_ns as f64 / 1e6,
                self.slo_met,
            ));
        }
        out.push_str(&format!(
            "  goodput {:.0} rps of {:.0} rps offered\n",
            self.goodput_rps, self.offered_rps,
        ));
        out.push_str(&format!(
            "  {} batches, {} shapes, plan cache hit rate {:.1}% ({} hits / {} misses, {} evictions)\n",
            self.batches,
            self.distinct_shapes,
            self.cache.hit_rate() * 100.0,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
        ));
        if self.replicas_quarantined > 0 || self.batches_rerouted > 0 {
            out.push_str(&format!(
                "  quarantine: {} replica(s) quarantined, {} batch(es) re-routed, {} request(s) shed with no healthy replica\n",
                self.replicas_quarantined, self.batches_rerouted, self.quarantine_shed,
            ));
        }
        for r in &self.replica_stats {
            out.push_str(&format!(
                "  replica {}: {} batches in {} chains, {} requests, {:.1}% utilized, cache hit rate {:.1}%{}\n",
                r.id,
                r.batches,
                r.chains,
                r.requests,
                r.utilization * 100.0,
                r.cache.hit_rate() * 100.0,
                if r.quarantined { " [quarantined]" } else { "" },
            ));
        }
        if let (Some(f), Some(q)) = (&self.form_wait, &self.queue_wait) {
            out.push_str(&format!(
                "  batch-form wait p50/p95/p99: {:.1}/{:.1}/{:.1} us; queue wait p50/p95/p99: {:.1}/{:.1}/{:.1} us\n",
                f.p50 as f64 / 1e3,
                f.p95 as f64 / 1e3,
                f.p99 as f64 / 1e3,
                q.p50 as f64 / 1e3,
                q.p95 as f64 / 1e3,
                q.p99 as f64 / 1e3,
            ));
        }
        if self.makespan_ns > 0 {
            out.push_str("  critical path:");
            for category in Category::ALL {
                let ns = self.attribution.get(category);
                if ns > 0 {
                    out.push_str(&format!(
                        " {} {:.1}%",
                        category.label(),
                        ns as f64 / self.makespan_ns as f64 * 100.0,
                    ));
                }
            }
            out.push('\n');
        }
        if !self.drift.is_empty() {
            let worst = self
                .drift
                .iter()
                .max_by(|a, b| {
                    a.drift()
                        .abs()
                        .partial_cmp(&b.drift().abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty drift");
            out.push_str(&format!(
                "  predictor drift: {} rows, worst {:+.1}% at {}x{}x{} group {}\n",
                self.drift.len(),
                worst.drift() * 100.0,
                worst.m,
                worst.n,
                worst.k,
                worst.group,
            ));
        }
        out
    }
}

fn wait_json(p: &Option<Percentiles>) -> Value {
    match p {
        Some(p) => Value::obj(vec![
            ("p50_ns", Value::num(p.p50 as f64)),
            ("p95_ns", Value::num(p.p95 as f64)),
            ("p99_ns", Value::num(p.p99 as f64)),
        ]),
        None => Value::Null,
    }
}

fn drift_json(d: &DriftRow) -> Value {
    Value::obj(vec![
        ("m", Value::num(f64::from(d.m))),
        ("n", Value::num(f64::from(d.n))),
        ("k", Value::num(f64::from(d.k))),
        ("group", Value::num(d.group as f64)),
        ("samples", Value::num(d.samples as f64)),
        ("mean_predicted_ns", Value::num(d.mean_predicted_ns)),
        ("mean_measured_ns", Value::num(d.mean_measured_ns)),
        ("drift", Value::num(d.drift())),
    ])
}

fn request_json(r: &RequestRecord) -> Value {
    Value::obj(vec![
        ("id", Value::num(r.id as f64)),
        ("model", Value::str(r.model)),
        ("tokens", Value::num(f64::from(r.tokens))),
        ("arrival_ns", Value::num(r.arrival_ns as f64)),
        ("disposition", Value::str(r.disposition.label())),
        (
            "batch",
            r.batch.map_or(Value::Null, |b| Value::num(b as f64)),
        ),
        (
            "latency_ns",
            r.latency_ns.map_or(Value::Null, |l| Value::num(l as f64)),
        ),
        (
            "form_wait_ns",
            r.form_wait_ns.map_or(Value::Null, |w| Value::num(w as f64)),
        ),
        (
            "queue_wait_ns",
            r.queue_wait_ns
                .map_or(Value::Null, |w| Value::num(w as f64)),
        ),
    ])
}

fn batch_json(b: &BatchRecord) -> Value {
    Value::obj(vec![
        ("id", Value::num(b.id as f64)),
        ("model", Value::str(b.model)),
        ("requests", Value::num(b.requests as f64)),
        ("tokens", Value::num(f64::from(b.tokens))),
        ("padded_tokens", Value::num(f64::from(b.padded_tokens))),
        ("start_ns", Value::num(b.start_ns as f64)),
        ("exec_ns", Value::num(b.exec_ns as f64)),
        ("cache_hit", Value::Bool(b.cache_hit)),
        ("outcome", Value::str(b.outcome)),
        ("replica", Value::num(b.replica as f64)),
        ("node", Value::num(b.node as f64)),
        ("migration_ns", Value::num(b.migration_ns as f64)),
        ("routing", Value::str(b.routing)),
        ("chain_len", Value::num(b.chain_len as f64)),
        ("close_ns", Value::num(b.close_ns as f64)),
        ("queue_wait_ns", Value::num(b.queue_wait_ns as f64)),
        (
            "attribution",
            b.attribution
                .as_ref()
                .map_or(Value::Null, AttributionTotals::to_json),
        ),
    ])
}

fn node_json(n: &NodeStats) -> Value {
    Value::obj(vec![
        ("node", Value::num(n.node as f64)),
        ("replicas", Value::num(n.replicas as f64)),
        ("batches", Value::num(n.batches as f64)),
        ("requests", Value::num(n.requests as f64)),
        ("tokens", Value::num(n.tokens as f64)),
        ("busy_ns", Value::num(n.busy_ns as f64)),
    ])
}

fn replica_json(r: &ReplicaStats) -> Value {
    Value::obj(vec![
        ("id", Value::num(r.id as f64)),
        ("node", Value::num(r.node as f64)),
        ("batches", Value::num(r.batches as f64)),
        ("requests", Value::num(r.requests as f64)),
        ("tokens", Value::num(r.tokens as f64)),
        ("busy_ns", Value::num(r.busy_ns as f64)),
        ("chains", Value::num(r.chains as f64)),
        ("utilization", Value::num(r.utilization)),
        ("quarantined", Value::Bool(r.quarantined)),
        (
            "cache",
            Value::obj(vec![
                ("hits", Value::num(r.cache.hits as f64)),
                ("misses", Value::num(r.cache.misses as f64)),
                ("evictions", Value::num(r.cache.evictions as f64)),
                ("hit_rate", Value::num(r.cache.hit_rate())),
                ("preloaded", Value::num(r.cache.preloaded as f64)),
            ]),
        ),
    ])
}

/// Tuned-vs-baseline comparison: the same seeded traffic served twice,
/// once with predictive-search plans and once with single-group
/// non-overlap plans.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonReport {
    /// The tuned arm.
    pub tuned: ServeReport,
    /// The non-overlap baseline arm.
    pub baseline: ServeReport,
}

impl ComparisonReport {
    /// Speedup of tuned over baseline at p50 / p95 / mean latency
    /// (`None` when either arm completed nothing).
    pub fn speedups(&self) -> Option<(f64, f64, f64)> {
        let t = self.tuned.latency.as_ref()?;
        let b = self.baseline.latency.as_ref()?;
        if t.p50 == 0 || t.p95 == 0 || self.tuned.mean_latency_ns == 0.0 {
            return None;
        }
        Some((
            b.p50 as f64 / t.p50 as f64,
            b.p95 as f64 / t.p95 as f64,
            self.baseline.mean_latency_ns / self.tuned.mean_latency_ns,
        ))
    }

    /// Serializes both arms plus the speedup summary.
    pub fn to_json(&self) -> Value {
        let speedup = match self.speedups() {
            Some((p50, p95, mean)) => Value::obj(vec![
                ("p50", Value::num(p50)),
                ("p95", Value::num(p95)),
                ("mean", Value::num(mean)),
            ]),
            None => Value::Null,
        };
        Value::obj(vec![
            ("kind", Value::str("flashoverlap-serve-comparison")),
            ("speedup", speedup),
            ("tuned", self.tuned.to_json()),
            ("baseline", self.baseline.to_json()),
        ])
    }

    /// Human-readable summary of both arms.
    pub fn summary(&self) -> String {
        let mut out = String::from("tuned arm:\n");
        out.push_str(&self.tuned.summary());
        out.push_str("baseline (non-overlap) arm:\n");
        out.push_str(&self.baseline.summary());
        if let Some((p50, p95, mean)) = self.speedups() {
            out.push_str(&format!(
                "speedup tuned vs baseline: p50 {p50:.3}x, p95 {p95:.3}x, mean {mean:.3}x\n"
            ));
        }
        out
    }
}

/// Replica-scaling comparison: the same seeded traffic served through
/// the multi-replica configuration, a single replica, and the
/// multi-replica configuration with cross-batch pipelining disabled.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingReport {
    /// The configured multi-replica, pipelined arm.
    pub multi: ServeReport,
    /// One replica, same everything else.
    pub single: ServeReport,
    /// Multi-replica with serial (barriered) chains.
    pub unpipelined: ServeReport,
}

impl ScalingReport {
    /// Goodput of the multi-replica arm over the single-replica arm
    /// (`None` when the single arm's goodput is zero).
    pub fn goodput_scaling(&self) -> Option<f64> {
        if self.single.goodput_rps > 0.0 {
            Some(self.multi.goodput_rps / self.single.goodput_rps)
        } else {
            None
        }
    }

    /// p95 of the pipelined vs. the serial multi-replica arm (`None`
    /// when either arm completed nothing).
    pub fn pipelining_p95(&self) -> Option<(u64, u64)> {
        Some((
            self.multi.latency.as_ref()?.p95,
            self.unpipelined.latency.as_ref()?.p95,
        ))
    }

    /// Serializes all three arms plus the scaling summary.
    pub fn to_json(&self) -> Value {
        let pipelining = match self.pipelining_p95() {
            Some((pipelined, serial)) => Value::obj(vec![
                ("pipelined_p95_ns", Value::num(pipelined as f64)),
                ("serial_p95_ns", Value::num(serial as f64)),
                (
                    "p95_speedup",
                    if pipelined > 0 {
                        Value::num(serial as f64 / pipelined as f64)
                    } else {
                        Value::Null
                    },
                ),
            ]),
            None => Value::Null,
        };
        Value::obj(vec![
            ("kind", Value::str("flashoverlap-serve-scaling")),
            (
                "goodput_scaling",
                self.goodput_scaling().map_or(Value::Null, Value::num),
            ),
            ("pipelining", pipelining),
            ("multi", self.multi.to_json()),
            ("single", self.single.to_json()),
            ("unpipelined", self.unpipelined.to_json()),
        ])
    }

    /// Human-readable summary of all three arms.
    pub fn summary(&self) -> String {
        let mut out = format!("multi-replica arm ({} replicas):\n", self.multi.replicas);
        out.push_str(&self.multi.summary());
        out.push_str("single-replica arm:\n");
        out.push_str(&self.single.summary());
        out.push_str("serial-chain arm:\n");
        out.push_str(&self.unpipelined.summary());
        if let Some(scaling) = self.goodput_scaling() {
            out.push_str(&format!(
                "goodput scaling {} -> {} replicas: {scaling:.2}x\n",
                self.single.replicas, self.multi.replicas
            ));
        }
        if let Some((pipelined, serial)) = self.pipelining_p95() {
            out.push_str(&format!(
                "p95 pipelined {:.1} us vs serial chains {:.1} us\n",
                pipelined as f64 / 1e3,
                serial as f64 / 1e3,
            ));
        }
        out
    }
}
