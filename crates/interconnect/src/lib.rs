//! Inter-GPU fabric models.
//!
//! The paper's reordering and grouping decisions are driven entirely by one
//! empirical fact about real interconnects (Fig. 8): *effective* bandwidth
//! collapses when transfers are small or fragmented, and saturates for
//! large contiguous blocks. This crate models that fact analytically
//! ([`BandwidthModel`]), supports the paper's offline sampling +
//! interpolation step ([`SampledCurve`]), and provides topology presets
//! calibrated to the two evaluation platforms (pairwise-NVLink A800 server
//! and PCIe-across-NUMA RTX 4090 server).

#![warn(missing_docs)]

pub mod bandwidth;
pub mod topology;

pub use bandwidth::{log_spaced_sizes, BandwidthModel, SampledCurve};
pub use topology::{FabricSpec, LinkKind};
