//! Size-dependent effective bandwidth.

use sim::SimDuration;

/// An analytic effective-bandwidth model for one transfer direction.
///
/// Effective bandwidth follows the saturating curve
/// `bw(s) = peak * s / (s + s_half)`, which is the classic alpha-beta
/// (latency + bandwidth) cost model rewritten as a bandwidth curve: the
/// transfer time `s / bw(s) = s_half/peak + s/peak` is affine in the size
/// `s`. `s_half` is the message size at which half the peak bandwidth is
/// reached — the "cliff" in Fig. 8 sits below it.
///
/// # Examples
///
/// ```
/// use interconnect::BandwidthModel;
///
/// let link = BandwidthModel::new(12.0, 4 << 20, 20_000);
/// // Large transfers approach peak bandwidth...
/// assert!(link.effective_gbps(1 << 30) > 11.9);
/// // ...small transfers collapse far below it.
/// assert!(link.effective_gbps(64 << 10) < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthModel {
    /// Saturated bandwidth in GB/s (1 GB = 1e9 bytes).
    pub peak_gbps: f64,
    /// Message size in bytes at which effective bandwidth is half of peak.
    pub s_half_bytes: f64,
    /// Fixed per-call overhead in nanoseconds (API call, kernel launch,
    /// protocol setup) added to every transfer.
    pub call_overhead_ns: u64,
}

impl BandwidthModel {
    /// Creates a model from peak GB/s, half-saturation size, and per-call
    /// overhead.
    ///
    /// # Panics
    ///
    /// Panics if `peak_gbps` or `s_half_bytes` is not positive.
    pub fn new(peak_gbps: f64, s_half_bytes: u64, call_overhead_ns: u64) -> Self {
        assert!(peak_gbps > 0.0, "peak bandwidth must be positive");
        assert!(s_half_bytes > 0, "half-saturation size must be positive");
        BandwidthModel {
            peak_gbps,
            s_half_bytes: s_half_bytes as f64,
            call_overhead_ns,
        }
    }

    /// Effective bandwidth in GB/s for a transfer of `bytes`.
    pub fn effective_gbps(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let s = bytes as f64;
        self.peak_gbps * s / (s + self.s_half_bytes)
    }

    /// Pure wire time (no call overhead) for a transfer of `bytes`.
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let secs = (bytes as f64 + self.s_half_bytes) / (self.peak_gbps * 1e9);
        SimDuration::from_secs_f64(secs)
    }

    /// Total time including the per-call overhead.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(self.call_overhead_ns) + self.wire_time(bytes)
    }
}

/// A piecewise-linear effective-bandwidth curve built from sampled
/// `(size, duration)` measurements.
///
/// This reproduces the paper's offline stage (§4.2.1): "the bandwidth curve
/// is sampled with multiple dense points, \[and\] given a data size, the
/// effective bandwidth can be accurately estimated through interpolation of
/// sampled points". FlashOverlap samples the *simulated* collectives the
/// same way the authors sampled their real machines, then interpolates in
/// duration space.
#[derive(Debug, Clone, Default)]
pub struct SampledCurve {
    /// `(bytes, duration_ns)` points, strictly increasing in bytes.
    points: Vec<(u64, u64)>,
}

impl SampledCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        SampledCurve { points: Vec::new() }
    }

    /// Builds a curve from measurement points, sorting and deduplicating by
    /// size.
    pub fn from_points(mut points: Vec<(u64, SimDuration)>) -> Self {
        points.sort_by_key(|&(bytes, _)| bytes);
        points.dedup_by_key(|&mut (bytes, _)| bytes);
        SampledCurve {
            points: points.into_iter().map(|(b, d)| (b, d.as_nanos())).collect(),
        }
    }

    /// Adds one measurement point.
    pub fn add_point(&mut self, bytes: u64, duration: SimDuration) {
        let idx = self.points.partition_point(|&(b, _)| b < bytes);
        if idx < self.points.len() && self.points[idx].0 == bytes {
            self.points[idx].1 = duration.as_nanos();
        } else {
            self.points.insert(idx, (bytes, duration.as_nanos()));
        }
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns true if the curve has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Interpolated duration for a transfer of `bytes` (linear between the
    /// surrounding samples, linear extrapolation beyond the extremes).
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty.
    pub fn interpolate(&self, bytes: u64) -> SimDuration {
        assert!(!self.points.is_empty(), "interpolating an empty curve");
        if self.points.len() == 1 {
            return SimDuration::from_nanos(self.points[0].1);
        }
        // Pick the surrounding segment, clamping to the first/last segment
        // for out-of-range sizes (linear extrapolation).
        let idx = self
            .points
            .partition_point(|&(b, _)| b <= bytes)
            .clamp(1, self.points.len() - 1);
        let (x0, y0) = self.points[idx - 1];
        let (x1, y1) = self.points[idx];
        let t = (bytes as f64 - x0 as f64) / (x1 as f64 - x0 as f64);
        let ns = y0 as f64 + t * (y1 as f64 - y0 as f64);
        SimDuration::from_secs_f64((ns / 1e9).max(0.0))
    }

    /// Interpolated effective bandwidth in GB/s at `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty.
    pub fn effective_gbps(&self, bytes: u64) -> f64 {
        let d = self.interpolate(bytes);
        if d.is_zero() {
            return 0.0;
        }
        bytes as f64 / d.as_secs_f64() / 1e9
    }

    /// The sampled points as `(bytes, duration)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (u64, SimDuration)> + '_ {
        self.points
            .iter()
            .map(|&(b, ns)| (b, SimDuration::from_nanos(ns)))
    }
}

/// Returns `count` log-spaced sizes between `min_bytes` and `max_bytes`
/// inclusive — the sampling grid for the offline stage.
///
/// # Panics
///
/// Panics if `count < 2` or the range is empty/inverted.
pub fn log_spaced_sizes(min_bytes: u64, max_bytes: u64, count: usize) -> Vec<u64> {
    assert!(count >= 2, "need at least two sample sizes");
    assert!(
        0 < min_bytes && min_bytes < max_bytes,
        "invalid size range {min_bytes}..{max_bytes}"
    );
    let lo = (min_bytes as f64).ln();
    let hi = (max_bytes as f64).ln();
    let mut sizes: Vec<u64> = (0..count)
        .map(|i| {
            let t = i as f64 / (count - 1) as f64;
            (lo + t * (hi - lo)).exp().round() as u64
        })
        .collect();
    sizes.dedup();
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_bandwidth_saturates() {
        let m = BandwidthModel::new(10.0, 1 << 20, 0);
        assert!(m.effective_gbps(1 << 30) > 9.98);
        let half = m.effective_gbps(1 << 20);
        assert!((half - 5.0).abs() < 1e-9, "half-size bandwidth {half}");
        assert_eq!(m.effective_gbps(0), 0.0);
    }

    #[test]
    fn transfer_time_is_affine_in_size() {
        let m = BandwidthModel::new(10.0, 1 << 20, 5_000);
        let t1 = m.transfer_time(10 << 20).as_nanos() as f64;
        let t2 = m.transfer_time(20 << 20).as_nanos() as f64;
        let t3 = m.transfer_time(30 << 20).as_nanos() as f64;
        let d1 = t2 - t1;
        let d2 = t3 - t2;
        assert!(
            (d1 - d2).abs() / d1 < 1e-6,
            "slope not constant: {d1} vs {d2}"
        );
    }

    #[test]
    fn zero_byte_transfer_costs_only_overhead() {
        let m = BandwidthModel::new(10.0, 1 << 20, 7_000);
        assert_eq!(m.transfer_time(0), SimDuration::from_nanos(7_000));
    }

    #[test]
    fn segmentation_is_slower_than_one_call() {
        // Two calls of S/2 must cost more than one call of S: this is the
        // fragmentation penalty that motivates reordering (Sec. 3.3.1).
        let m = BandwidthModel::new(12.0, 4 << 20, 20_000);
        let s = 64 << 20;
        let whole = m.transfer_time(s);
        let split = m.transfer_time(s / 2) + m.transfer_time(s / 2);
        assert!(split > whole);
    }

    #[test]
    fn sampled_curve_interpolates_between_points() {
        let curve = SampledCurve::from_points(vec![
            (100, SimDuration::from_nanos(1_000)),
            (200, SimDuration::from_nanos(2_000)),
        ]);
        assert_eq!(curve.interpolate(150).as_nanos(), 1_500);
        assert_eq!(curve.interpolate(100).as_nanos(), 1_000);
        assert_eq!(curve.interpolate(200).as_nanos(), 2_000);
    }

    #[test]
    fn sampled_curve_extrapolates_linearly() {
        let curve = SampledCurve::from_points(vec![
            (100, SimDuration::from_nanos(1_000)),
            (200, SimDuration::from_nanos(2_000)),
        ]);
        assert_eq!(curve.interpolate(300).as_nanos(), 3_000);
        assert_eq!(curve.interpolate(50).as_nanos(), 500);
    }

    #[test]
    fn sampled_curve_tracks_model_closely() {
        let m = BandwidthModel::new(12.0, 4 << 20, 20_000);
        let sizes = log_spaced_sizes(64 << 10, 1 << 30, 64);
        let curve =
            SampledCurve::from_points(sizes.iter().map(|&s| (s, m.transfer_time(s))).collect());
        for &probe in &[100 << 10, 3 << 20, 50 << 20, 700 << 20] {
            let truth = m.transfer_time(probe).as_nanos() as f64;
            let est = curve.interpolate(probe).as_nanos() as f64;
            let err = (est - truth).abs() / truth;
            assert!(err < 0.05, "probe {probe}: err {err}");
        }
    }

    #[test]
    fn add_point_keeps_sorted_and_replaces() {
        let mut curve = SampledCurve::new();
        curve.add_point(200, SimDuration::from_nanos(2));
        curve.add_point(100, SimDuration::from_nanos(1));
        curve.add_point(200, SimDuration::from_nanos(5));
        assert_eq!(curve.len(), 2);
        assert_eq!(curve.interpolate(200).as_nanos(), 5);
    }

    #[test]
    fn single_point_curve_is_constant() {
        let mut curve = SampledCurve::new();
        curve.add_point(100, SimDuration::from_nanos(42));
        assert_eq!(curve.interpolate(1).as_nanos(), 42);
        assert_eq!(curve.interpolate(10_000).as_nanos(), 42);
    }

    #[test]
    #[should_panic(expected = "empty curve")]
    fn empty_curve_interpolation_panics() {
        SampledCurve::new().interpolate(1);
    }

    #[test]
    fn log_spaced_sizes_are_monotone_and_bounded() {
        let sizes = log_spaced_sizes(1 << 10, 1 << 30, 32);
        assert_eq!(*sizes.first().unwrap(), 1 << 10);
        assert_eq!(*sizes.last().unwrap(), 1 << 30);
        for pair in sizes.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn effective_gbps_from_curve() {
        let m = BandwidthModel::new(10.0, 1 << 20, 0);
        let sizes = log_spaced_sizes(1 << 10, 1 << 30, 128);
        let curve =
            SampledCurve::from_points(sizes.iter().map(|&s| (s, m.transfer_time(s))).collect());
        let est = curve.effective_gbps(1 << 25);
        let truth = m.effective_gbps(1 << 25);
        assert!((est - truth).abs() / truth < 0.05);
    }
}
