//! Fabric topology presets for the two evaluation platforms.

use crate::bandwidth::BandwidthModel;

/// The physical link technology between GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// NVLink: high bandwidth, low per-call overhead, peer-to-peer capable.
    NvLink,
    /// PCIe traversing host bridges (and possibly NUMA interconnect):
    /// low bandwidth, high per-call overhead, no peer-to-peer access on the
    /// evaluated RTX 4090 server.
    Pcie,
    /// InfiniBand (or RoCE) NICs between nodes: moderate bandwidth, high
    /// per-call overhead, and one NIC per endpoint so concurrent messages
    /// from the same node serialize like a PCIe port.
    InfiniBand,
}

/// A description of the inter-GPU fabric of one server.
///
/// The calibration constants are chosen so the simulated Fig. 8 curves land
/// in the regimes the paper reports: the A800 server has pairwise NVLink
/// (hundreds of GB/s, cliff below ~1 MiB), while the RTX 4090 server
/// communicates over PCIe across NUMA nodes (tens of GB/s at best, with a
/// sharp degradation below a few MiB and heavy per-call overhead).
#[derive(Debug, Clone)]
pub struct FabricSpec {
    /// Human-readable fabric name.
    pub name: &'static str,
    /// Link technology.
    pub kind: LinkKind,
    /// Point-to-point per-direction bandwidth model between two GPUs.
    pub p2p: BandwidthModel,
    /// Whether peer-to-peer (direct remote memory access) is supported.
    /// Fusion-based baselines (FLUX) and Async-TP require this.
    pub peer_to_peer: bool,
}

impl FabricSpec {
    /// The A800 server fabric: pairwise NVLink.
    ///
    /// Calibration: NVLink-400 class links; ~200 GB/s effective saturated
    /// per direction for collectives, half-saturation near 256 KiB, ~8 us
    /// per-call overhead (NCCL launch + protocol on a fast fabric).
    pub fn a800_nvlink() -> Self {
        FabricSpec {
            name: "A800-NVLink",
            kind: LinkKind::NvLink,
            p2p: BandwidthModel::new(200.0, 256 << 10, 8_000),
            peer_to_peer: true,
        }
    }

    /// The RTX 4090 server fabric: PCIe 4.0 across NUMA nodes.
    ///
    /// Calibration: ~12 GB/s effective saturated per direction (PCIe 4.0
    /// x16 with NUMA-hop losses), half-saturation near 768 KiB, ~20 us
    /// per-call overhead. No peer-to-peer access (matches the paper's
    /// statement that FLUX cannot run on this server).
    pub fn rtx4090_pcie() -> Self {
        FabricSpec {
            name: "RTX4090-PCIe",
            kind: LinkKind::Pcie,
            p2p: BandwidthModel::new(12.0, 768 << 10, 20_000),
            peer_to_peer: false,
        }
    }

    /// An inter-node InfiniBand fabric (HDR-class, one NIC per node).
    ///
    /// Calibration: ~25 GB/s effective saturated per direction (200 Gb/s
    /// HDR with protocol losses), half-saturation near 1 MiB — RDMA setup
    /// and rendezvous costs bite until messages are large — and ~15 us
    /// per-call overhead. An order of magnitude below NVLink, the tier
    /// gap that makes hierarchical collectives pay.
    pub fn hdr_infiniband() -> Self {
        FabricSpec {
            name: "HDR-IB",
            kind: LinkKind::InfiniBand,
            p2p: BandwidthModel::new(25.0, 1 << 20, 15_000),
            peer_to_peer: false,
        }
    }

    /// Returns a copy with a scaled peak bandwidth (used by ablation
    /// benches to sweep fabric speed).
    pub fn with_peak_gbps(mut self, peak_gbps: f64) -> Self {
        self.p2p.peak_gbps = peak_gbps;
        self
    }

    /// Returns a copy of this fabric with every link degraded by `factor`
    /// (0 < factor ≤ 1): peak bandwidth is scaled down by `factor` and the
    /// per-call overhead scaled up by `1/factor`. Models a congested or
    /// partially failed link (e.g. a PCIe switch renegotiating to a lower
    /// generation) for fault-injection campaigns.
    pub fn degraded(mut self, factor: f64) -> Self {
        let factor = factor.clamp(f64::MIN_POSITIVE, 1.0);
        self.p2p.peak_gbps *= factor;
        let overhead = self.p2p.call_overhead_ns as f64 / factor;
        self.p2p.call_overhead_ns = overhead.min(u64::MAX as f64) as u64;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_ordering() {
        let nv = FabricSpec::a800_nvlink();
        let pcie = FabricSpec::rtx4090_pcie();
        assert!(nv.p2p.peak_gbps > 10.0 * pcie.p2p.peak_gbps);
        assert!(nv.p2p.call_overhead_ns < pcie.p2p.call_overhead_ns);
        assert!(nv.peer_to_peer);
        assert!(!pcie.peer_to_peer);
    }

    #[test]
    fn nvlink_saturates_earlier_than_pcie() {
        // The half-saturation point (bandwidth cliff) is at smaller sizes
        // on NVLink, as in Fig. 8.
        let nv = FabricSpec::a800_nvlink();
        let pcie = FabricSpec::rtx4090_pcie();
        assert!(nv.p2p.s_half_bytes < pcie.p2p.s_half_bytes);
    }

    #[test]
    fn with_peak_scales() {
        let f = FabricSpec::rtx4090_pcie().with_peak_gbps(24.0);
        assert_eq!(f.p2p.peak_gbps, 24.0);
    }

    #[test]
    fn degraded_scales_bandwidth_down_and_overhead_up() {
        let base = FabricSpec::rtx4090_pcie();
        let bad = base.clone().degraded(0.25);
        assert_eq!(bad.p2p.peak_gbps, base.p2p.peak_gbps * 0.25);
        assert_eq!(bad.p2p.call_overhead_ns, base.p2p.call_overhead_ns * 4);
        // Degradation never *improves* a link.
        let noop = base.clone().degraded(4.0);
        assert_eq!(noop.p2p.peak_gbps, base.p2p.peak_gbps);
    }

    #[test]
    fn kinds_are_distinguishable() {
        assert_ne!(LinkKind::NvLink, LinkKind::Pcie);
        assert_ne!(LinkKind::Pcie, LinkKind::InfiniBand);
    }

    #[test]
    fn infiniband_sits_between_pcie_and_nvlink() {
        let nv = FabricSpec::a800_nvlink();
        let ib = FabricSpec::hdr_infiniband();
        let pcie = FabricSpec::rtx4090_pcie();
        assert!(pcie.p2p.peak_gbps < ib.p2p.peak_gbps);
        assert!(ib.p2p.peak_gbps < nv.p2p.peak_gbps / 4.0);
        assert!(!ib.peer_to_peer);
    }
}
