//! Property tests of the fabric models: curves must be monotone,
//! interpolation must agree with the model at sample points, and the
//! fragmentation penalty must always be nonnegative.

use interconnect::{log_spaced_sizes, BandwidthModel, FabricSpec, SampledCurve};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = BandwidthModel> {
    (1u64..400, 10u64..(64 << 20), 0u64..100_000)
        .prop_map(|(peak, s_half, overhead)| BandwidthModel::new(peak as f64, s_half, overhead))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transfer time is nondecreasing in size — strictly increasing once
    /// the size delta is worth at least two clock ticks; effective
    /// bandwidth is nondecreasing and bounded by peak.
    #[test]
    fn model_monotonicity(model in arb_model(), a in 1u64..(1 << 28)) {
        let b = a * 2;
        // The simulated clock has integer-nanosecond resolution (the
        // granularity at which §4.2.1's sampled bandwidth curves are
        // interpolated), so doubling a byte-scale transfer can land on
        // the same tick: at peak GB/s, `a` extra bytes add `a / peak`
        // nanoseconds of wire time. Demand strict growth only when that
        // delta clears rounding (>= 2 ns); otherwise nondecreasing.
        prop_assert!(model.transfer_time(b) >= model.transfer_time(a));
        if a as f64 >= 2.0 * model.peak_gbps {
            prop_assert!(model.transfer_time(b) > model.transfer_time(a));
        }
        let bw_a = model.effective_gbps(a);
        let bw_b = model.effective_gbps(b);
        prop_assert!(bw_b >= bw_a);
        prop_assert!(bw_b <= model.peak_gbps);
    }

    /// Splitting a transfer into k calls never beats one call.
    #[test]
    fn fragmentation_never_helps(model in arb_model(), bytes in 1024u64..(1 << 28),
                                 k in 2u64..16) {
        let whole = model.transfer_time(bytes);
        let split = model.transfer_time(bytes / k) * k;
        prop_assert!(split >= whole);
    }

    /// A curve sampled from a model interpolates exactly at sample points
    /// and monotonically between them.
    #[test]
    fn sampled_curve_faithful(model in arb_model(), probe in 1u64..(1 << 27)) {
        let sizes = log_spaced_sizes(1024, 1 << 28, 64);
        let curve = SampledCurve::from_points(
            sizes.iter().map(|&s| (s, model.transfer_time(s))).collect(),
        );
        for &s in sizes.iter().take(8) {
            prop_assert_eq!(curve.interpolate(s).as_nanos(), model.transfer_time(s).as_nanos());
        }
        // Interpolation error within 5% anywhere inside the sampled range.
        let probe = probe.max(1024);
        let truth = model.transfer_time(probe).as_nanos() as f64;
        let est = curve.interpolate(probe).as_nanos() as f64;
        prop_assert!((est - truth).abs() / truth < 0.05, "probe {probe}");
    }

    /// log_spaced_sizes is strictly increasing and hits both endpoints.
    #[test]
    fn log_sizes_well_formed(lo_exp in 6u32..16, span in 2u32..14, count in 2usize..128) {
        let lo = 1u64 << lo_exp;
        let hi = 1u64 << (lo_exp + span);
        let sizes = log_spaced_sizes(lo, hi, count);
        prop_assert_eq!(*sizes.first().unwrap(), lo);
        prop_assert_eq!(*sizes.last().unwrap(), hi);
        for pair in sizes.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
    }

    /// Both platform presets satisfy the paper's qualitative ordering for
    /// any message size: NVLink is faster and saturates earlier.
    #[test]
    fn preset_ordering_holds_pointwise(bytes in 1024u64..(1 << 30)) {
        let nv = FabricSpec::a800_nvlink();
        let pcie = FabricSpec::rtx4090_pcie();
        prop_assert!(nv.p2p.wire_time(bytes) < pcie.p2p.wire_time(bytes));
        // Normalized saturation: NVLink reaches a higher fraction of its
        // peak at the same size.
        let nv_frac = nv.p2p.effective_gbps(bytes) / nv.p2p.peak_gbps;
        let pcie_frac = pcie.p2p.effective_gbps(bytes) / pcie.p2p.peak_gbps;
        prop_assert!(nv_frac >= pcie_frac);
    }
}
