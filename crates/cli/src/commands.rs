//! Command execution for the `flashoverlap` binary.

use baselines::{measure, Method};
use bench::{pattern_for, render_timeline, system_for};
use flashoverlap::{
    model_of_chain, model_of_plan, nonoverlap_latency, predictive_search, run_chaos, runtime_seam,
    theoretical_latency, ChaosConfig, ChaosReport, Instrumentation, LatencyPredictor, OverlapPlan,
    ResilientOutcome, RunReport, RuntimeSeam, SignalMutation,
};
use gpu_sim::gemm::GemmDims;
use planverify::{caveats, conformance_matrix, ExecPath, Mutation, MutationKind, VerifyReport};
use simsan::Sanitizer;
use telemetry::json::Value;

use flashoverlap::runtime::CommPattern;

use crate::args::{Cli, CliError, Command, ParallelArg, ServeArrival};

/// Profiles every method on the workload and writes the metrics report
/// (and, for the `profile` command, the Perfetto trace). Returns the
/// human-readable summary.
fn profiled_report(
    cli: &Cli,
    dims: GemmDims,
    pattern: &CommPattern,
    system: &flashoverlap::SystemSpec,
) -> Result<String, CliError> {
    let profile = telemetry::profile(dims, pattern, system)
        .map_err(|e| CliError::runtime(format!("profiling failed: {e}")))?;
    let mut out = profile.report.summary();
    if cli.command == Command::Profile {
        if let Some(path) = &cli.output.trace_out {
            let trace = profile.trace_string().ok_or_else(|| {
                CliError::runtime("FlashOverlap run failed; no trace to write".to_owned())
            })?;
            std::fs::write(path, trace)
                .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
            out.push_str(&format!("perfetto trace written to {path}\n"));
        }
    }
    if let Some(path) = &cli.output.metrics_out {
        std::fs::write(path, profile.report.to_json().to_json_pretty())
            .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
        out.push_str(&format!("metrics written to {path}\n"));
    }
    Ok(out)
}

/// Executes `plan` under the SimSan sanitizer (optionally with the CLI's
/// seeded signal mutation) and renders the findings.
fn sanitized_run(cli: &Cli, plan: &OverlapPlan) -> Result<(RunReport, String), CliError> {
    if let Some(mutation) = cli.mutation {
        // An out-of-range mutation would silently no-op and report a clean
        // run, which reads like a missed detection.
        let (SignalMutation::DropWait { rank, group }
        | SignalMutation::RaiseThreshold { rank, group }) = mutation;
        let groups = plan.partition.num_groups();
        let ranks = plan.system.n_gpus;
        if rank >= ranks || group >= groups {
            return Err(CliError::runtime(format!(
                "mutation target rank {rank}, group {group} is outside the plan \
                 ({ranks} ranks, {groups} groups)"
            )));
        }
    }
    let sanitizer = Sanitizer::new();
    let instr = Instrumentation {
        monitor: Some(sanitizer.monitor()),
        probe: Some(sanitizer.probe()),
        mutation: cli.mutation,
    };
    let report = plan
        .execute_with(&flashoverlap::ExecOptions::new().instrument(&instr))
        .map_err(|e| CliError::runtime(format!("simulation failed: {e}")))?
        .report;
    let mut text = String::new();
    if let Some(mutation) = cli.mutation {
        text.push_str(&format!("mutation : {mutation:?}\n"));
    }
    text.push_str(&format!("sanitizer: {}\n", sanitizer.summary()));
    for finding in sanitizer.reports() {
        text.push_str(&format!("  - {finding}\n"));
    }
    Ok((report, text))
}

/// Renders a chaos sweep as JSON for `--metrics-out`.
fn chaos_json(report: &ChaosReport) -> Value {
    let results = report
        .results
        .iter()
        .map(|r| {
            let cause = match &r.outcome {
                ResilientOutcome::Degraded { cause, .. } => Value::str(cause.clone()),
                _ => Value::Null,
            };
            Value::obj(vec![
                ("seed", Value::num(r.seed as f64)),
                ("faults", Value::num(r.faults as f64)),
                ("outcome", Value::str(r.outcome.label())),
                ("cause", cause),
                ("bit_exact", Value::Bool(r.bit_exact)),
                ("latency_ns", Value::num(r.latency_ns as f64)),
                ("events", Value::num(r.events as f64)),
            ])
        })
        .collect();
    Value::obj(vec![
        ("seed", Value::num(report.config.seed as f64)),
        ("campaigns", Value::num(report.results.len() as f64)),
        ("gpus", Value::num(report.config.gpus as f64)),
        (
            "reference_latency_ns",
            Value::num(report.reference_latency_ns as f64),
        ),
        ("clean", Value::num(report.clean() as f64)),
        ("recovered", Value::num(report.recovered() as f64)),
        ("degraded", Value::num(report.degraded() as f64)),
        ("bit_exact", Value::num(report.bit_exact() as f64)),
        ("violations", Value::num(report.violations() as f64)),
        ("hangs", Value::num(0.0)),
        ("results", Value::Arr(results)),
    ])
}

/// Runs the `chaos` command: a seeded fault-campaign sweep with a
/// violation gate.
fn execute_chaos(cli: &Cli) -> Result<String, CliError> {
    let config = ChaosConfig {
        seed: cli.seed,
        campaigns: cli.campaigns,
        dims: GemmDims::new(cli.m, cli.n, cli.k),
        gpus: cli.gpus,
        ..ChaosConfig::default()
    };
    let report =
        run_chaos(&config).map_err(|e| CliError::runtime(format!("chaos sweep failed: {e}")))?;
    let mut out = String::new();
    out.push_str(&format!(
        "chaos    : {} campaigns, base seed {}, GEMM {}x{}x{} + allreduce on {} ranks\n",
        report.results.len(),
        config.seed,
        cli.m,
        cli.n,
        cli.k,
        config.gpus,
    ));
    out.push_str(&format!(
        "reference: {} ns fault-free\n",
        report.reference_latency_ns
    ));
    out.push_str(&format!(
        "verdicts : {} clean, {} recovered, {} degraded; {}/{} bit-exact\n",
        report.clean(),
        report.recovered(),
        report.degraded(),
        report.bit_exact(),
        report.results.len(),
    ));
    for r in &report.results {
        if let ResilientOutcome::Degraded { cause, .. } = &r.outcome {
            out.push_str(&format!("  seed {}: degraded ({cause})\n", r.seed));
        }
    }
    out.push_str(&format!(
        "hangs    : 0 (every campaign terminated under the watchdog)\n\
         violations: {}\n",
        report.violations()
    ));
    if let Some(path) = &cli.output.metrics_out {
        std::fs::write(path, chaos_json(&report).to_json_pretty())
            .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
        out.push_str(&format!("metrics written to {path}\n"));
    }
    if report.violations() > 0 {
        return Err(CliError::runtime(format!(
            "{} campaign(s) violated the bit-exact-or-degraded invariant:\n{out}",
            report.violations()
        )));
    }
    Ok(out)
}

/// Builds the [`serving::ServeConfig`] shared by the `serve` and
/// `bench` commands from the CLI flags.
fn serve_config(cli: &Cli) -> Result<serving::ServeConfig, CliError> {
    let mut system = system_for(cli.platform, cli.gpus).with_algorithm(cli.algorithm);
    if cli.nodes > 1 {
        // Multi-node: split every TP group across the nodes (so its
        // collectives run hierarchically over the two-tier fabric) and
        // arm the server's node placement / migration accounting.
        if !cli.gpus.is_multiple_of(cli.nodes) {
            return Err(CliError::usage(format!(
                "--nodes {} must divide --gpus {} evenly",
                cli.nodes, cli.gpus
            )));
        }
        if !cli.replicas.is_multiple_of(cli.nodes) {
            return Err(CliError::usage(format!(
                "--nodes {} must divide --replicas {} evenly",
                cli.nodes, cli.replicas
            )));
        }
        system = system.with_nodes(cli.nodes);
    }
    let mut config = serving::ServeConfig::new(system);
    config.seed = cli.seed;
    config.requests = cli.requests;
    config.slo_ns = (cli.slo_ms * 1e6).round() as u64;
    config.chaos = cli.serve_chaos;
    config.replicas = cli.replicas;
    config.nodes = cli.nodes;
    config.wedge_replica = cli.wedge_replica;
    config.router = cli.router;
    config.pipelined = !cli.no_pipeline;
    config.process = match cli.arrival {
        ServeArrival::Poisson => serving::ArrivalProcess::Poisson { rate_rps: cli.rate },
        // Bursty keeps the requested mean: half-rate calm phases
        // alternating with 8x-rate bursts, 5 ms mean phase length.
        ServeArrival::Bursty => serving::ArrivalProcess::Bursty {
            base_rps: cli.rate * 0.5,
            burst_rps: cli.rate * 8.0,
            mean_phase_ms: 5.0,
        },
    };
    config.exec = match cli.parallel {
        // Validate drives both engine pools itself; the base config
        // stays serial so its report is the reference.
        ParallelArg::Serial | ParallelArg::Validate => serving::ExecMode::Serial,
        ParallelArg::Threads(threads) => serving::ExecMode::Parallel(threads),
    };
    if let Some(path) = &cli.plan_cache.load {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::runtime(format!("reading {path}: {e}")))?;
        let snapshot = serving::CacheSnapshot::from_json(&text)
            .map_err(|e| CliError::runtime(format!("parsing {path}: {e}")))?;
        config.preload = Some(snapshot);
    }
    Ok(config)
}

/// The worker-thread count a [`serving::ExecMode`] actually uses (the
/// engine pool never spawns more threads than replicas).
fn effective_threads(exec: serving::ExecMode, replicas: usize) -> (&'static str, usize) {
    match exec {
        serving::ExecMode::Serial => ("serial", 1),
        serving::ExecMode::Parallel(threads) => ("parallel", threads.clamp(1, replicas.max(1))),
    }
}

/// Runs the `serve` command: a seeded continuous-batching trace through
/// the tuned-plan cache across one or more replicas, with optional
/// chaos, baseline, scaling, and plan-cache persistence arms.
fn execute_serve(cli: &Cli) -> Result<String, CliError> {
    let config = serve_config(cli)?;
    let mut exported = None;
    let (mut out, json, traced) = if cli.parallel == ParallelArg::Validate {
        if cli.scaling || cli.baseline {
            return Err(CliError::usage(
                "--parallel validate cannot combine with --scaling or --baseline",
            ));
        }
        // Cross-check the two engine pools: at least two threads so the
        // parallel arm really runs workers, capped at the replica count.
        let threads = cli.replicas.max(2);
        let (report, matched) = serving::validate_parallel(&config, threads)
            .map_err(|e| CliError::runtime(format!("serve failed: {e}")))?;
        if !matched {
            return Err(CliError::runtime(format!(
                "parallel({threads}) ServeReport diverged from serial — \
                 deterministic-merge bug; re-run with --parallel serial to unblock"
            )));
        }
        let mut s = format!("validate : serial and parallel({threads}) reports byte-identical\n");
        let json = report.to_json();
        s.push_str(&report.summary());
        (s, json, report)
    } else if cli.scaling {
        let scaling = serving::serve_scaling(&config)
            .map_err(|e| CliError::runtime(format!("serve scaling failed: {e}")))?;
        let traced = scaling.multi.clone();
        (scaling.summary(), scaling.to_json(), traced)
    } else if cli.baseline {
        let cmp = serving::serve_comparison(&config)
            .map_err(|e| CliError::runtime(format!("serve comparison failed: {e}")))?;
        let traced = cmp.tuned.clone();
        (cmp.summary(), cmp.to_json(), traced)
    } else {
        let (report, snapshot) = serving::serve_exporting(&config)
            .map_err(|e| CliError::runtime(format!("serve failed: {e}")))?;
        exported = Some(snapshot);
        let json = report.to_json();
        (report.summary(), json, report)
    };
    if let Some(path) = &cli.output.trace_out {
        // The scaling/baseline arms trace their primary (multi/tuned)
        // report; request flows in the other arms carry the same ids.
        std::fs::write(path, serving::serve_trace_string(&traced))
            .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
        out.push_str(&format!("request-lifecycle trace written to {path}\n"));
    }
    if let Some(path) = &cli.plan_cache.save {
        // The scaling/baseline arms consume their reports internally; an
        // extra export run is deterministic and reuses the same config.
        let snapshot = match exported {
            Some(s) => s,
            None => {
                serving::serve_exporting(&config)
                    .map_err(|e| CliError::runtime(format!("serve failed: {e}")))?
                    .1
            }
        };
        std::fs::write(path, snapshot.to_json())
            .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
        out.push_str(&format!("plan cache written to {path}\n"));
    }
    if let Some(path) = &cli.output.metrics_out {
        std::fs::write(path, json.to_json_pretty())
            .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
        out.push_str(&format!("metrics written to {path}\n"));
    }
    Ok(out)
}

/// Executes `plan` instrumented and traced, returning the spans, the
/// causal telemetry record, the critical-path attribution, and the run
/// report.
fn attributed_run(
    plan: &OverlapPlan,
) -> Result<
    (
        Vec<gpu_sim::OpSpan>,
        telemetry::TelemetryRecord,
        telemetry::Attribution,
        RunReport,
    ),
    CliError,
> {
    let telemetry = telemetry::Telemetry::new();
    let instr = telemetry.instrumentation();
    let out = plan
        .execute_with(&flashoverlap::ExecOptions::new().instrument(&instr).trace())
        .map_err(|e| CliError::runtime(format!("simulation failed: {e}")))?;
    let record = telemetry.take_record();
    let attribution = telemetry::attribute(&out.spans, &record);
    Ok((out.spans, record, attribution, out.report))
}

/// One arm of the analyze comparison as JSON.
fn analyze_arm_json(
    partition: &flashoverlap::WavePartition,
    report: &RunReport,
    attribution: &telemetry::Attribution,
) -> Value {
    Value::obj(vec![
        ("partition", Value::str(partition.to_string())),
        ("latency_ns", Value::num(report.latency.as_nanos() as f64)),
        ("attribution", attribution.to_json()),
    ])
}

/// Runs the `analyze` command: attributes the tuned (or `--partition`)
/// plan's critical path and compares it against the naive per-wave
/// signaling baseline (§4.1.1) on the same workload — the tuner's win
/// read directly off the signal-wait category.
fn execute_analyze(
    cli: &Cli,
    plan: &OverlapPlan,
    pattern: &CommPattern,
    system: &flashoverlap::SystemSpec,
) -> Result<String, CliError> {
    use telemetry::Category;

    let dims = GemmDims::new(cli.m, cli.n, cli.k);
    let (spans, record, tuned_attr, tuned_report) = attributed_run(plan)?;
    let per_wave = flashoverlap::WavePartition::per_wave(plan.total_waves());
    let baseline = OverlapPlan::new(dims, pattern.clone(), system.clone(), per_wave.clone())
        .map_err(|e| CliError::runtime(format!("per-wave baseline construction failed: {e}")))?;
    let (_, _, base_attr, base_report) = attributed_run(&baseline)?;

    let tuned_wait = tuned_attr.totals.get(Category::SignalWait);
    let base_wait = base_attr.totals.get(Category::SignalWait);
    let doc = Value::obj(vec![
        ("kind", Value::str("flashoverlap-analyze")),
        (
            "workload",
            Value::obj(vec![
                ("m", Value::num(f64::from(cli.m))),
                ("n", Value::num(f64::from(cli.n))),
                ("k", Value::num(f64::from(cli.k))),
                ("primitive", Value::str(cli.primitive.to_string())),
                ("gpus", Value::num(cli.gpus as f64)),
                ("platform", Value::str(system.arch.name)),
            ]),
        ),
        (
            "tuned",
            analyze_arm_json(&plan.partition, &tuned_report, &tuned_attr),
        ),
        (
            "per_wave",
            analyze_arm_json(&per_wave, &base_report, &base_attr),
        ),
        (
            "signal_wait_saved_ns",
            Value::num(base_wait as f64 - tuned_wait as f64),
        ),
    ]);

    let mut out = String::new();
    out.push_str(&format!(
        "tuned    : partition {}, latency {} — {}\n",
        plan.partition,
        tuned_report.latency,
        tuned_attr.summary(),
    ));
    out.push_str(&format!(
        "per-wave : partition {per_wave}, latency {} — {}\n",
        base_report.latency,
        base_attr.summary(),
    ));
    out.push_str(&format!(
        "signal-wait on the critical path: tuned {tuned_wait} ns vs per-wave {base_wait} ns\n",
    ));
    let identity = tuned_attr.identity_holds() && base_attr.identity_holds();
    out.push_str(&format!(
        "identity : {}\n",
        if identity {
            "both attributions sum exactly to their makespans"
        } else {
            "VIOLATED — attribution does not tile the makespan"
        },
    ));
    if let Some(path) = &cli.output.trace_out {
        let trace = telemetry::perfetto::trace_with_attribution(&spans, Some(&record), &tuned_attr);
        std::fs::write(path, trace.to_json())
            .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
        out.push_str(&format!(
            "perfetto trace with critical-path track written to {path}\n"
        ));
    }
    if let Some(path) = &cli.output.metrics_out {
        std::fs::write(path, doc.to_json_pretty())
            .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
        out.push_str(&format!("metrics written to {path}\n"));
    }
    if !identity {
        return Err(CliError::runtime(format!(
            "attribution identity violated:\n{out}"
        )));
    }
    Ok(out)
}

/// Percentile triple as JSON for the bench report.
fn bench_wait_json(p: &Option<telemetry::Percentiles>) -> Value {
    match p {
        Some(p) => Value::obj(vec![
            ("p50_ns", Value::num(p.p50 as f64)),
            ("p95_ns", Value::num(p.p95 as f64)),
            ("p99_ns", Value::num(p.p99 as f64)),
        ]),
        None => Value::Null,
    }
}

/// Runs the `bench` command: the serve regression benchmark. The JSON
/// artifact carries only virtual-time metrics (byte-stable for a fixed
/// seed — the CI gate byte-compares two runs); host wall-clock and
/// events/sec go to stdout only.
fn execute_bench(cli: &Cli) -> Result<String, CliError> {
    if cli.parallel == ParallelArg::Validate {
        return Err(CliError::usage(
            "--parallel validate is a serve mode; bench takes a thread count or `serial`",
        ));
    }
    let config = serve_config(cli)?;
    let (mode, threads) = effective_threads(config.exec, config.replicas);
    // Instant is the host's monotonic clock, so the delta is immune to
    // wall-time adjustments mid-run.
    let started = std::time::Instant::now();
    let report = serving::serve(&config)
        .map_err(|e| CliError::runtime(format!("bench serve failed: {e}")))?;
    let wall = started.elapsed();

    let doc = Value::obj(vec![
        ("kind", Value::str("flashoverlap-bench-serve")),
        ("seed", Value::num(report.seed as f64)),
        ("requests", Value::num(report.offered as f64)),
        ("gpus", Value::num(report.gpus as f64)),
        ("platform", Value::str(report.platform)),
        ("replicas", Value::num(report.replicas as f64)),
        ("chaos", Value::Bool(report.chaos)),
        ("makespan_ns", Value::num(report.makespan_ns as f64)),
        (
            "throughput",
            Value::obj(vec![
                ("goodput_rps", Value::num(report.goodput_rps)),
                ("offered_rps", Value::num(report.offered_rps)),
                ("shed_rate", Value::num(report.shed_rate)),
            ]),
        ),
        (
            "latency",
            match &report.latency {
                Some(p) => Value::obj(vec![
                    ("p50_ns", Value::num(p.p50 as f64)),
                    ("p95_ns", Value::num(p.p95 as f64)),
                    ("p99_ns", Value::num(p.p99 as f64)),
                    ("mean_ns", Value::num(report.mean_latency_ns)),
                ]),
                None => Value::Null,
            },
        ),
        (
            "scheduling",
            Value::obj(vec![
                ("form_wait", bench_wait_json(&report.form_wait)),
                ("queue_wait", bench_wait_json(&report.queue_wait)),
            ]),
        ),
        (
            "attribution",
            Value::obj(vec![
                ("makespan_ns", Value::num(report.makespan_ns as f64)),
                (
                    "identity_holds",
                    Value::Bool(report.attribution.sum() == report.makespan_ns),
                ),
                ("categories", report.attribution.to_json()),
                ("shares", report.attribution.shares_json(report.makespan_ns)),
            ]),
        ),
        (
            "signaling",
            Value::obj(vec![
                ("mean_signal_ns", Value::num(report.mean_signal_ns)),
                ("samples", Value::num(report.signal_samples as f64)),
            ]),
        ),
        ("batches", Value::num(report.batches as f64)),
        ("drift_rows", Value::num(report.drift.len() as f64)),
    ]);

    let path = cli
        .output
        .metrics_out
        .clone()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    std::fs::write(&path, doc.to_json_pretty())
        .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;

    // Host-side figures stay out of the artifact: they vary run to run
    // and would break the byte-compare gate.
    let events = report.offered + report.batches;
    let secs = wall.as_secs_f64().max(1e-9);
    let mut out = String::new();
    out.push_str(&format!(
        "bench    : {} requests, seed {}, {} x{} ({} replicas{})\n",
        report.offered,
        report.seed,
        report.platform,
        report.gpus,
        report.replicas,
        if report.chaos { ", chaos" } else { "" },
    ));
    out.push_str(&format!(
        "virtual  : makespan {:.2} ms, goodput {:.0} rps{}\n",
        report.makespan_ns as f64 / 1e6,
        report.goodput_rps,
        report.latency.as_ref().map_or(String::new(), |p| format!(
            ", p95 {:.1} us",
            p.p95 as f64 / 1e3
        )),
    ));
    if report.makespan_ns > 0 {
        let share = |c| report.attribution.get(c) as f64 / report.makespan_ns as f64 * 100.0;
        out.push_str(&format!(
            "critical : gemm {:.1}%, transfer {:.1}%, signal-wait {:.1}%, queue-wait {:.1}%, idle {:.1}%\n",
            share(telemetry::Category::GemmCompute),
            share(telemetry::Category::CollectiveTransfer),
            share(telemetry::Category::SignalWait),
            share(telemetry::Category::QueueWait),
            share(telemetry::Category::Idle),
        ));
    }
    out.push_str(&format!(
        "host     : {secs:.3} s wall-clock (monotonic), {:.0} events/s, \
         {mode} x{threads} thread{} ({events} events: requests + batches)\n",
        events as f64 / secs,
        if threads == 1 { "" } else { "s" },
    ));
    out.push_str(&format!("bench report written to {path}\n"));
    if let Some(wallclock_path) = &cli.output.wallclock_out {
        // The wall-clock trend artifact is intentionally separate from
        // the virtual-time report: it varies run to run, so it is
        // tracked for trends, never byte-gated.
        let trend = Value::obj(vec![
            ("kind", Value::str("flashoverlap-bench-wallclock")),
            ("seed", Value::num(report.seed as f64)),
            ("requests", Value::num(report.offered as f64)),
            ("gpus", Value::num(report.gpus as f64)),
            ("replicas", Value::num(report.replicas as f64)),
            ("chaos", Value::Bool(report.chaos)),
            ("mode", Value::str(mode)),
            ("threads", Value::num(threads as f64)),
            ("wall_s", Value::num(secs)),
            ("events", Value::num(events as f64)),
            ("events_per_sec", Value::num(events as f64 / secs)),
        ]);
        std::fs::write(wallclock_path, trend.to_json_pretty())
            .map_err(|e| CliError::runtime(format!("writing {wallclock_path}: {e}")))?;
        out.push_str(&format!("wall-clock trend written to {wallclock_path}\n"));
    }
    Ok(out)
}

/// A concrete registry mutation targeting rank 0, group 0 (count 1 for
/// the increment arms) — every real plan has that slot, so one sample
/// per kind drives each matrix cell's static arm.
fn sample_mutation(kind: MutationKind) -> Mutation {
    match kind {
        MutationKind::DropWait => Mutation::DropWait { rank: 0, group: 0 },
        MutationKind::RaiseThreshold => Mutation::RaiseThreshold { rank: 0, group: 0 },
        MutationKind::DropIncrements => Mutation::DropIncrements {
            rank: 0,
            group: 0,
            count: 1,
        },
        MutationKind::DelayIncrements => Mutation::DelayIncrements {
            rank: 0,
            group: 0,
            count: 1,
        },
        MutationKind::ReorderIncrements => Mutation::ReorderIncrements { rank: 0 },
        MutationKind::DropRearm => Mutation::DropRearm,
    }
}

/// Renders a verify report's violations as a JSON array of lines.
fn violations_json(report: &VerifyReport) -> Value {
    Value::Arr(
        report
            .violations
            .iter()
            .map(|v| Value::str(flashoverlap::verify::violation_line(v)))
            .collect(),
    )
}

/// Renders a verify report's coverage stats.
fn stats_json(report: &VerifyReport) -> Value {
    Value::obj(vec![
        ("segments", Value::num(report.stats.segments as f64)),
        ("waits", Value::num(report.stats.waits as f64)),
        ("tiles", Value::num(report.stats.tiles as f64)),
        ("reads", Value::num(report.stats.reads as f64)),
        ("truncated", Value::Bool(report.stats.truncated)),
    ])
}

/// Runs the `verify` command body against the constructed plan: the
/// static proof, the per-method signaling inventory, the conformance
/// matrix with its static arm re-proven per cell, and the quantized
/// serve-mix sweep. Any violation or nonconforming cell is an error.
fn execute_verify(
    cli: &Cli,
    plan: &OverlapPlan,
    pattern: &CommPattern,
    system: &flashoverlap::SystemSpec,
) -> Result<String, CliError> {
    let report = plan.verify();
    let thresholds = plan.wait_thresholds();

    // Every comparison method with its signaling surface: FlashOverlap
    // carries the proven wait schedule; the baselines overlap (or don't)
    // without signal/wait gating, so there is nothing to verify — they
    // are structurally wait-free, not merely unchecked.
    let mut methods = Vec::new();
    for method in Method::ALL {
        let signaling = method == Method::FlashOverlap;
        let waits: Vec<Value> = if signaling {
            thresholds
                .iter()
                .enumerate()
                .map(|(g, t)| {
                    Value::obj(vec![
                        ("group", Value::num(g as f64)),
                        (
                            "threshold",
                            t.map_or(Value::Null, |v| Value::num(f64::from(v))),
                        ),
                    ])
                })
                .collect()
        } else {
            Vec::new()
        };
        methods.push(Value::obj(vec![
            ("method", Value::str(method.to_string())),
            (
                "applicable",
                Value::Bool(method.applicable(pattern, system)),
            ),
            ("signaling", Value::Bool(signaling)),
            ("waits", Value::Arr(waits)),
            (
                "violations",
                if signaling {
                    violations_json(&report)
                } else {
                    Value::Arr(Vec::new())
                },
            ),
            ("clean", Value::Bool(!signaling || report.is_clean())),
        ]));
    }

    // The conformance matrix, static arm re-proven per cell: single-shot
    // cells mutate the plan's own model; chained cells a four-segment
    // ping-pong chain. The rearm mutation targets segment 2 — the first
    // table reuse, where the rearm chain exists to drop.
    let chain: Vec<&OverlapPlan> = vec![plan; 4];
    let mut cells = Vec::new();
    let mut nonconforming: Vec<String> = Vec::new();
    let mut verdicts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for cell in conformance_matrix() {
        let mutation = sample_mutation(cell.mutation);
        let mut model = match cell.path {
            ExecPath::Single => model_of_plan(plan),
            ExecPath::Pipeline => model_of_chain(&chain, "layer"),
            ExecPath::Sequence => model_of_chain(&chain, "batch"),
        };
        let segment = if cell.mutation == MutationKind::DropRearm {
            2.min(model.segments.len().saturating_sub(1))
        } else {
            0
        };
        model.apply(&mutation, segment);
        let mutated = planverify::verify(&model);
        let observed = mutated.violations.first().map_or("clean", |v| v.label());
        let conforms = match cell.expected {
            planverify::Expectation::CaughtStatic => !mutated.is_clean(),
            // Dynamic-only, benign, and n/a cells must stay statically
            // clean — a violation here would mean the matrix under-claims
            // the verifier (or the model over-claims the mutation).
            _ => mutated.is_clean(),
        };
        if !conforms {
            nonconforming.push(format!("({}, {})", cell.mutation, cell.path));
        }
        *verdicts.entry(cell.expected.label()).or_default() += 1;
        let seam = match runtime_seam(&mutation, cell.path) {
            RuntimeSeam::Signal(_) => "signal-mutation",
            RuntimeSeam::Fault(_) => "fault-injection",
            RuntimeSeam::SequenceEdge => "sequence-edge",
            RuntimeSeam::StaticOnly(_) => "static-only",
            RuntimeSeam::Nothing(_) => "none",
        };
        cells.push(Value::obj(vec![
            ("mutation", Value::str(cell.mutation.label())),
            ("path", Value::str(cell.path.label())),
            ("expected", Value::str(cell.expected.label())),
            (
                "reason",
                cell.expected.reason().map_or(Value::Null, Value::str),
            ),
            ("dynamic", Value::str(cell.dynamic.label())),
            (
                "caveat",
                cell.dynamic.caveat().map_or(Value::Null, Value::str),
            ),
            ("seam", Value::str(seam)),
            ("static_observed", Value::str(observed)),
            ("conforms", Value::Bool(conforms)),
        ]));
    }

    // Quantized serve-mix sweep: the token-bucketed TP down-projection
    // shapes the serving layer actually tunes, at this TP degree. Each
    // entry's bucket endpoints bound the padded-M range a batch can take.
    let bucket = serving::BatchConfig::default().token_bucket;
    let tp = cli.gpus as u32;
    let mut seen = std::collections::BTreeSet::new();
    let mut mix_entries = Vec::new();
    let mut mix_count = 0usize;
    let mut mix_clean = true;
    for entry in workloads::ServeMix::default_mix().entries() {
        if entry.model.intermediate % tp != 0 {
            // This TP degree cannot shard the model; the server would
            // reject it at startup too.
            continue;
        }
        for tokens in [entry.min_tokens, entry.max_tokens] {
            let m = workloads::quantize_tokens(tokens, bucket);
            if !seen.insert((entry.model.name, m)) {
                continue;
            }
            let k = entry.model.intermediate / tp;
            let dims = GemmDims::new(m, entry.model.hidden, k);
            let mix_plan = OverlapPlan::tuned(dims, CommPattern::AllReduce, system.clone())
                .map_err(|e| {
                    CliError::runtime(format!(
                        "serve-mix plan {m}x{}x{k} failed verification: {e}",
                        entry.model.hidden
                    ))
                })?;
            let mix_report = mix_plan.verify();
            mix_clean &= mix_report.is_clean();
            mix_count += 1;
            mix_entries.push(Value::obj(vec![
                ("model", Value::str(entry.model.name)),
                ("m", Value::num(f64::from(m))),
                ("n", Value::num(f64::from(entry.model.hidden))),
                ("k", Value::num(f64::from(k))),
                (
                    "groups",
                    Value::num(mix_plan.group_tile_counts().len() as f64),
                ),
                ("clean", Value::Bool(mix_report.is_clean())),
                ("violations", violations_json(&mix_report)),
            ]));
        }
    }

    let doc = Value::obj(vec![
        ("kind", Value::str("flashoverlap-verify")),
        (
            "workload",
            Value::obj(vec![
                ("m", Value::num(f64::from(cli.m))),
                ("n", Value::num(f64::from(cli.n))),
                ("k", Value::num(f64::from(cli.k))),
                ("primitive", Value::str(cli.primitive.to_string())),
                ("gpus", Value::num(cli.gpus as f64)),
                ("platform", Value::str(system.arch.name)),
            ]),
        ),
        (
            "plan",
            Value::obj(vec![
                ("partition", Value::str(plan.partition.to_string())),
                ("waves", Value::num(f64::from(plan.total_waves()))),
                ("groups", Value::num(plan.group_tile_counts().len() as f64)),
            ]),
        ),
        (
            "static",
            Value::obj(vec![
                ("clean", Value::Bool(report.is_clean())),
                ("violations", violations_json(&report)),
                ("stats", stats_json(&report)),
            ]),
        ),
        ("methods", Value::Arr(methods)),
        ("matrix", Value::Arr(cells)),
        (
            "caveats",
            Value::Arr(
                caveats()
                    .iter()
                    .map(|c| {
                        Value::obj(vec![
                            ("id", Value::str(c.id)),
                            ("summary", Value::str(c.summary)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("serve_mix", Value::Arr(mix_entries)),
    ]);

    let mut out = String::new();
    out.push_str(&format!(
        "static   : {} — {} waits, {} tile footprints, {} reads proven\n",
        if report.is_clean() {
            "clean"
        } else {
            "VIOLATIONS"
        },
        report.stats.waits,
        report.stats.tiles,
        report.stats.reads,
    ));
    for v in &report.violations {
        out.push_str(&format!("  - {v}\n"));
    }
    let scheduled = thresholds.iter().filter(|t| t.is_some()).count();
    out.push_str(&format!(
        "methods  : FlashOverlap schedules {scheduled} wait(s); {} baselines are structurally wait-free\n",
        Method::ALL.len() - 1,
    ));
    let count = |label: &str| verdicts.get(label).copied().unwrap_or(0);
    out.push_str(&format!(
        "matrix   : {} cells — {} caught-static, {} caught-dynamic, {} benign, {} n/a; {}\n",
        conformance_matrix().len(),
        count("caught-static"),
        count("caught-dynamic"),
        count("benign"),
        count("not-applicable"),
        if nonconforming.is_empty() {
            "static arm conforms in every cell".to_string()
        } else {
            format!("NONCONFORMING: {}", nonconforming.join(", "))
        },
    ));
    out.push_str(&format!(
        "caveats  : {} dynamic-observability caveats documented\n",
        caveats().len(),
    ));
    out.push_str(&format!(
        "serve mix: {} quantized shapes at TP {} — {}\n",
        mix_count,
        cli.gpus,
        if mix_clean { "all clean" } else { "VIOLATIONS" },
    ));
    if let Some(path) = &cli.output.metrics_out {
        std::fs::write(path, doc.to_json_pretty())
            .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
        out.push_str(&format!("metrics written to {path}\n"));
    }
    if !report.is_clean() || !nonconforming.is_empty() || !mix_clean {
        return Err(CliError::runtime(format!("verification failed:\n{out}")));
    }
    Ok(out)
}

/// Executes the parsed command, returning the report text.
///
/// # Errors
///
/// Returns [`CliError`] on infeasible workloads or simulation failures.
pub fn execute(cli: &Cli) -> Result<String, CliError> {
    if cli.command == Command::Chaos {
        // Chaos builds its own miniature campaign system; the shared
        // plan-construction preamble below does not apply.
        return execute_chaos(cli);
    }
    if cli.command == Command::Serve {
        // Serve draws its GEMM shapes from the traffic mix, not -m/-n/-k.
        return execute_serve(cli);
    }
    if cli.command == Command::Bench {
        // Bench is a serve run with a byte-stable artifact; like serve,
        // it draws shapes from the traffic mix.
        return execute_bench(cli);
    }
    let dims = GemmDims::new(cli.m, cli.n, cli.k);
    let system = system_for(cli.platform, cli.gpus).with_algorithm(cli.algorithm);
    let pattern = pattern_for(cli.primitive, dims, cli.gpus, cli.seed);
    let plan = match &cli.partition {
        Some(partition) => {
            OverlapPlan::new(dims, pattern.clone(), system.clone(), partition.clone())
        }
        None => OverlapPlan::tuned(dims, pattern.clone(), system.clone()),
    }
    .map_err(|e| CliError::runtime(format!("plan construction failed: {e}")))?;

    let mut out = String::new();
    out.push_str(&format!(
        "workload : GEMM {}x{}x{} + {} on {} x {}\n",
        cli.m, cli.n, cli.k, cli.primitive, cli.gpus, system.arch.name
    ));
    out.push_str(&format!(
        "plan     : tile {}x{}, {} waves, partition {}\n",
        plan.config.tile.m,
        plan.config.tile.n,
        plan.total_waves(),
        plan.partition
    ));

    match cli.command {
        Command::Tune => {
            let outcome = predictive_search(dims, cli.primitive, &system);
            let predictor = LatencyPredictor::build(dims, cli.primitive, &system);
            out.push_str(&format!(
                "tuned    : partition {} ({} candidates scored)\n",
                outcome.partition, outcome.evaluated
            ));
            out.push_str(&format!(
                "predicted: {} overlapped vs {} serial ({:.3}x)\n",
                outcome.latency,
                predictor.predict_serial(),
                predictor.predict_serial().as_nanos() as f64 / outcome.latency.as_nanos() as f64
            ));
        }
        Command::Run => {
            let (report, sanitizer_text) = if cli.sanitize {
                let (report, text) = sanitized_run(cli, &plan)?;
                (report, Some(text))
            } else {
                let report = plan
                    .execute_with(&flashoverlap::ExecOptions::new())
                    .map_err(|e| CliError::runtime(format!("simulation failed: {e}")))?
                    .report;
                (report, None)
            };
            let base = nonoverlap_latency(dims, cli.primitive, &system);
            let theory = theoretical_latency(dims, cli.primitive, &system);
            out.push_str(&format!("latency  : {}\n", report.latency));
            out.push_str(&format!("gemm done: {}\n", report.gemm_done));
            for (g, done) in report.group_comm_done.iter().enumerate() {
                out.push_str(&format!("  group {g}: comm done at {done}\n"));
            }
            out.push_str(&format!(
                "vs serial: {:.3}x (non-overlap model {base}); theory bound {theory}\n",
                base.as_nanos() as f64 / report.latency.as_nanos() as f64
            ));
            if let Some(text) = sanitizer_text {
                out.push_str(&text);
            }
            if cli.output.metrics_out.is_some() {
                out.push_str(&profiled_report(cli, dims, &pattern, &system)?);
            }
        }
        Command::Compare => {
            let base = measure(Method::NonOverlap, dims, &pattern, &system)
                .map_err(|e| CliError::runtime(format!("baseline failed: {e}")))?;
            out.push_str("method comparison (speedup over non-overlap):\n");
            for method in Method::ALL {
                if !method.applicable(&pattern, &system) {
                    out.push_str(&format!("  {method:<22} n/a (requires P2P)\n"));
                    continue;
                }
                let latency = measure(method, dims, &pattern, &system)
                    .map_err(|e| CliError::runtime(format!("{method} failed: {e}")))?;
                out.push_str(&format!(
                    "  {method:<22} {latency:>12}  {:.3}x\n",
                    base.as_nanos() as f64 / latency.as_nanos() as f64
                ));
            }
            if cli.output.metrics_out.is_some() {
                out.push_str(&profiled_report(cli, dims, &pattern, &system)?);
            }
        }
        Command::Timeline => {
            let out_traced = plan
                .execute_with(&flashoverlap::ExecOptions::new().trace())
                .map_err(|e| CliError::runtime(format!("simulation failed: {e}")))?;
            let (report, spans) = (out_traced.report, out_traced.spans);
            // The ASCII view shows rank 0 (all ranks render identically),
            // but the exported trace covers every device.
            let rank0: Vec<gpu_sim::OpSpan> = spans
                .iter()
                .filter(|s| s.device == 0 && s.name != "callback")
                .copied()
                .collect();
            out.push_str(&format!("latency  : {}\n", report.latency));
            out.push_str(&render_timeline(&rank0, 100));
            if let Some(path) = &cli.output.trace_out {
                std::fs::write(path, telemetry::perfetto::trace_string(&spans, None))
                    .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
                out.push_str(&format!("perfetto trace written to {path}\n"));
            }
            if cli.sanitize {
                // The timeline above shows the *faithful* schedule; the
                // sanitizer pass replays it (with the seeded mutation, if
                // any) and appends its verdict.
                let (_, text) = sanitized_run(cli, &plan)?;
                out.push_str(&text);
            }
        }
        Command::Profile => {
            out.push_str(&profiled_report(cli, dims, &pattern, &system)?);
        }
        Command::Verify => {
            out.push_str(&execute_verify(cli, &plan, &pattern, &system)?);
        }
        Command::Analyze => {
            out.push_str(&execute_analyze(cli, &plan, &pattern, &system)?);
        }
        // Dispatched before the plan preamble above.
        Command::Chaos => unreachable!("chaos is handled by execute_chaos"),
        Command::Serve => unreachable!("serve is handled by execute_serve"),
        Command::Bench => unreachable!("bench is handled by execute_bench"),
    }
    Ok(out)
}

/// Convenience for tests: execute against a parsed argv.
pub fn execute_argv(argv: &[String]) -> Result<String, CliError> {
    execute(&Cli::parse(argv)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn tune_reports_partition_and_prediction() {
        let out = execute_argv(&argv("tune -m 2048 -n 4096 -k 8192")).unwrap();
        assert!(out.contains("tuned"));
        assert!(out.contains("predicted"));
        assert!(out.contains("candidates scored"));
    }

    #[test]
    fn run_reports_latency_and_groups() {
        let out = execute_argv(&argv("run -m 2048 -n 4096 -k 8192 --gpus 2")).unwrap();
        assert!(out.contains("latency"));
        assert!(out.contains("group 0"));
        assert!(out.contains("vs serial"));
    }

    #[test]
    fn run_accepts_explicit_partition() {
        // 2048x4096 -> 256 tiles -> 3 contended waves on the 4090.
        let out = execute_argv(&argv("run -m 2048 -n 4096 -k 4096 --partition 1,2")).unwrap();
        assert!(out.contains("partition (1,2)"));
    }

    #[test]
    fn compare_lists_every_method() {
        let out = execute_argv(&argv("compare -m 2048 -n 4096 -k 4096 --gpus 2")).unwrap();
        assert!(out.contains("Non-overlap"));
        assert!(out.contains("FlashOverlap"));
        assert!(out.contains("n/a (requires P2P)"), "PCIe hides FLUX");
        let a800 = execute_argv(&argv(
            "compare -m 2048 -n 4096 -k 4096 --gpus 2 --platform a800",
        ))
        .unwrap();
        assert!(a800.contains("FLUX"));
        assert!(!a800.contains("n/a"));
    }

    #[test]
    fn timeline_renders_streams() {
        let out = execute_argv(&argv("timeline -m 2048 -n 4096 -k 4096")).unwrap();
        assert!(out.contains("dev0 s0"));
        assert!(out.contains("dev0 s1"));
        assert!(out.contains('G'), "gemm glyph present");
        assert!(out.contains('C'), "collective glyph present");
    }

    #[test]
    fn bad_partition_surfaces_as_runtime_error() {
        let err = execute_argv(&argv(
            "run -m 2048 -n 4096 -k 4096 --partition 1,1,1,1,1,1,1",
        ))
        .unwrap_err();
        assert!(!err.show_usage);
        assert!(err.message.contains("plan construction failed"));
    }

    #[test]
    fn run_with_sanitize_reports_clean() {
        let out = execute_argv(&argv("run -m 2048 -n 4096 -k 4096 --gpus 2 --sanitize")).unwrap();
        assert!(out.contains("simsan: clean"), "{out}");
        assert!(out.contains("vs serial"), "sanitize keeps the run report");
    }

    #[test]
    fn timeline_with_dropped_signal_flags_use_before_signal() {
        // Group 0's wait guards the very first collective send, so dropping
        // it is detectable at any scale.
        let out = execute_argv(&argv(
            "timeline -m 2048 -n 4096 -k 4096 --gpus 2 --drop-signal 0,0",
        ))
        .unwrap();
        assert!(out.contains("dev0 s0"), "timeline still renders");
        assert!(out.contains("mutation : DropWait"), "{out}");
        assert!(out.contains("use before signal"), "{out}");
    }

    #[test]
    fn out_of_range_mutation_is_rejected() {
        let err = execute_argv(&argv(
            "run -m 2048 -n 4096 -k 4096 --gpus 2 --drop-signal 0,9",
        ))
        .unwrap_err();
        assert!(err.message.contains("outside the plan"), "{}", err.message);
    }

    #[test]
    fn run_with_starved_signal_flags_lost_signal() {
        let out = execute_argv(&argv(
            "run -m 2048 -n 4096 -k 4096 --gpus 2 --starve-signal 0,0",
        ))
        .unwrap();
        assert!(out.contains("lost signal"), "{out}");
        assert!(out.contains("deadlock"), "{out}");
    }

    /// A fresh path in the per-test temp area.
    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flashoverlap-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn serve_reports_and_writes_deterministic_metrics() {
        let metrics_a = temp_path("serve-a.json");
        let metrics_b = temp_path("serve-b.json");
        let cmd = |path: &std::path::Path| {
            format!(
                "serve --requests 40 --seed 3 --metrics-out {}",
                path.display()
            )
        };
        let out = execute_argv(&argv(&cmd(&metrics_a))).unwrap();
        assert!(out.contains("serve: 40 offered"));
        assert!(out.contains("plan cache hit rate"));
        assert!(out.contains("goodput"));
        execute_argv(&argv(&cmd(&metrics_b))).unwrap();
        let a = std::fs::read_to_string(&metrics_a).unwrap();
        let b = std::fs::read_to_string(&metrics_b).unwrap();
        assert_eq!(a, b, "same seed must write byte-identical metrics");
        let json = telemetry::json::parse(&a).unwrap();
        assert_eq!(
            json.get("kind").and_then(|v| v.as_str()),
            Some("flashoverlap-serve")
        );
    }

    #[test]
    fn serve_across_nodes_reports_migration_and_replays() {
        let metrics_a = temp_path("serve-nodes-a.json");
        let metrics_b = temp_path("serve-nodes-b.json");
        let cmd = |path: &std::path::Path| {
            format!(
                "serve --requests 60 --rate 2400 --seed 11 --nodes 2 --replicas 4 \
                 --router locality --metrics-out {}",
                path.display()
            )
        };
        let out = execute_argv(&argv(&cmd(&metrics_a))).unwrap();
        assert!(out.contains("2 nodes:"), "{out}");
        assert!(out.contains("node 0:"), "{out}");
        assert!(out.contains("node 1:"), "{out}");
        assert!(out.contains("locality router"), "{out}");
        execute_argv(&argv(&cmd(&metrics_b))).unwrap();
        let a = std::fs::read_to_string(&metrics_a).unwrap();
        let b = std::fs::read_to_string(&metrics_b).unwrap();
        assert_eq!(a, b, "same seed must write byte-identical node metrics");
        let json = telemetry::json::parse(&a).unwrap();
        assert_eq!(json.get("nodes").and_then(|v| v.as_f64()), Some(2.0));
        let per_node = json.get("per_node").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(per_node.len(), 2);
    }

    #[test]
    fn serve_rejects_indivisible_node_counts() {
        let err = execute_argv(&argv("serve --nodes 3 --replicas 3 --gpus 4")).unwrap_err();
        assert!(err.message.contains("divide --gpus"), "{}", err.message);
        let err = execute_argv(&argv("serve --nodes 2 --replicas 3 --gpus 4")).unwrap_err();
        assert!(err.message.contains("divide --replicas"), "{}", err.message);
    }

    #[test]
    fn serve_baseline_reports_speedup() {
        let out = execute_argv(&argv("serve --requests 30 --seed 5 --baseline")).unwrap();
        assert!(out.contains("tuned arm:"));
        assert!(out.contains("baseline (non-overlap) arm:"));
        assert!(out.contains("speedup tuned vs baseline"));
    }

    #[test]
    fn serve_chaos_accounts_every_request() {
        let out = execute_argv(&argv("serve --requests 30 --seed 11 --chaos")).unwrap();
        assert!(out.contains("with chaos"));
        assert!(out.contains("completed"));
    }

    #[test]
    fn serve_scaling_reports_replica_and_pipelining_gains() {
        let metrics = temp_path("serve-scaling.json");
        let out = execute_argv(&argv(&format!(
            "serve --requests 120 --rate 2400 --seed 7 --replicas 4 \
             --router shape-affinity --scaling --metrics-out {}",
            metrics.display()
        )))
        .unwrap();
        assert!(out.contains("multi-replica arm (4 replicas):"), "{out}");
        assert!(out.contains("goodput scaling 1 -> 4 replicas:"), "{out}");
        assert!(out.contains("p95 pipelined"), "{out}");
        let json = telemetry::json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert_eq!(
            json.get("kind").and_then(|v| v.as_str()),
            Some("flashoverlap-serve-scaling")
        );
        let scaling = json
            .get("goodput_scaling")
            .and_then(|v| v.as_f64())
            .unwrap();
        assert!(scaling >= 3.0, "4 replicas must scale >= 3x, got {scaling}");
        let pipelining = json.get("pipelining").unwrap();
        let p95 = pipelining
            .get("pipelined_p95_ns")
            .and_then(|v| v.as_f64())
            .unwrap();
        let serial = pipelining
            .get("serial_p95_ns")
            .and_then(|v| v.as_f64())
            .unwrap();
        assert!(p95 < serial, "pipelined p95 {p95} vs serial {serial}");
    }

    #[test]
    fn serve_plan_cache_round_trips_through_files() {
        let cache = temp_path("serve-plan-cache.json");
        let out = execute_argv(&argv(&format!(
            "serve --requests 40 --seed 3 --plan-cache-out {}",
            cache.display()
        )))
        .unwrap();
        assert!(out.contains("plan cache written to"), "{out}");
        let doc = telemetry::json::parse(&std::fs::read_to_string(&cache).unwrap()).unwrap();
        assert_eq!(
            doc.get("kind").and_then(|v| v.as_str()),
            Some("flashoverlap-plan-cache")
        );
        // Warm start from the snapshot: same accounting, zero misses.
        let warm = execute_argv(&argv(&format!(
            "serve --requests 40 --seed 3 --plan-cache-in {}",
            cache.display()
        )))
        .unwrap();
        assert!(warm.contains("serve: 40 offered"), "{warm}");
        assert!(warm.contains("hit rate 100.0%"), "{warm}");
    }

    #[test]
    fn serve_rejects_mismatched_plan_cache() {
        let cache = temp_path("serve-plan-cache-4090.json");
        execute_argv(&argv(&format!(
            "serve --requests 20 --seed 3 --plan-cache-out {}",
            cache.display()
        )))
        .unwrap();
        // Same snapshot against a different platform: fingerprint error.
        let err = execute_argv(&argv(&format!(
            "serve --requests 20 --seed 3 --platform a800 --plan-cache-in {}",
            cache.display()
        )))
        .unwrap_err();
        assert!(err.message.contains("tuned for system"), "{}", err.message);
    }

    #[test]
    fn profile_emits_summary_trace_and_metrics() {
        let trace = temp_path("profile-trace.json");
        let metrics = temp_path("profile-metrics.json");
        let out = execute_argv(&argv(&format!(
            "profile -m 2048 -n 4096 -k 4096 --gpus 2 --platform a800 \
             --trace-out {} --metrics-out {}",
            trace.display(),
            metrics.display()
        )))
        .unwrap();
        assert!(out.contains("overlap-eff"), "{out}");
        assert!(out.contains("FlashOverlap"), "{out}");
        assert!(out.contains("signal latency"), "{out}");
        assert!(out.contains("link d0->d1"), "{out}");
        // Both artifacts must be valid JSON with the expected shape.
        let trace_doc = telemetry::json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let events = trace_doc.get("traceEvents").unwrap().as_arr().unwrap();
        for device in [0.0, 1.0] {
            assert!(
                events.iter().any(|e| {
                    e.get("ph").and_then(telemetry::json::Value::as_str) == Some("X")
                        && e.get("pid").and_then(telemetry::json::Value::as_f64) == Some(device)
                }),
                "trace covers device {device}"
            );
        }
        let metrics_doc =
            telemetry::json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert_eq!(
            metrics_doc.get("methods").unwrap().as_arr().unwrap().len(),
            5
        );
    }

    #[test]
    fn run_and_compare_accept_metrics_out() {
        let metrics = temp_path("run-metrics.json");
        let out = execute_argv(&argv(&format!(
            "run -m 2048 -n 4096 -k 4096 --gpus 2 --metrics-out {}",
            metrics.display()
        )))
        .unwrap();
        assert!(out.contains("metrics written to"), "{out}");
        let doc = telemetry::json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(doc.get("signal_latency").is_some());
        let metrics = temp_path("compare-metrics.json");
        let out = execute_argv(&argv(&format!(
            "compare -m 2048 -n 4096 -k 4096 --gpus 2 --metrics-out {}",
            metrics.display()
        )))
        .unwrap();
        assert!(out.contains("metrics written to"), "{out}");
    }

    #[test]
    fn timeline_trace_covers_every_device() {
        // Regression: the exported trace used to keep only rank 0's spans.
        let trace = temp_path("timeline-trace.json");
        let out = execute_argv(&argv(&format!(
            "timeline -m 2048 -n 4096 -k 4096 --gpus 2 --trace-out {}",
            trace.display()
        )))
        .unwrap();
        assert!(out.contains("perfetto trace written to"), "{out}");
        let doc = telemetry::json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let devices: std::collections::BTreeSet<i64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(telemetry::json::Value::as_str) == Some("X"))
            .filter_map(|e| e.get("pid").and_then(telemetry::json::Value::as_f64))
            .map(|p| p as i64)
            .collect();
        assert_eq!(devices.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn chaos_sweep_reports_verdicts_and_metrics() {
        let metrics = temp_path("chaos-metrics.json");
        let out = execute_argv(&argv(&format!(
            "chaos --seed 7 --campaigns 5 --metrics-out {}",
            metrics.display()
        )))
        .unwrap();
        assert!(out.contains("chaos    : 5 campaigns, base seed 7"), "{out}");
        assert!(out.contains("verdicts"), "{out}");
        assert!(out.contains("hangs    : 0"), "{out}");
        assert!(out.contains("violations: 0"), "{out}");
        let doc = telemetry::json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert_eq!(
            doc.get("violations")
                .and_then(telemetry::json::Value::as_f64),
            Some(0.0)
        );
        assert_eq!(
            doc.get("results").unwrap().as_arr().unwrap().len(),
            5,
            "one entry per campaign"
        );
    }

    #[test]
    fn verify_reports_clean_and_writes_deterministic_metrics() {
        let metrics_a = temp_path("verify-a.json");
        let metrics_b = temp_path("verify-b.json");
        let cmd = |path: &std::path::Path| {
            format!(
                "verify -m 2048 -n 4096 -k 4096 --gpus 2 --metrics-out {}",
                path.display()
            )
        };
        let out = execute_argv(&argv(&cmd(&metrics_a))).unwrap();
        assert!(out.contains("static   : clean"), "{out}");
        assert!(out.contains("conforms in every cell"), "{out}");
        assert!(out.contains("serve mix:"), "{out}");
        assert!(out.contains("all clean"), "{out}");
        execute_argv(&argv(&cmd(&metrics_b))).unwrap();
        let a = std::fs::read_to_string(&metrics_a).unwrap();
        let b = std::fs::read_to_string(&metrics_b).unwrap();
        assert_eq!(a, b, "verify must write byte-identical reports");
        let doc = telemetry::json::parse(&a).unwrap();
        assert_eq!(
            doc.get("kind").and_then(|v| v.as_str()),
            Some("flashoverlap-verify")
        );
        assert_eq!(
            doc.get("static")
                .and_then(|s| s.get("clean"))
                .and_then(telemetry::json::Value::as_bool),
            Some(true)
        );
        let matrix = doc.get("matrix").unwrap().as_arr().unwrap();
        assert_eq!(matrix.len(), 18, "6 mutations x 3 paths");
        assert!(
            matrix
                .iter()
                .all(|c| c.get("conforms").and_then(telemetry::json::Value::as_bool) == Some(true)),
            "every cell's static arm must conform"
        );
        let caught_static = matrix
            .iter()
            .filter(|c| c.get("expected").and_then(|v| v.as_str()) == Some("caught-static"))
            .count();
        assert_eq!(caught_static, 11);
        assert_eq!(doc.get("caveats").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("methods").unwrap().as_arr().unwrap().len(), 5);
        let mix = doc.get("serve_mix").unwrap().as_arr().unwrap();
        assert!(!mix.is_empty(), "default mix yields verifiable shapes");
        assert!(mix
            .iter()
            .all(|e| e.get("clean").and_then(telemetry::json::Value::as_bool) == Some(true)));
    }

    #[test]
    fn verify_rejects_a_statically_invalid_partition() {
        // A partition summing short of the wave count fails construction;
        // verify surfaces that before any simulation could run.
        let err = execute_argv(&argv(
            "verify -m 2048 -n 4096 -k 4096 --partition 1,1,1,1,1,1,1",
        ))
        .unwrap_err();
        assert!(!err.show_usage);
        assert!(
            err.message.contains("plan construction failed"),
            "{}",
            err.message
        );
    }

    #[test]
    fn all_to_all_compare_runs() {
        let out = execute_argv(&argv(
            "compare -m 2048 -n 2048 -k 2048 --primitive a2a --gpus 4",
        ))
        .unwrap();
        assert!(out.contains("FlashOverlap"));
    }

    #[test]
    fn analyze_attributes_less_signal_wait_than_per_wave() {
        let metrics_a = temp_path("analyze-a.json");
        let metrics_b = temp_path("analyze-b.json");
        let trace = temp_path("analyze-trace.json");
        let cmd = |path: &std::path::Path| {
            format!(
                "analyze -m 2048 -n 4096 -k 4096 --gpus 2 --platform a800 --metrics-out {}",
                path.display()
            )
        };
        let out = execute_argv(&argv(&format!(
            "{} --trace-out {}",
            cmd(&metrics_a),
            trace.display()
        )))
        .unwrap();
        assert!(out.contains("tuned"), "{out}");
        assert!(out.contains("per-wave"), "{out}");
        assert!(
            out.contains("both attributions sum exactly to their makespans"),
            "{out}"
        );
        execute_argv(&argv(&cmd(&metrics_b))).unwrap();
        let a = std::fs::read_to_string(&metrics_a).unwrap();
        let b = std::fs::read_to_string(&metrics_b).unwrap();
        assert_eq!(a, b, "analyze must write byte-identical metrics");

        let doc = telemetry::json::parse(&a).unwrap();
        assert_eq!(
            doc.get("kind").and_then(|v| v.as_str()),
            Some("flashoverlap-analyze")
        );
        let wait = |arm: &str| {
            doc.get(arm)
                .and_then(|v| v.get("attribution"))
                .and_then(|v| v.get("categories"))
                .and_then(|v| v.get("signal_wait_ns"))
                .and_then(telemetry::json::Value::as_f64)
                .unwrap()
        };
        // The paper's tuning win, read directly off the critical path:
        // the tuned partition spends strictly less time blocked on
        // signals than naive per-wave signaling on the same workload.
        assert!(
            wait("tuned") < wait("per_wave"),
            "tuned signal-wait {} must beat per-wave {}",
            wait("tuned"),
            wait("per_wave")
        );
        assert!(
            doc.get("signal_wait_saved_ns")
                .and_then(telemetry::json::Value::as_f64)
                .unwrap()
                > 0.0
        );
        // The highlighted trace carries a critical-path track beyond the
        // per-device ones.
        let trace_doc = telemetry::json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let events = trace_doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(
            events.iter().any(|e| {
                e.get("ph").and_then(telemetry::json::Value::as_str) == Some("M")
                    && e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(telemetry::json::Value::as_str)
                        == Some("critical path")
            }),
            "trace must carry the critical-path track"
        );
    }

    #[test]
    fn bench_writes_byte_stable_artifact_with_exact_attribution() {
        let bench_a = temp_path("bench-a.json");
        let bench_b = temp_path("bench-b.json");
        let cmd = |path: &std::path::Path| {
            format!(
                "bench --requests 60 --seed 7 --metrics-out {}",
                path.display()
            )
        };
        let out = execute_argv(&argv(&cmd(&bench_a))).unwrap();
        assert!(out.contains("wall-clock"), "{out}");
        assert!(out.contains("bench report written to"), "{out}");
        execute_argv(&argv(&cmd(&bench_b))).unwrap();
        let a = std::fs::read_to_string(&bench_a).unwrap();
        let b = std::fs::read_to_string(&bench_b).unwrap();
        assert_eq!(
            a, b,
            "same seed must produce a byte-identical bench artifact"
        );

        let doc = telemetry::json::parse(&a).unwrap();
        assert_eq!(
            doc.get("kind").and_then(|v| v.as_str()),
            Some("flashoverlap-bench-serve")
        );
        assert_eq!(
            doc.get("attribution")
                .and_then(|v| v.get("identity_holds"))
                .and_then(telemetry::json::Value::as_bool),
            Some(true),
            "serve attribution must tile the makespan exactly"
        );
        // Category nanoseconds sum to the makespan — the identity the CI
        // gate re-checks from the committed artifact.
        let attribution = doc.get("attribution").unwrap();
        let makespan = attribution
            .get("makespan_ns")
            .and_then(telemetry::json::Value::as_f64)
            .unwrap();
        let categories = attribution.get("categories").unwrap();
        let total: f64 = telemetry::Category::ALL
            .iter()
            .map(|c| {
                categories
                    .get(&format!("{}_ns", c.key()))
                    .and_then(telemetry::json::Value::as_f64)
                    .unwrap()
            })
            .sum();
        assert_eq!(total, makespan);
    }

    #[test]
    fn bench_parallel_matches_serial_artifact_and_writes_wallclock_trend() {
        let serial = temp_path("bench-serial.json");
        let parallel = temp_path("bench-parallel.json");
        let trend = temp_path("bench-wallclock.json");
        let out = execute_argv(&argv(&format!(
            "bench --requests 60 --seed 7 --replicas 4 --rate 2400 --metrics-out {}",
            serial.display()
        )))
        .unwrap();
        assert!(out.contains("serial x1 thread"), "{out}");
        let out = execute_argv(&argv(&format!(
            "bench --requests 60 --seed 7 --replicas 4 --rate 2400 --parallel 4 \
             --metrics-out {} --wallclock-out {}",
            parallel.display(),
            trend.display()
        )))
        .unwrap();
        assert!(out.contains("parallel x4 threads"), "{out}");
        assert!(out.contains("wall-clock trend written to"), "{out}");
        assert_eq!(
            std::fs::read_to_string(&serial).unwrap(),
            std::fs::read_to_string(&parallel).unwrap(),
            "the virtual-time artifact must not depend on --parallel"
        );
        let doc = telemetry::json::parse(&std::fs::read_to_string(&trend).unwrap()).unwrap();
        assert_eq!(
            doc.get("kind").and_then(|v| v.as_str()),
            Some("flashoverlap-bench-wallclock")
        );
        assert_eq!(doc.get("mode").and_then(|v| v.as_str()), Some("parallel"));
        assert_eq!(
            doc.get("threads").and_then(telemetry::json::Value::as_f64),
            Some(4.0)
        );
        assert!(
            doc.get("wall_s")
                .and_then(telemetry::json::Value::as_f64)
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn serve_validate_mode_diffs_the_engines() {
        let out = execute_argv(&argv(
            "serve --requests 40 --replicas 2 --parallel validate",
        ))
        .unwrap();
        assert!(out.contains("byte-identical"), "{out}");
        let err = execute_argv(&argv("serve --scaling --parallel validate")).unwrap_err();
        assert!(err.show_usage, "{}", err.message);
        let err = execute_argv(&argv("bench --parallel validate")).unwrap_err();
        assert!(err.show_usage, "{}", err.message);
    }
}
