//! Argument parsing for the `flashoverlap` binary.

use std::error::Error;
use std::fmt;

use collectives::{Algorithm, Primitive};
use flashoverlap::{SignalMutation, WavePartition};
use serving::RouterPolicy;
use workloads::GpuKind;

/// A CLI error: message plus whether usage help should follow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Whether the caller should print usage after the message.
    pub show_usage: bool,
}

impl CliError {
    /// A usage error (the caller prints the help text after it).
    pub fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            show_usage: true,
        }
    }

    /// A runtime (non-usage) error.
    pub fn runtime(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            show_usage: false,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for CliError {}

/// The selected subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Tune the wave partition and print it with the predicted latency.
    Tune,
    /// Simulate one overlapped run and print the report.
    Run,
    /// Measure every applicable method and print the speedup table.
    Compare,
    /// Render the per-stream ASCII timeline of one run.
    Timeline,
    /// Profile every method with telemetry attached: Perfetto trace,
    /// signal-latency / link-utilization metrics, overlap efficiency.
    Profile,
    /// Run a seeded fault-injection campaign sweep through the watchdog
    /// runtime and verify every verdict against the fault-free reference.
    Chaos,
    /// Serve a seeded request trace through the continuous-batching
    /// scheduler with the tuned-plan cache and print the SLO report.
    Serve,
    /// Statically verify the plan's signal/wait schedule and print the
    /// mutation conformance matrix, without running the simulator.
    Verify,
    /// Attribute every nanosecond of one run's critical path to an
    /// exclusive category (compute, transfer, signal-wait, ...) and
    /// compare the tuned plan against the naive per-wave baseline.
    Analyze,
    /// Run the serve regression benchmark and write `BENCH_serve.json`
    /// (virtual-time metrics only, byte-stable for a fixed seed).
    Bench,
}

/// Arrival process selector for the `serve` command (rates attach in
/// the command layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeArrival {
    /// Poisson arrivals at `--rate`.
    Poisson,
    /// Calm/burst modulated arrivals around `--rate`.
    Bursty,
}

/// Raw argv tokens mid-parse; flag groups pull their values from it.
type ArgIter<'a> = std::iter::Peekable<std::slice::Iter<'a, String>>;

/// Pulls the path value following a flag, or errors with usage.
fn parse_path(flag: &str, value: Option<&String>) -> Result<String, CliError> {
    Ok(value
        .ok_or_else(|| CliError::usage(format!("missing value for {flag}")))?
        .clone())
}

/// Artifact output paths shared across commands. The flags used to be
/// parsed by per-command copy-paste; this group owns them once and
/// every command reads the same fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutputArgs {
    /// `--trace-out`: Perfetto/Chrome trace (timeline, profile, serve,
    /// analyze).
    pub trace_out: Option<String>,
    /// `--metrics-out`: machine-readable metrics report JSON.
    pub metrics_out: Option<String>,
    /// `--wallclock-out`: bench host wall-clock trend artifact
    /// (`BENCH_wallclock.json` schema — tracked, never byte-gated).
    pub wallclock_out: Option<String>,
}

impl OutputArgs {
    /// Consumes `flag` (and its value) if it belongs to this group;
    /// returns whether it did.
    fn accept(&mut self, flag: &str, it: &mut ArgIter<'_>) -> Result<bool, CliError> {
        match flag {
            "--trace-out" => self.trace_out = Some(parse_path(flag, it.next())?),
            "--metrics-out" => self.metrics_out = Some(parse_path(flag, it.next())?),
            "--wallclock-out" => self.wallclock_out = Some(parse_path(flag, it.next())?),
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Tuned-plan-cache snapshot persistence (`serve`/`bench`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanCacheArgs {
    /// `--plan-cache-in`: snapshot preloaded into every replica.
    pub load: Option<String>,
    /// `--plan-cache-out`: snapshot written after serving.
    pub save: Option<String>,
}

impl PlanCacheArgs {
    /// Consumes `flag` (and its value) if it belongs to this group;
    /// returns whether it did.
    fn accept(&mut self, flag: &str, it: &mut ArgIter<'_>) -> Result<bool, CliError> {
        match flag {
            "--plan-cache-in" => self.load = Some(parse_path(flag, it.next())?),
            "--plan-cache-out" => self.save = Some(parse_path(flag, it.next())?),
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Replica-engine execution mode (`--parallel`, serve/bench). The
/// virtual-time report is byte-identical across every setting; only
/// host wall-clock changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ParallelArg {
    /// Run every replica engine inline on the serve loop's thread.
    #[default]
    Serial,
    /// Run the replica engines on this many worker threads.
    Threads(usize),
    /// Run both the serial and parallel engine pools and diff the
    /// reports byte-for-byte (serve only).
    Validate,
}

impl ParallelArg {
    /// Consumes `--parallel <n|serial|validate>` if present; returns
    /// whether it did.
    fn accept(&mut self, flag: &str, it: &mut ArgIter<'_>) -> Result<bool, CliError> {
        if flag != "--parallel" {
            return Ok(false);
        }
        let v = it
            .next()
            .ok_or_else(|| CliError::usage("missing value for --parallel"))?;
        *self = match v.to_lowercase().as_str() {
            "serial" => ParallelArg::Serial,
            "validate" => ParallelArg::Validate,
            n => {
                let threads: usize = n.parse().map_err(|_| {
                    CliError::usage(format!(
                        "--parallel expects a thread count, `serial`, or `validate` (got {v})"
                    ))
                })?;
                if threads == 0 {
                    return Err(CliError::usage(
                        "--parallel thread count must be at least 1",
                    ));
                }
                ParallelArg::Threads(threads)
            }
        };
        Ok(true)
    }
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Subcommand.
    pub command: Command,
    /// GEMM M.
    pub m: u32,
    /// GEMM N.
    pub n: u32,
    /// GEMM K.
    pub k: u32,
    /// Communication primitive.
    pub primitive: Primitive,
    /// GPU count.
    pub gpus: usize,
    /// Platform.
    pub platform: GpuKind,
    /// Explicit wave partition (otherwise tuned).
    pub partition: Option<WavePartition>,
    /// Routing seed for All-to-All workloads.
    pub seed: u64,
    /// Collective algorithm.
    pub algorithm: Algorithm,
    /// Artifact output paths (`--trace-out`, `--metrics-out`,
    /// `--wallclock-out`).
    pub output: OutputArgs,
    /// Run under the SimSan happens-before sanitizer (run/timeline).
    pub sanitize: bool,
    /// Seeded signal mutation for sanitizer self-tests (implies
    /// `--sanitize`).
    pub mutation: Option<SignalMutation>,
    /// Number of fault campaigns for the `chaos` command.
    pub campaigns: usize,
    /// Number of requests for the `serve` command.
    pub requests: usize,
    /// Arrival process for the `serve` command.
    pub arrival: ServeArrival,
    /// Mean arrival rate in requests per second (`serve`).
    pub rate: f64,
    /// Latency SLO in milliseconds (`serve`).
    pub slo_ms: f64,
    /// Arm per-batch fault injection during `serve`.
    pub serve_chaos: bool,
    /// Also serve the untuned non-overlap baseline and report speedups
    /// (`serve`).
    pub baseline: bool,
    /// Number of independent TP replica groups (`serve`).
    pub replicas: usize,
    /// Nodes the replicas are placed across; > 1 splits every TP group
    /// over a two-tier topology and arms inter-node migration
    /// accounting (`serve`).
    pub nodes: usize,
    /// Force this replica's first chaos chain to wedge so the
    /// quarantine → re-route path is reproducible (`serve`; requires
    /// `--chaos`).
    pub wedge_replica: Option<usize>,
    /// Routing policy assigning closed batches to replicas (`serve`).
    pub router: RouterPolicy,
    /// Disable cross-batch pipelining: full barrier between chained
    /// batches on a replica (`serve --no-pipeline`).
    pub no_pipeline: bool,
    /// Also serve the single-replica and unpipelined arms and report
    /// the scaling comparison (`serve --scaling`).
    pub scaling: bool,
    /// Tuned-plan-cache snapshot persistence (`serve`).
    pub plan_cache: PlanCacheArgs,
    /// Replica-engine execution mode (`serve`/`bench`).
    pub parallel: ParallelArg,
}

/// The usage text printed on `--help` or parse errors.
pub const USAGE: &str = "\
usage: flashoverlap <tune|run|compare|timeline|profile|verify|analyze|chaos|
                     serve|bench> [options]

options:
  -m, -n, -k <int>        GEMM dimensions (required except for chaos,
                          which defaults to its 384x512x64 campaign shape)
  --primitive <name>      allreduce | reducescatter | alltoall | allgather
                          (default: allreduce)
  --gpus <int>            parallel group size (default: 4)
  --platform <name>       rtx4090 | a800 (default: rtx4090)
  --partition <a,b,c>     explicit wave partition (default: tuned)
  --seed <int>            routing seed for alltoall (default: 7)
  --algorithm <name>      ring | direct | auto (default: ring)
  --trace-out <path>      timeline/profile: also write a Perfetto
                          (Chrome trace-event) JSON covering all devices
  --metrics-out <path>    run/compare/profile: also write the metrics
                          report JSON (signal latency, link utilization,
                          overlap efficiency)
  --sanitize              run/timeline: attach the SimSan happens-before
                          sanitizer and report races, lost signals, and
                          deadlocks after the run
  --drop-signal <r,g>     run/timeline: mutate the program to skip rank r's
                          signal wait for group g (sanitizer self-test;
                          implies --sanitize)
  --starve-signal <r,g>   run/timeline: mutate rank r's group-g wait to an
                          unreachable threshold (implies --sanitize)
  --campaigns <int>       chaos: number of seeded fault campaigns
                          (default: 20); campaign i draws faults from
                          seed + i
  --requests <int>        serve: requests to offer (default: 200)
  --arrival <name>        serve: poisson | bursty (default: poisson)
  --rate <float>          serve: mean arrival rate in requests per second
                          (default: 500); bursty alternates calm/burst
                          phases around this mean
  --slo-ms <float>        serve: latency SLO in milliseconds (default: 20)
  --chaos                 serve: arm a deterministic per-batch fault plan
                          and execute through the resilient runtime
  --baseline              serve: also serve the identical trace with
                          untuned non-overlap plans and report speedups
  --replicas <int>        serve: independent TP replica groups, each with
                          its own cluster and plan cache (default: 1)
  --nodes <int>           serve: place replicas across this many nodes
                          (replica r lives on node r mod nodes) over a
                          two-tier NVLink/HDR-IB topology; batches routed
                          off their home node pay an accounted inter-node
                          migration penalty (default: 1; requires
                          gpus and replicas divisible by nodes)
  --wedge-replica <int>   serve: force this replica's first chaos chain to
                          wedge unrecoverably; the replica is quarantined
                          and its queued batches re-route deterministically
                          (requires --chaos)
  --router <name>         serve: round-robin | least-loaded |
                          shape-affinity | locality (default: round-robin;
                          locality prefers same-node replicas and spills
                          across nodes only past a slack threshold)
  --no-pipeline           serve: full barrier between a replica's chained
                          batches instead of cross-batch pipelining
  --scaling               serve: also serve the single-replica and
                          unpipelined arms and report goodput scaling and
                          the pipelining p95 gain
  --plan-cache-out <path> serve: write the tuned-plan-cache snapshot
                          (keyed by the system fingerprint) after serving
  --plan-cache-in <path>  serve: preload every replica's plan cache from a
                          snapshot; a fingerprint mismatch is an error
  --parallel <n|serial|validate>
                          serve/bench: run the replica engines on n worker
                          threads instead of inline (default: serial).
                          virtual-time results are byte-identical for any
                          thread count; only host wall-clock changes.
                          validate (serve only) runs both engine pools and
                          fails unless the reports diff byte-equal
  --wallclock-out <path>  bench: also write the host wall-clock trend
                          artifact (wall seconds, events/sec, exec mode,
                          threads); tracked run-to-run, never byte-gated
  -h, --help              this text

verify proves the tuned (or --partition) plan's signal/wait schedule
safe from plan data alone — threshold feasibility, deadlock freedom,
tile-granular race/coverage — then re-proves the static arm of every
mutation-x-path conformance cell and checks each quantized serve-mix
shape; --metrics-out writes the machine-readable report. any violation
or nonconforming cell exits nonzero.

chaos verdicts: every campaign must end bit-exact (clean or recovered via
tail collectives) or degraded with a named cause; anything else counts as
a violation and fails the sweep.

serve accounting: every offered request terminates as clean, recovered,
degraded (chaos), or shed at admission; the report carries p50/p95/p99
latency, goodput, shed rate, plan-cache hit rate, batch-form/queue wait
percentiles, critical-path attribution, and predictor drift. serve
defaults to --gpus 2 and ignores -m/-n/-k (shapes come from the traffic
mix); --trace-out writes the request-lifecycle Perfetto trace.

analyze runs the tuned plan and the naive per-wave signaling baseline
(§4.1.1) on the same shape, walks each run's happens-before graph
backward from the last completion, and buckets every nanosecond of the
critical path into exclusive categories (gemm-compute,
collective-transfer, signal-wait, rearm-stall, recovery, idle) that sum
exactly to the makespan; --metrics-out writes the comparison JSON and
--trace-out writes the tuned run's Perfetto trace with the critical
path highlighted as its own track.

bench serves a seeded trace like serve and writes BENCH_serve.json
(default; override with --metrics-out): virtual-time metrics only —
throughput, latency percentiles, wait percentiles, attribution shares —
so the file is byte-identical for a fixed seed and any --parallel
setting, while host wall-clock (monotonic-clock deltas) and events/sec
go to stdout — and to --wallclock-out — for regression eyeballing.
";

fn parse_u32(flag: &str, value: Option<&String>) -> Result<u32, CliError> {
    value
        .ok_or_else(|| CliError::usage(format!("missing value for {flag}")))?
        .parse()
        .map_err(|_| CliError::usage(format!("invalid integer for {flag}")))
}

fn parse_u64(flag: &str, value: Option<&String>) -> Result<u64, CliError> {
    value
        .ok_or_else(|| CliError::usage(format!("missing value for {flag}")))?
        .parse()
        .map_err(|_| CliError::usage(format!("invalid integer for {flag}")))
}

fn parse_f64(flag: &str, value: Option<&String>) -> Result<f64, CliError> {
    let v: f64 = value
        .ok_or_else(|| CliError::usage(format!("missing value for {flag}")))?
        .parse()
        .map_err(|_| CliError::usage(format!("invalid number for {flag}")))?;
    if !v.is_finite() || v <= 0.0 {
        return Err(CliError::usage(format!("{flag} must be positive")));
    }
    Ok(v)
}

/// Parses a `rank,group` pair for the signal-mutation flags.
fn parse_rank_group(flag: &str, value: Option<&String>) -> Result<(usize, usize), CliError> {
    let v = value.ok_or_else(|| CliError::usage(format!("missing value for {flag}")))?;
    let parts: Vec<&str> = v.split(',').map(str::trim).collect();
    let [rank, group] = parts.as_slice() else {
        return Err(CliError::usage(format!("{flag} expects RANK,GROUP")));
    };
    let rank = rank
        .parse()
        .map_err(|_| CliError::usage(format!("invalid rank for {flag}")))?;
    let group = group
        .parse()
        .map_err(|_| CliError::usage(format!("invalid group for {flag}")))?;
    Ok((rank, group))
}

impl Cli {
    /// Parses `argv` (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] with usage on malformed input.
    pub fn parse(argv: &[String]) -> Result<Cli, CliError> {
        let mut it = argv.iter().peekable();
        let command = match it.next().map(String::as_str) {
            Some("tune") => Command::Tune,
            Some("run") => Command::Run,
            Some("compare") => Command::Compare,
            Some("timeline") => Command::Timeline,
            Some("profile") => Command::Profile,
            Some("chaos") => Command::Chaos,
            Some("serve") => Command::Serve,
            Some("verify") => Command::Verify,
            Some("analyze") => Command::Analyze,
            Some("bench") => Command::Bench,
            Some("-h") | Some("--help") | None => {
                return Err(CliError::usage("".to_string()));
            }
            Some(other) => {
                return Err(CliError::usage(format!("unknown command: {other}")));
            }
        };
        let mut m = None;
        let mut n = None;
        let mut k = None;
        let mut primitive = Primitive::AllReduce;
        // Chaos sweeps default to the miniature two-rank campaign system
        // (matching `ChaosConfig::default`) so 50-campaign runs stay fast;
        // serve does the same so hundred-request traces stay fast.
        let mut gpus = if matches!(command, Command::Chaos | Command::Serve | Command::Bench) {
            2
        } else {
            4
        };
        let mut platform = GpuKind::Rtx4090;
        let mut partition = None;
        let mut seed = 7u64;
        let mut algorithm = Algorithm::Ring;
        let mut output = OutputArgs::default();
        let mut sanitize = false;
        let mut mutation = None;
        let mut campaigns = 20usize;
        let mut requests = 200usize;
        let mut arrival = ServeArrival::Poisson;
        let mut rate = 500.0f64;
        let mut slo_ms = 20.0f64;
        let mut serve_chaos = false;
        let mut baseline = false;
        let mut replicas = 1usize;
        let mut nodes = 1usize;
        let mut wedge_replica = None;
        let mut router = RouterPolicy::RoundRobin;
        let mut no_pipeline = false;
        let mut scaling = false;
        let mut plan_cache = PlanCacheArgs::default();
        let mut parallel = ParallelArg::default();
        while let Some(flag) = it.next() {
            // Shared flag groups first (the hand-rolled equivalent of a
            // flattened sub-struct); singleton flags fall through.
            if output.accept(flag, &mut it)?
                || plan_cache.accept(flag, &mut it)?
                || parallel.accept(flag, &mut it)?
            {
                continue;
            }
            match flag.as_str() {
                "-m" => m = Some(parse_u32("-m", it.next())?),
                "-n" => n = Some(parse_u32("-n", it.next())?),
                "-k" => k = Some(parse_u32("-k", it.next())?),
                "--gpus" => gpus = parse_u32("--gpus", it.next())? as usize,
                "--seed" => seed = parse_u64("--seed", it.next())?,
                "--primitive" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::usage("missing value for --primitive"))?;
                    primitive = match v.to_lowercase().as_str() {
                        "allreduce" | "ar" => Primitive::AllReduce,
                        "reducescatter" | "rs" => Primitive::ReduceScatter,
                        "alltoall" | "a2a" => Primitive::AllToAll,
                        "allgather" | "ag" => Primitive::AllGather,
                        other => {
                            return Err(CliError::usage(format!("unknown primitive: {other}")));
                        }
                    };
                }
                "--platform" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::usage("missing value for --platform"))?;
                    platform = match v.to_lowercase().as_str() {
                        "rtx4090" | "4090" => GpuKind::Rtx4090,
                        "a800" => GpuKind::A800,
                        other => {
                            return Err(CliError::usage(format!("unknown platform: {other}")));
                        }
                    };
                }
                "--partition" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::usage("missing value for --partition"))?;
                    let sizes: Result<Vec<u32>, _> =
                        v.split(',').map(|p| p.trim().parse::<u32>()).collect();
                    let sizes = sizes
                        .map_err(|_| CliError::usage("partition must be comma-separated ints"))?;
                    if sizes.is_empty() || sizes.contains(&0) {
                        return Err(CliError::usage("partition sizes must be positive"));
                    }
                    partition = Some(WavePartition::new(sizes));
                }
                "--algorithm" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::usage("missing value for --algorithm"))?;
                    algorithm = match v.to_lowercase().as_str() {
                        "ring" => Algorithm::Ring,
                        "direct" => Algorithm::Direct,
                        "auto" => Algorithm::Auto,
                        other => {
                            return Err(CliError::usage(format!("unknown algorithm: {other}")));
                        }
                    };
                }
                "--sanitize" => sanitize = true,
                "--campaigns" => {
                    campaigns = parse_u32("--campaigns", it.next())? as usize;
                    if campaigns == 0 {
                        return Err(CliError::usage("--campaigns must be at least 1"));
                    }
                }
                "--requests" => {
                    requests = parse_u32("--requests", it.next())? as usize;
                    if requests == 0 {
                        return Err(CliError::usage("--requests must be at least 1"));
                    }
                }
                "--arrival" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::usage("missing value for --arrival"))?;
                    arrival = match v.to_lowercase().as_str() {
                        "poisson" => ServeArrival::Poisson,
                        "bursty" => ServeArrival::Bursty,
                        other => {
                            return Err(CliError::usage(format!("unknown arrival: {other}")));
                        }
                    };
                }
                "--rate" => rate = parse_f64("--rate", it.next())?,
                "--slo-ms" => slo_ms = parse_f64("--slo-ms", it.next())?,
                "--chaos" => serve_chaos = true,
                "--baseline" => baseline = true,
                "--replicas" => {
                    replicas = parse_u32("--replicas", it.next())? as usize;
                    if replicas == 0 {
                        return Err(CliError::usage("--replicas must be at least 1"));
                    }
                }
                "--nodes" => {
                    nodes = parse_u32("--nodes", it.next())? as usize;
                    if nodes == 0 {
                        return Err(CliError::usage("--nodes must be at least 1"));
                    }
                }
                "--wedge-replica" => {
                    wedge_replica = Some(parse_u32("--wedge-replica", it.next())? as usize);
                }
                "--router" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::usage("missing value for --router"))?;
                    router = RouterPolicy::parse(&v.to_lowercase()).ok_or_else(|| {
                        CliError::usage(format!(
                            "unknown router: {v} (expected round-robin, least-loaded, \
                             shape-affinity, or locality)"
                        ))
                    })?;
                }
                "--no-pipeline" => no_pipeline = true,
                "--scaling" => scaling = true,
                "--drop-signal" => {
                    let (rank, group) = parse_rank_group("--drop-signal", it.next())?;
                    mutation = Some(SignalMutation::DropWait { rank, group });
                    sanitize = true;
                }
                "--starve-signal" => {
                    let (rank, group) = parse_rank_group("--starve-signal", it.next())?;
                    mutation = Some(SignalMutation::RaiseThreshold { rank, group });
                    sanitize = true;
                }
                "-h" | "--help" => return Err(CliError::usage("".to_string())),
                other => return Err(CliError::usage(format!("unknown flag: {other}"))),
            }
        }
        // Chaos has a sensible built-in workload (the default campaign
        // shape) and serve draws shapes from the traffic mix; every other
        // command needs explicit dimensions.
        let (m, n, k) = if matches!(command, Command::Chaos | Command::Serve | Command::Bench) {
            (m.unwrap_or(384), n.unwrap_or(512), k.unwrap_or(64))
        } else {
            let (Some(m), Some(n), Some(k)) = (m, n, k) else {
                return Err(CliError::usage("-m, -n, and -k are required"));
            };
            (m, n, k)
        };
        if gpus < 2 {
            return Err(CliError::usage("--gpus must be at least 2"));
        }
        Ok(Cli {
            command,
            m,
            n,
            k,
            primitive,
            gpus,
            platform,
            partition,
            seed,
            algorithm,
            output,
            sanitize,
            mutation,
            campaigns,
            requests,
            arrival,
            rate,
            slo_ms,
            serve_chaos,
            baseline,
            replicas,
            nodes,
            wedge_replica,
            router,
            no_pipeline,
            scaling,
            plan_cache,
            parallel,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let cli = Cli::parse(&argv(
            "run -m 4096 -n 8192 -k 2048 --primitive rs --gpus 8 --platform a800 \
             --partition 1,2,3 --seed 42",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Run);
        assert_eq!((cli.m, cli.n, cli.k), (4096, 8192, 2048));
        assert_eq!(cli.primitive, Primitive::ReduceScatter);
        assert_eq!(cli.gpus, 8);
        assert_eq!(cli.platform, GpuKind::A800);
        assert_eq!(cli.partition.unwrap().sizes(), &[1, 2, 3]);
        assert_eq!(cli.seed, 42);
    }

    #[test]
    fn defaults_apply() {
        let cli = Cli::parse(&argv("tune -m 1024 -n 1024 -k 1024")).unwrap();
        assert_eq!(cli.primitive, Primitive::AllReduce);
        assert_eq!(cli.gpus, 4);
        assert_eq!(cli.platform, GpuKind::Rtx4090);
        assert!(cli.partition.is_none());
    }

    #[test]
    fn missing_dims_is_usage_error() {
        let err = Cli::parse(&argv("tune -m 1024 -n 1024")).unwrap_err();
        assert!(err.show_usage);
        assert!(err.message.contains("required"));
    }

    #[test]
    fn unknown_command_and_flag_are_rejected() {
        assert!(Cli::parse(&argv("frobnicate")).unwrap_err().show_usage);
        assert!(
            Cli::parse(&argv("run -m 1 -n 1 -k 1 --bogus 3"))
                .unwrap_err()
                .show_usage
        );
    }

    #[test]
    fn primitive_aliases() {
        for (alias, expected) in [
            ("ar", Primitive::AllReduce),
            ("a2a", Primitive::AllToAll),
            ("ag", Primitive::AllGather),
        ] {
            let cli =
                Cli::parse(&argv(&format!("run -m 64 -n 64 -k 64 --primitive {alias}"))).unwrap();
            assert_eq!(cli.primitive, expected);
        }
    }

    #[test]
    fn zero_partition_size_rejected() {
        let err = Cli::parse(&argv("run -m 64 -n 64 -k 64 --partition 1,0,2")).unwrap_err();
        assert!(err.message.contains("positive"));
    }

    #[test]
    fn algorithm_and_trace_flags_parse() {
        let cli = Cli::parse(&argv(
            "timeline -m 64 -n 64 -k 64 --algorithm auto --trace-out /tmp/t.json",
        ))
        .unwrap();
        assert_eq!(cli.algorithm, Algorithm::Auto);
        assert_eq!(cli.output.trace_out.as_deref(), Some("/tmp/t.json"));
        assert!(
            Cli::parse(&argv("run -m 1 -n 1 -k 1 --algorithm bogus"))
                .unwrap_err()
                .show_usage
        );
    }

    #[test]
    fn profile_command_and_metrics_out_parse() {
        let cli = Cli::parse(&argv(
            "profile -m 4096 -n 4096 -k 4096 --trace-out t.json --metrics-out m.json",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Profile);
        assert_eq!(cli.output.trace_out.as_deref(), Some("t.json"));
        assert_eq!(cli.output.metrics_out.as_deref(), Some("m.json"));
        let cli = Cli::parse(&argv("run -m 64 -n 64 -k 64 --metrics-out m.json")).unwrap();
        assert_eq!(cli.output.metrics_out.as_deref(), Some("m.json"));
        assert!(
            Cli::parse(&argv("profile -m 1 -n 1 -k 1 --metrics-out"))
                .unwrap_err()
                .show_usage
        );
    }

    #[test]
    fn sanitizer_flags_parse() {
        let cli = Cli::parse(&argv("run -m 64 -n 64 -k 64 --sanitize")).unwrap();
        assert!(cli.sanitize);
        assert!(cli.mutation.is_none());
        let cli = Cli::parse(&argv("timeline -m 64 -n 64 -k 64 --drop-signal 1,2")).unwrap();
        assert!(cli.sanitize, "--drop-signal implies --sanitize");
        assert_eq!(
            cli.mutation,
            Some(SignalMutation::DropWait { rank: 1, group: 2 })
        );
        let cli = Cli::parse(&argv("run -m 64 -n 64 -k 64 --starve-signal 0,1")).unwrap();
        assert_eq!(
            cli.mutation,
            Some(SignalMutation::RaiseThreshold { rank: 0, group: 1 })
        );
        assert!(
            Cli::parse(&argv("run -m 1 -n 1 -k 1 --drop-signal nope"))
                .unwrap_err()
                .show_usage
        );
        assert!(
            Cli::parse(&argv("run -m 1 -n 1 -k 1 --drop-signal 1,2,3"))
                .unwrap_err()
                .show_usage
        );
    }

    #[test]
    fn chaos_defaults_and_flags_parse() {
        let cli = Cli::parse(&argv("chaos --seed 7 --campaigns 50")).unwrap();
        assert_eq!(cli.command, Command::Chaos);
        assert_eq!((cli.m, cli.n, cli.k), (384, 512, 64), "campaign shape");
        assert_eq!(cli.gpus, 2, "chaos defaults to the two-rank system");
        assert_eq!(cli.campaigns, 50);
        assert_eq!(cli.seed, 7);
        let cli = Cli::parse(&argv("chaos -m 256 -n 256 -k 64 --gpus 3")).unwrap();
        assert_eq!((cli.m, cli.n, cli.k), (256, 256, 64));
        assert_eq!(cli.gpus, 3);
        assert_eq!(cli.campaigns, 20);
        assert!(
            Cli::parse(&argv("chaos --campaigns 0"))
                .unwrap_err()
                .show_usage
        );
    }

    #[test]
    fn serve_defaults_and_flags_parse() {
        let cli = Cli::parse(&argv("serve")).unwrap();
        assert_eq!(cli.command, Command::Serve);
        assert_eq!(cli.requests, 200);
        assert_eq!(cli.arrival, ServeArrival::Poisson);
        assert_eq!(cli.gpus, 2, "serve defaults to the two-rank system");
        assert!((cli.rate - 500.0).abs() < 1e-9);
        assert!((cli.slo_ms - 20.0).abs() < 1e-9);
        assert!(!cli.serve_chaos && !cli.baseline);
        let cli = Cli::parse(&argv(
            "serve --requests 50 --arrival bursty --rate 800 --slo-ms 2.5 \
             --seed 9 --chaos --baseline --gpus 4 --metrics-out s.json",
        ))
        .unwrap();
        assert_eq!(cli.requests, 50);
        assert_eq!(cli.arrival, ServeArrival::Bursty);
        assert!((cli.rate - 800.0).abs() < 1e-9);
        assert!((cli.slo_ms - 2.5).abs() < 1e-9);
        assert_eq!(cli.seed, 9);
        assert!(cli.serve_chaos && cli.baseline);
        assert_eq!(cli.gpus, 4);
        assert_eq!(cli.output.metrics_out.as_deref(), Some("s.json"));
    }

    #[test]
    fn serve_replica_flags_parse() {
        let cli = Cli::parse(&argv("serve")).unwrap();
        assert_eq!(cli.replicas, 1);
        assert_eq!(cli.router, RouterPolicy::RoundRobin);
        assert!(!cli.no_pipeline && !cli.scaling);
        assert!(cli.plan_cache.load.is_none() && cli.plan_cache.save.is_none());
        let cli = Cli::parse(&argv(
            "serve --replicas 4 --router shape-affinity --no-pipeline --scaling \
             --plan-cache-out cache.json --plan-cache-in warm.json",
        ))
        .unwrap();
        assert_eq!(cli.replicas, 4);
        assert_eq!(cli.router, RouterPolicy::ShapeAffinity);
        assert!(cli.no_pipeline && cli.scaling);
        assert_eq!(cli.plan_cache.save.as_deref(), Some("cache.json"));
        assert_eq!(cli.plan_cache.load.as_deref(), Some("warm.json"));
        let cli = Cli::parse(&argv("serve --router least-loaded")).unwrap();
        assert_eq!(cli.router, RouterPolicy::LeastLoaded);
        assert_eq!(cli.nodes, 1);
        let cli = Cli::parse(&argv("serve --nodes 2 --replicas 4 --router locality")).unwrap();
        assert_eq!(cli.nodes, 2);
        assert_eq!(cli.router, RouterPolicy::Locality);
        assert!(Cli::parse(&argv("serve --nodes 0")).unwrap_err().show_usage);
        let cli = Cli::parse(&argv("serve --chaos --replicas 4 --wedge-replica 2")).unwrap();
        assert_eq!(cli.wedge_replica, Some(2));
        assert_eq!(Cli::parse(&argv("serve")).unwrap().wedge_replica, None);
        assert!(
            Cli::parse(&argv("serve --replicas 0"))
                .unwrap_err()
                .show_usage
        );
        let err = Cli::parse(&argv("serve --router hash")).unwrap_err();
        assert!(err.show_usage);
        assert!(err.message.contains("shape-affinity"));
    }

    #[test]
    fn parallel_flag_parses() {
        assert_eq!(
            Cli::parse(&argv("serve")).unwrap().parallel,
            ParallelArg::Serial
        );
        let cli = Cli::parse(&argv("serve --replicas 4 --parallel 4")).unwrap();
        assert_eq!(cli.parallel, ParallelArg::Threads(4));
        let cli = Cli::parse(&argv("bench --parallel serial")).unwrap();
        assert_eq!(cli.parallel, ParallelArg::Serial);
        let cli = Cli::parse(&argv("serve --parallel validate")).unwrap();
        assert_eq!(cli.parallel, ParallelArg::Validate);
        assert!(
            Cli::parse(&argv("serve --parallel 0"))
                .unwrap_err()
                .show_usage
        );
        let err = Cli::parse(&argv("serve --parallel sometimes")).unwrap_err();
        assert!(err.show_usage);
        assert!(err.message.contains("serial"));
        assert!(
            Cli::parse(&argv("serve --parallel"))
                .unwrap_err()
                .show_usage
        );
    }

    #[test]
    fn wallclock_out_parses() {
        let cli = Cli::parse(&argv("bench --wallclock-out w.json")).unwrap();
        assert_eq!(cli.output.wallclock_out.as_deref(), Some("w.json"));
        assert!(Cli::parse(&argv("bench"))
            .unwrap()
            .output
            .wallclock_out
            .is_none());
        assert!(
            Cli::parse(&argv("bench --wallclock-out"))
                .unwrap_err()
                .show_usage
        );
    }

    #[test]
    fn seed_accepts_full_u64_range() {
        let cli = Cli::parse(&argv("serve --seed 18446744073709551615")).unwrap();
        assert_eq!(cli.seed, u64::MAX);
    }

    #[test]
    fn serve_rejects_bad_values() {
        assert!(
            Cli::parse(&argv("serve --requests 0"))
                .unwrap_err()
                .show_usage
        );
        assert!(
            Cli::parse(&argv("serve --arrival sometimes"))
                .unwrap_err()
                .show_usage
        );
        assert!(Cli::parse(&argv("serve --rate -3")).unwrap_err().show_usage);
        assert!(
            Cli::parse(&argv("serve --slo-ms 0"))
                .unwrap_err()
                .show_usage
        );
    }

    #[test]
    fn verify_command_parses() {
        let cli = Cli::parse(&argv("verify -m 512 -n 1024 -k 512 --gpus 2")).unwrap();
        assert_eq!(cli.command, Command::Verify);
        assert_eq!((cli.m, cli.n, cli.k), (512, 1024, 512));
        assert_eq!(cli.gpus, 2);
        // Verify checks a concrete plan; the shape is required like run's.
        assert!(Cli::parse(&argv("verify")).unwrap_err().show_usage);
    }

    #[test]
    fn analyze_command_parses() {
        let cli = Cli::parse(&argv(
            "analyze -m 2048 -n 4096 -k 4096 --gpus 2 --platform a800 \
             --metrics-out a.json --trace-out t.json",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Analyze);
        assert_eq!((cli.m, cli.n, cli.k), (2048, 4096, 4096));
        assert_eq!(cli.gpus, 2);
        assert_eq!(cli.output.metrics_out.as_deref(), Some("a.json"));
        assert_eq!(cli.output.trace_out.as_deref(), Some("t.json"));
        // Analyze attributes a concrete run; the shape is required.
        assert!(Cli::parse(&argv("analyze")).unwrap_err().show_usage);
    }

    #[test]
    fn bench_command_parses_with_serve_defaults() {
        let cli = Cli::parse(&argv("bench --requests 120 --seed 7")).unwrap();
        assert_eq!(cli.command, Command::Bench);
        assert_eq!(cli.requests, 120);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.gpus, 2, "bench defaults to the two-rank system");
        assert!(
            cli.output.metrics_out.is_none(),
            "default path resolves later"
        );
    }

    #[test]
    fn help_requests_usage() {
        assert!(Cli::parse(&argv("--help")).unwrap_err().show_usage);
        assert!(Cli::parse(&[]).unwrap_err().show_usage);
    }
}
