//! Command-line interface library: argument parsing and command
//! execution for the `flashoverlap` binary.
//!
//! The parser is deliberately hand-rolled (the workspace keeps its
//! dependency set minimal); commands map one-to-one onto the library's
//! public workflow:
//!
//! ```text
//! flashoverlap tune    -m 4096 -n 8192 -k 16384 --gpus 4 --platform rtx4090
//! flashoverlap run     -m 4096 -n 8192 -k 16384 --primitive reducescatter
//! flashoverlap compare -m 4096 -n 8192 -k 16384 --gpus 8
//! flashoverlap timeline -m 4096 -n 8192 -k 8192 --partition 1,2,3,4
//! ```

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Cli, CliError, Command};

/// Parses arguments and executes the selected command, returning the
/// text to print.
///
/// # Errors
///
/// Returns a [`CliError`] with a usage hint on malformed input, and a
/// plain message when execution fails.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let cli = Cli::parse(argv)?;
    commands::execute(&cli)
}
