#!/usr/bin/env bash
# Lint gate + test suite. Every check here must stay green; run before
# pushing. SimSan's mutation self-tests are part of `cargo test`.
set -euo pipefail
cd "$(dirname "$0")"

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test -q --workspace

echo "== profile smoke (trace + metrics JSON round-trip) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run -q -p flashoverlap-cli --bin flashoverlap -- profile \
  -m 1024 -n 2048 -k 2048 --gpus 2 --platform a800 \
  --trace-out "$tmp/trace.json" --metrics-out "$tmp/metrics.json" > /dev/null
python3 - "$tmp/trace.json" "$tmp/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    events = json.load(f)["traceEvents"]
devices = {e["pid"] for e in events if e.get("ph") == "X"}
assert devices == {0, 1}, f"trace must cover every device, got {devices}"
assert any(e.get("ph") == "s" for e in events), "missing signal flow events"
assert any(e.get("ph") == "C" for e in events), "missing counter tracks"
with open(sys.argv[2]) as f:
    metrics = json.load(f)
assert len(metrics["methods"]) == 5, "report must list every method"
for m in metrics["methods"]:
    eff = m["overlap_efficiency"]
    assert eff is None or 0.0 <= eff <= 1.0, m
assert metrics["signal_latency"]["samples"] > 0, "no signal-latency samples"
assert metrics["links"], "no link stats"
print("profile smoke: ok")
EOF

echo "ci: all gates passed"
