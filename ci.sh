#!/usr/bin/env bash
# Lint gate + test suite. Every check here must stay green; run before
# pushing. SimSan's mutation self-tests are part of `cargo test`.
set -euo pipefail
cd "$(dirname "$0")"

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test -q --workspace

echo "ci: all gates passed"
