#!/usr/bin/env bash
# Lint gate + test suite. Every check here must stay green; run before
# pushing. SimSan's mutation self-tests are part of `cargo test`.
set -euo pipefail
cd "$(dirname "$0")"

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test -q --workspace

echo "== profile smoke (trace + metrics JSON round-trip) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run -q -p flashoverlap-cli --bin flashoverlap -- profile \
  -m 1024 -n 2048 -k 2048 --gpus 2 --platform a800 \
  --trace-out "$tmp/trace.json" --metrics-out "$tmp/metrics.json" > /dev/null
python3 - "$tmp/trace.json" "$tmp/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    events = json.load(f)["traceEvents"]
devices = {e["pid"] for e in events if e.get("ph") == "X"}
assert devices == {0, 1}, f"trace must cover every device, got {devices}"
assert any(e.get("ph") == "s" for e in events), "missing signal flow events"
assert any(e.get("ph") == "C" for e in events), "missing counter tracks"
with open(sys.argv[2]) as f:
    metrics = json.load(f)
assert len(metrics["methods"]) == 5, "report must list every method"
for m in metrics["methods"]:
    eff = m["overlap_efficiency"]
    assert eff is None or 0.0 <= eff <= 1.0, m
assert metrics["signal_latency"]["samples"] > 0, "no signal-latency samples"
assert metrics["links"], "no link stats"
print("profile smoke: ok")
EOF

echo "== verify gate (static schedule proof + conformance matrix, deterministic) =="
# Two identical runs: the byte-compare is the determinism gate; the
# command itself exits nonzero on any violation or nonconforming cell.
cargo run -q -p flashoverlap-cli --bin flashoverlap -- verify \
  -m 2048 -n 4096 -k 4096 --gpus 2 --metrics-out "$tmp/verify.json" > /dev/null
cargo run -q -p flashoverlap-cli --bin flashoverlap -- verify \
  -m 2048 -n 4096 -k 4096 --gpus 2 --metrics-out "$tmp/verify2.json" > /dev/null
cmp "$tmp/verify.json" "$tmp/verify2.json" \
  || { echo "verify gate: identical inputs wrote different reports"; exit 1; }
python3 - "$tmp/verify.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["kind"] == "flashoverlap-verify", report.get("kind")
assert report["static"]["clean"] is True, report["static"]
assert report["static"]["violations"] == [], report["static"]["violations"]
cells = report["matrix"]
assert len(cells) == 18, f"matrix must be exhaustive, got {len(cells)} cells"
assert all(c["conforms"] for c in cells), \
    [f"{c['mutation']}x{c['path']}" for c in cells if not c["conforms"]]
expected = {c["expected"] for c in cells}
assert expected == {"caught-static", "caught-dynamic", "benign", "not-applicable"}, expected
assert sum(c["expected"] == "caught-static" for c in cells) == 11, cells
assert len(report["caveats"]) == 3, report["caveats"]
assert len(report["methods"]) == 5, "report must cover every method"
mix = report["serve_mix"]
assert mix, "serve-mix sweep must cover at least one quantized shape"
assert all(s["clean"] for s in mix), [s for s in mix if not s["clean"]]
print(f"verify gate: ok ({len(cells)} cells conform, {len(mix)} serve shapes clean)")
EOF

echo "== chaos smoke (seeded fault campaigns, zero hangs, zero violations) =="
# `timeout` doubles as the hang gate: every campaign must terminate under
# the watchdog, so the whole sweep finishing inside the limit proves it.
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- chaos \
  --seed 7 --campaigns 20 --metrics-out "$tmp/chaos.json" > /dev/null
python3 - "$tmp/chaos.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    chaos = json.load(f)
assert chaos["campaigns"] == 20, chaos["campaigns"]
assert chaos["hangs"] == 0, "a campaign hung"
assert chaos["violations"] == 0, "bit-exact-or-degraded invariant violated"
for r in chaos["results"]:
    assert r["faults"] >= 1, "every campaign must inject at least one fault"
    assert r["bit_exact"] or (r["outcome"] == "degraded" and r["cause"]), r
recovered = sum(r["outcome"] == "recovered" for r in chaos["results"])
assert recovered >= 1, "sweep must exercise the tail-recovery path"
print(f"chaos smoke: ok ({recovered} recovered, "
      f"{sum(r['outcome'] == 'degraded' for r in chaos['results'])} degraded)")
EOF

echo "== serve smoke (seeded continuous batching, full accounting, warm cache) =="
# Two identical seeded runs: the byte-compare is the determinism gate,
# the timeout is the no-silent-hang gate.
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- serve \
  --requests 120 --seed 7 --chaos --metrics-out "$tmp/serve.json" > /dev/null
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- serve \
  --requests 120 --seed 7 --chaos --metrics-out "$tmp/serve2.json" > /dev/null
cmp "$tmp/serve.json" "$tmp/serve2.json" \
  || { echo "serve smoke: same seed wrote different metrics"; exit 1; }
python3 - "$tmp/serve.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    serve = json.load(f)
reqs = serve["requests"]
assert reqs["completed"] + reqs["shed"] == serve["offered"], reqs
assert reqs["clean"] + reqs["recovered"] + reqs["degraded"] == reqs["completed"], reqs
assert serve["plan_cache"]["hit_rate"] > 0, "token buckets must drive plan reuse"
assert serve["plan_cache"]["hits"] + serve["plan_cache"]["misses"] \
    == serve["batches"]["executed"], "every batch takes exactly one cache lookup"
dispositions = {r["disposition"] for r in serve["per_request"]}
assert dispositions <= {"clean", "recovered", "degraded", "shed"}, dispositions
assert len(serve["per_request"]) == serve["offered"], "every request accounted"
assert serve["latency"]["p50_ns"] <= serve["latency"]["p99_ns"], serve["latency"]
print(f"serve smoke: ok (hit rate {serve['plan_cache']['hit_rate']:.2f}, "
      f"{reqs['recovered']} recovered, {reqs['degraded']} degraded, "
      f"{reqs['shed']} shed)")
EOF

echo "== multi-replica smoke (routing, per-replica accounting, scaling, pipelining) =="
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- serve \
  --requests 120 --rate 2400 --seed 7 --replicas 4 --router shape-affinity \
  --metrics-out "$tmp/affinity.json" > /dev/null
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- serve \
  --requests 120 --rate 2400 --seed 7 --replicas 4 --router round-robin \
  --metrics-out "$tmp/rr.json" > /dev/null
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- serve \
  --requests 120 --rate 2400 --seed 7 --replicas 4 --router shape-affinity \
  --scaling --metrics-out "$tmp/scaling.json" > /dev/null
python3 - "$tmp/affinity.json" "$tmp/rr.json" "$tmp/scaling.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    affinity = json.load(f)
assert affinity["replicas"] == 4 and affinity["router"] == "shape-affinity", affinity
per = affinity["per_replica"]
assert len(per) == 4, "one stats row per replica"
assert sum(r["batches"] for r in per) == affinity["batches"]["executed"], \
    "per-replica batches must sum to the total"
assert sum(r["requests"] for r in per) == affinity["requests"]["completed"], \
    "per-replica requests must sum to completed"
assert sum(r["cache"]["hits"] for r in per) == affinity["plan_cache"]["hits"], \
    "per-replica cache hits must sum to the total"
assert sum(r["cache"]["misses"] for r in per) == affinity["plan_cache"]["misses"], \
    "per-replica cache misses must sum to the total"
for r in per:
    assert 0.0 <= r["utilization"] <= 1.0, r
with open(sys.argv[2]) as f:
    rr = json.load(f)
assert affinity["plan_cache"]["hit_rate"] >= rr["plan_cache"]["hit_rate"], \
    "shape affinity must not lose to round-robin on cache hit rate"
with open(sys.argv[3]) as f:
    scaling = json.load(f)
assert scaling["goodput_scaling"] >= 3.0, \
    f"4 replicas must deliver >= 3x goodput, got {scaling['goodput_scaling']:.2f}"
pipe = scaling["pipelining"]
assert pipe["pipelined_p95_ns"] < pipe["serial_p95_ns"], \
    "cross-batch pipelining must beat serial chains on p95"
print(f"multi-replica smoke: ok ({scaling['goodput_scaling']:.2f}x goodput, "
      f"p95 {pipe['pipelined_p95_ns']/1e3:.0f}us vs {pipe['serial_p95_ns']/1e3:.0f}us, "
      f"affinity hit rate {affinity['plan_cache']['hit_rate']:.2f} "
      f"vs rr {rr['plan_cache']['hit_rate']:.2f})")
EOF

echo "== chaos-sequence gate (wedged replica: quarantine + re-route, no abort) =="
# A deterministically wedged replica must not abort the run: serve exits
# zero, quarantines the replica, re-routes its queue, and two seeded
# runs byte-compare. Arrivals are fast enough that the wedged replica's
# queue holds batches worth re-routing at quarantine time.
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- serve \
  --chaos --replicas 4 --wedge-replica 2 --rate 12000 --requests 200 --seed 7 \
  --metrics-out "$tmp/wedge.json" > /dev/null \
  || { echo "chaos-sequence gate: wedged replica aborted the run"; exit 1; }
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- serve \
  --chaos --replicas 4 --wedge-replica 2 --rate 12000 --requests 200 --seed 7 \
  --metrics-out "$tmp/wedge2.json" > /dev/null
cmp "$tmp/wedge.json" "$tmp/wedge2.json" \
  || { echo "chaos-sequence gate: same seed wrote different reports"; exit 1; }
python3 - "$tmp/wedge.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    wedge = json.load(f)
assert wedge["chaos"] is True and wedge["wedge_replica"] == 2, wedge
reqs = wedge["requests"]
assert reqs["completed"] + reqs["shed"] == wedge["offered"], reqs
assert reqs["clean"] + reqs["recovered"] + reqs["degraded"] == reqs["completed"], reqs
res = wedge["resilience"]
per = wedge["per_replica"]
assert per[2]["quarantined"] is True, "the wedged replica must end quarantined"
assert res["replicas_quarantined"] >= 1, res
assert res["replicas_quarantined"] < wedge["replicas"], \
    "the last healthy replica must never be pulled from service"
assert res["replicas_quarantined"] == sum(r["quarantined"] for r in per), res
assert res["batches_rerouted"] > 0, "quarantine must re-route the stranded queue"
rerouted = [b for b in wedge["per_batch"] if b["routing"] == "re-routed"]
assert rerouted, "re-routed batches must be stamped in the batch records"
assert len(rerouted) <= res["batches_rerouted"], "records cannot exceed hops"
assert all(b["replica"] != 2 for b in rerouted), \
    "a re-routed batch landed back on the wedged replica"
assert sum(r["batches"] for r in per) == wedge["batches"]["executed"], \
    "per-replica batches must still sum to the total under quarantine"
assert sum(r["requests"] for r in per) == reqs["completed"], \
    "per-replica requests must still sum to completed under quarantine"
print(f"chaos-sequence gate: ok ({res['replicas_quarantined']} quarantined, "
      f"{res['batches_rerouted']} re-route hops, {res['quarantine_shed']} shed, "
      f"{reqs['recovered']} recovered, {reqs['degraded']} degraded)")
EOF

echo "== analyze gate (critical-path attribution, tuned vs per-wave signaling) =="
cargo run -q -p flashoverlap-cli --bin flashoverlap -- analyze \
  -m 2048 -n 4096 -k 4096 --gpus 2 --platform a800 \
  --metrics-out "$tmp/analyze.json" > /dev/null
python3 - "$tmp/analyze.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    analyze = json.load(f)
assert analyze["kind"] == "flashoverlap-analyze", analyze.get("kind")
for arm in ("tuned", "per_wave"):
    attr = analyze[arm]["attribution"]
    cats = attr["categories"]
    assert sum(cats.values()) == attr["makespan_ns"], \
        f"{arm}: attribution must sum exactly to the makespan"
    assert all(0.0 <= s <= 1.0 for s in attr["shares"].values()), attr["shares"]
tuned = analyze["tuned"]["attribution"]["categories"]["signal_wait_ns"]
per_wave = analyze["per_wave"]["attribution"]["categories"]["signal_wait_ns"]
assert tuned < per_wave, \
    f"tuned plan must spend less critical-path time in signal-wait " \
    f"({tuned} vs {per_wave})"
assert analyze["signal_wait_saved_ns"] > 0, analyze["signal_wait_saved_ns"]
print(f"analyze gate: ok (signal-wait {tuned} ns tuned vs {per_wave} ns per-wave)")
EOF

echo "== topology gate (2-node serve: determinism, hierarchical savings, locality) =="
# Two nodes x 2 GPUs each: same seed byte-compares, the hierarchical
# collective schedule must cross nodes with strictly fewer bytes than
# the flat ring, and the locality router must spill across nodes less
# than round-robin under identical traffic.
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- serve \
  --requests 120 --rate 2400 --seed 11 --gpus 4 --nodes 2 --replicas 4 \
  --router locality --metrics-out "$tmp/topo.json" > /dev/null
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- serve \
  --requests 120 --rate 2400 --seed 11 --gpus 4 --nodes 2 --replicas 4 \
  --router locality --metrics-out "$tmp/topo2.json" > /dev/null
cmp "$tmp/topo.json" "$tmp/topo2.json" \
  || { echo "topology gate: same seed wrote different two-node reports"; exit 1; }
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- serve \
  --requests 120 --rate 2400 --seed 11 --gpus 4 --nodes 2 --replicas 4 \
  --router round-robin --metrics-out "$tmp/topo-rr.json" > /dev/null
python3 - "$tmp/topo.json" "$tmp/topo-rr.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    loc = json.load(f)
with open(sys.argv[2]) as f:
    rr = json.load(f)
assert loc["nodes"] == 2 and loc["router"] == "locality", loc["router"]
per_node = loc["per_node"]
assert len(per_node) == 2, "one stats row per node"
assert sum(n["replicas"] for n in per_node) == loc["replicas"], per_node
assert sum(n["batches"] for n in per_node) == loc["batches"]["executed"], \
    "per-node batches must sum to the total"
assert sum(n["requests"] for n in per_node) == loc["requests"]["completed"], \
    "per-node requests must sum to completed"
assert sum(n["tokens"] for n in per_node) \
    == sum(r["tokens"] for r in loc["per_replica"]), \
    "per-node tokens must agree with the replica rows they fold"
for r in loc["per_replica"]:
    assert r["node"] == r["id"] % loc["nodes"], r
ib = loc["cross_node"]["inter_bytes"]
assert ib["hierarchical"] > 0, "a node-spanning TP group must cross nodes"
assert ib["hierarchical"] < ib["flat_baseline"], \
    f"hierarchical collectives must move fewer inter-node bytes than the " \
    f"flat ring ({ib['hierarchical']} vs {ib['flat_baseline']})"
assert loc["offered"] == rr["offered"], "identical traffic required"
loc_rate = loc["cross_node"]["batches"] / loc["batches"]["executed"]
rr_rate = rr["cross_node"]["batches"] / rr["batches"]["executed"]
assert loc_rate < rr_rate, \
    f"locality must spill across nodes less than round-robin " \
    f"({loc_rate:.3f} vs {rr_rate:.3f})"
saved = 1 - ib["hierarchical"] / ib["flat_baseline"]
print(f"topology gate: ok (hierarchical saves {saved:.0%} inter-node bytes, "
      f"spill rate {loc_rate:.2f} locality vs {rr_rate:.2f} round-robin)")
EOF

echo "== bench gate (BENCH_serve.json byte-stable, attribution identity exact) =="
# Two identical seeded runs byte-compare; the committed artifact at the
# repo root must match what the pinned command regenerates today.
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- bench \
  --requests 120 --seed 7 --metrics-out "$tmp/bench.json" > /dev/null
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- bench \
  --requests 120 --seed 7 --metrics-out "$tmp/bench2.json" > /dev/null
cmp "$tmp/bench.json" "$tmp/bench2.json" \
  || { echo "bench gate: same seed wrote different artifacts"; exit 1; }
cmp "$tmp/bench.json" BENCH_serve.json \
  || { echo "bench gate: committed BENCH_serve.json is stale; regenerate with" \
       "'flashoverlap bench --requests 120 --seed 7'"; exit 1; }
python3 - "$tmp/bench.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
assert bench["kind"] == "flashoverlap-bench-serve", bench.get("kind")
attr = bench["attribution"]
assert attr["identity_holds"] is True, attr
assert sum(attr["categories"].values()) == bench["makespan_ns"], \
    "every nanosecond of the makespan must land in exactly one category"
assert all(0.0 <= s <= 1.0 for s in attr["shares"].values()), attr["shares"]
assert abs(sum(attr["shares"].values()) - 1.0) < 1e-9, attr["shares"]
sched = bench["scheduling"]
for wait in ("form_wait", "queue_wait"):
    p = sched[wait]
    assert p is None or p["p50_ns"] <= p["p95_ns"] <= p["p99_ns"], (wait, p)
assert bench["drift_rows"] > 0, "predictor-drift table must be populated"
print(f"bench gate: ok (makespan {bench['makespan_ns']/1e6:.2f} ms virtual, "
      f"idle share {attr['shares']['idle']:.3f})")
EOF

echo "== parallel gate (sealed engines: byte-identical for any --parallel, wall-clock tracked) =="
# The deterministic-merge contract: the same seeded bench must write a
# byte-identical artifact under --parallel 4, under an odd thread count
# (engines share threads via i mod threads), and with the serial
# engine. Wall-clock goes to the trend artifact — tracked, not gated —
# except the one ordering that must hold: with real cores available,
# parallel must not lose to serial on the chain-heavy scenario.
par_scenario=(--requests 200 --rate 400 --gpus 8 --replicas 4 --seed 7)
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- bench \
  "${par_scenario[@]}" --metrics-out "$tmp/par-serial.json" \
  --wallclock-out "$tmp/wc-serial.json" > /dev/null
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- bench \
  "${par_scenario[@]}" --parallel 4 --metrics-out "$tmp/par-4.json" \
  --wallclock-out "$tmp/wc-4.json" > /dev/null
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- bench \
  "${par_scenario[@]}" --parallel 3 --metrics-out "$tmp/par-3.json" > /dev/null
cmp "$tmp/par-serial.json" "$tmp/par-4.json" \
  || { echo "parallel gate: --parallel 4 diverged from serial"; exit 1; }
cmp "$tmp/par-serial.json" "$tmp/par-3.json" \
  || { echo "parallel gate: --parallel 3 diverged from serial"; exit 1; }
# Chaos + wedged replica under threads: the eager-force path must make
# the quarantine decision at the same virtual instant the serial engine
# does. wedge.json is the serial run from the chaos-sequence gate.
timeout 300 cargo run -q -p flashoverlap-cli --bin flashoverlap -- serve \
  --chaos --replicas 4 --wedge-replica 2 --rate 12000 --requests 200 --seed 7 \
  --parallel 4 --metrics-out "$tmp/wedge-par.json" > /dev/null
cmp "$tmp/wedge.json" "$tmp/wedge-par.json" \
  || { echo "parallel gate: wedged chaos serve diverged under --parallel 4"; exit 1; }
python3 - "$tmp/wc-serial.json" "$tmp/wc-4.json" BENCH_wallclock.json "$(nproc)" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    serial = json.load(f)
with open(sys.argv[2]) as f:
    par = json.load(f)
for trend in (serial, par):
    assert trend["kind"] == "flashoverlap-bench-wallclock", trend.get("kind")
    assert trend["events"] == serial["events"], "same scenario, same event count"
    assert trend["wall_s"] > 0 and trend["events_per_sec"] > 0, trend
assert serial["mode"] == "serial" and serial["threads"] == 1, serial
assert par["mode"] == "parallel" and par["threads"] == 4, par
# The committed trend artifact: scenario pinned, wall values free to
# drift (they are host-dependent; review diffs track them).
with open(sys.argv[3]) as f:
    committed = json.load(f)
assert committed["kind"] == "flashoverlap-bench-wallclock", committed.get("kind")
for key in ("seed", "requests", "gpus", "replicas", "mode", "threads"):
    assert committed[key] == par[key], \
        f"committed BENCH_wallclock.json pins a different scenario ({key})"
cores = int(sys.argv[4])
if cores >= 2:
    assert par["wall_s"] <= serial["wall_s"], \
        f"parallel(4) must not lose to serial with {cores} cores " \
        f"({par['wall_s']:.3f}s vs {serial['wall_s']:.3f}s)"
    verdict = f"{serial['wall_s'] / par['wall_s']:.2f}x speedup on {cores} cores"
else:
    verdict = "single core: wall-clock ordering not asserted"
print(f"parallel gate: ok (byte-identical at 1/3/4 threads incl. wedged chaos; "
      f"serial {serial['wall_s']:.3f}s vs parallel {par['wall_s']:.3f}s — {verdict})")
EOF

echo "ci: all gates passed"
