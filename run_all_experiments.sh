#!/usr/bin/env bash
# Regenerates every table/figure reproduction and extension study into
# results/ (plain text). Takes a few minutes in release mode.
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p results
BINS=(
  fig2_wave_pattern fig8_bandwidth_curve fig9_operator_speedup
  fig10_heatmap fig11_predictor_cdf table4_remap_overhead
  sec411_baseline_partition sec64_search_quality
  ablation_comm_sms ablation_reorder ablation_algorithm ablation_pruning
  extension_allgather extension_pipeline extension_imbalance
  extension_multidataflow extension_skew timeline_demo
)
for bin in "${BINS[@]}"; do
  echo "== $bin =="
  cargo run --release -p bench --bin "$bin" > "results/$bin.txt"
done
echo "all outputs written to results/"
