//! Quickstart: overlap a tensor-parallel GEMM+AllReduce on 4 simulated
//! RTX 4090s.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The three calls below are the whole public workflow:
//! 1. describe the system and the local GEMM,
//! 2. let the predictive search pick a wave partition (`OverlapPlan::tuned`),
//! 3. execute — in timing mode for latency, or functionally to get
//!    verified numerics.

use flashoverlap::runtime::CommPattern;
use flashoverlap::{FunctionalInputs, OverlapPlan, SystemSpec};
use gpu_sim::gemm::GemmDims;
use tensor::{allclose, gemm};

fn main() {
    // A tensor-parallel projection: each of 4 GPUs computes its K-shard
    // of a 4096 x 8192 output, then AllReduce sums the partials.
    let system = SystemSpec::rtx4090(4);
    let dims = GemmDims::new(4096, 8192, 16384);

    // Tune: offline profile + Alg. 1 predictive search, no online runs.
    let plan = OverlapPlan::tuned(dims, CommPattern::AllReduce, system.clone())
        .expect("plan construction");
    println!(
        "tuned wave partition: {} over {} waves (tile {}x{})",
        plan.partition,
        plan.total_waves(),
        plan.config.tile.m,
        plan.config.tile.n
    );

    // Measure the overlapped operator.
    let report = plan
        .execute_with(&flashoverlap::ExecOptions::new())
        .expect("simulation")
        .report;
    let baseline =
        baselines::run_nonoverlap(dims, &CommPattern::AllReduce, &system).expect("baseline");
    println!("FlashOverlap : {}", report.latency);
    println!("non-overlap  : {baseline}");
    println!(
        "speedup      : {:.3}x",
        baseline.as_nanos() as f64 / report.latency.as_nanos() as f64
    );

    // Verify numerics end to end on a small functional instance: the
    // reordered, group-wise-communicated result must equal the plain
    // sum of per-rank GEMMs.
    let small = GemmDims::new(512, 512, 256);
    let plan = OverlapPlan::tuned(small, CommPattern::AllReduce, SystemSpec::rtx4090(4))
        .expect("small plan");
    let inputs = FunctionalInputs::random(small, 4, 7);
    let result = plan
        .execute_with(&flashoverlap::ExecOptions::new().functional(&inputs))
        .expect("functional run");
    let outputs = result.outputs.expect("functional outputs");
    let mut expected = gemm(&inputs.a[0], &inputs.b[0]);
    for r in 1..4 {
        expected = expected.add(&gemm(&inputs.a[r], &inputs.b[r]));
    }
    assert!(
        allclose(&outputs[0], &expected, 1e-2),
        "overlapped result must match the reference"
    );
    println!("functional check: overlapped AllReduce output matches the reference");
}
