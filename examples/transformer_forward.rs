//! A multi-layer transformer forward pass as one overlapped pipeline.
//!
//! ```text
//! cargo run --release --example transformer_forward
//! ```
//!
//! Chains several GEMM+AllReduce+RMSNorm layers in a single simulation
//! using [`flashoverlap::pipeline::Pipeline`]: each layer's wave
//! partition is tuned independently, activations flow layer to layer on
//! the device, and the end-to-end numerics are verified against the
//! plain layer-by-layer reference.

use std::rc::Rc;

use flashoverlap::pipeline::{LayerSpec, Pipeline};
use flashoverlap::runtime::CommPattern;
use flashoverlap::SystemSpec;
use gpu_sim::elementwise::ElementwiseOp;
use gpu_sim::gemm::GemmDims;
use sim::DetRng;
use tensor::{allclose, gemm, rmsnorm, Matrix};

fn main() {
    let n_gpus = 2;
    let layers = 3;
    let (tokens, hidden) = (256u32, 128u32);
    let dims = GemmDims::new(tokens, hidden, hidden);

    // Small architecture so the functional verification stays fast while
    // still exercising multiple waves per layer.
    let mut system = SystemSpec::rtx4090(n_gpus);
    system.arch.sm_count = 8;
    system.comm_sms = 2;

    let weight_gain: Vec<f32> = (0..hidden).map(|i| 1.0 + (i % 3) as f32 * 0.1).collect();
    let rms = || ElementwiseOp::RmsNorm {
        weight: Rc::new(weight_gain.clone()),
        eps: 1e-6,
    };

    let pipeline = Pipeline::tuned(
        system,
        (0..layers)
            .map(|_| LayerSpec {
                dims,
                pattern: CommPattern::AllReduce,
                epilogue: Some(rms()),
            })
            .collect(),
    )
    .expect("pipeline");
    println!("{layers}-layer pipeline on {n_gpus} GPUs, {tokens} tokens x {hidden} hidden");
    for (l, plan) in pipeline.plans().iter().enumerate() {
        println!("  layer {l}: tuned partition {}", plan.partition);
    }

    // Deterministic inputs and per-layer, per-rank weight shards.
    let mut rng = DetRng::new(2024);
    let first_a: Vec<Matrix> = (0..n_gpus)
        .map(|_| Matrix::random(tokens as usize, hidden as usize, &mut rng))
        .collect();
    let weights: Vec<Vec<Matrix>> = (0..layers)
        .map(|_| {
            (0..n_gpus)
                .map(|_| Matrix::random(hidden as usize, hidden as usize, &mut rng))
                .collect()
        })
        .collect();

    let out = pipeline
        .execute_with(&flashoverlap::PipelineExecOptions::new().functional(&first_a, &weights))
        .expect("functional run");
    let outputs = out.outputs.expect("functional outputs");
    println!(
        "end-to-end simulated time: {} ({} layers overlapped back to back)",
        out.report.total, layers
    );

    // Reference forward pass on the host.
    let mut acts: Vec<Matrix> = first_a.clone();
    for w in &weights {
        let mut h = gemm(&acts[0], &w[0]);
        for r in 1..n_gpus {
            h = h.add(&gemm(&acts[r], &w[r]));
        }
        let normalized = rmsnorm(&h, &weight_gain, 1e-6);
        acts = vec![normalized; n_gpus];
    }
    for (d, out) in outputs.iter().enumerate() {
        assert!(
            allclose(out, &acts[0], 5e-2),
            "rank {d}: pipeline output diverges from reference"
        );
    }
    println!("functional check: {layers}-layer pipeline matches the host reference");
}
