//! Tensor-parallel transformer layer: the workload the paper's intro
//! motivates.
//!
//! ```text
//! cargo run --release --example tensor_parallel_llama
//! ```
//!
//! Serving a Llama-2-70B-class model with TP slices both communicated
//! GEMMs of every layer (attention output projection and MLP down
//! projection, §2.3). This example sweeps batch-token counts, compares
//! every applicable method on both communicated GEMMs, and reports the
//! per-layer communication-overhead reduction.

use baselines::{measure, Method};
use flashoverlap::runtime::CommPattern;
use flashoverlap::SystemSpec;
use workloads::models::{tp_layer_shapes, LLAMA2_70B};

fn main() {
    let tp = 4;
    let system = SystemSpec::rtx4090(tp as usize);
    println!(
        "Llama-2-70B-class layer on {} x {} (TP={tp}), GEMM+AllReduce\n",
        system.n_gpus, system.arch.name
    );

    for tokens in [1024u32, 4096, 16384] {
        println!("== batch of {tokens} tokens ==");
        let shapes = tp_layer_shapes(LLAMA2_70B, tokens, tp);
        let names = ["attention out-proj", "MLP down-proj"];
        let mut layer_base = 0u64;
        let mut layer_fo = 0u64;
        for (name, dims) in names.iter().zip(&shapes) {
            let base = measure(Method::NonOverlap, *dims, &CommPattern::AllReduce, &system)
                .expect("baseline");
            let dec = measure(
                Method::VanillaDecomposition,
                *dims,
                &CommPattern::AllReduce,
                &system,
            )
            .expect("decomposition");
            let fo = measure(
                Method::FlashOverlap,
                *dims,
                &CommPattern::AllReduce,
                &system,
            )
            .expect("flashoverlap");
            layer_base += base.as_nanos();
            layer_fo += fo.as_nanos();
            println!(
                "  {name:<20} {}x{}x{}: non-overlap {base}, decomposition {dec}, \
                 FlashOverlap {fo} ({:.3}x)",
                dims.m,
                dims.n,
                dims.k,
                base.as_nanos() as f64 / fo.as_nanos() as f64
            );
        }
        println!(
            "  per-layer communicated-GEMM time: {:.3} ms -> {:.3} ms ({:.3}x)\n",
            layer_base as f64 / 1e6,
            layer_fo as f64 / 1e6,
            layer_base as f64 / layer_fo as f64
        );
    }
}
