//! Expert-parallel MoE layer: GEMM+All-to-All with dynamic token routing.
//!
//! ```text
//! cargo run --release --example moe_all_to_all
//! ```
//!
//! After each rank's expert GEMM, tokens must return to their source
//! GPUs (§2.3). The token-level reordering parks every finished token in
//! a per-destination memory pool, and each wave group ships its pools
//! with one All-to-All(v). This example runs balanced and skewed routing
//! (the "inherent workload imbalance" of expert parallelism), verifies
//! token delivery functionally, and reports latencies.

use flashoverlap::runtime::CommPattern;
use flashoverlap::{FunctionalInputs, OverlapPlan, SystemSpec};
use gpu_sim::gemm::GemmDims;
use tensor::gemm;
use workloads::routing::{balanced_routing, load_histogram, skewed_routing};

fn main() {
    let n_gpus = 4;
    let system = SystemSpec::rtx4090(n_gpus);
    let dims = GemmDims::new(8192, 2048, 4096);
    println!(
        "MoE expert layer on {n_gpus} x {}: {} tokens/rank, hidden {}\n",
        system.arch.name, dims.m, dims.n
    );

    for (label, routing) in [
        (
            "balanced routing",
            balanced_routing(dims.m as usize, n_gpus, 42),
        ),
        (
            "skewed routing (40% of traffic to rank 0)",
            skewed_routing(dims.m as usize, n_gpus, 0.4, 42),
        ),
    ] {
        let hist = load_histogram(&routing[0], n_gpus);
        println!("== {label} ==");
        println!("   rank-0 token histogram: {hist:?}");
        let pattern = CommPattern::AllToAll {
            routing: routing.clone(),
        };
        let base = baselines::run_nonoverlap(dims, &pattern, &system).expect("baseline");
        let plan = OverlapPlan::tuned(dims, pattern, system.clone()).expect("plan");
        let report = plan
            .execute_with(&flashoverlap::ExecOptions::new())
            .expect("run")
            .report;
        println!(
            "   partition {} | non-overlap {base} | FlashOverlap {} ({:.3}x)\n",
            plan.partition,
            report.latency,
            base.as_nanos() as f64 / report.latency.as_nanos() as f64
        );
    }

    // Functional check on a small instance: every token arrives at its
    // destination with the right expert output.
    let small = GemmDims::new(256, 128, 64);
    let routing = balanced_routing(256, n_gpus, 7);
    let plan = OverlapPlan::tuned(
        small,
        CommPattern::AllToAll {
            routing: routing.clone(),
        },
        SystemSpec::rtx4090(n_gpus),
    )
    .expect("small plan");
    let inputs = FunctionalInputs::random(small, n_gpus, 3);
    let result = plan
        .execute_with(&flashoverlap::ExecOptions::new().functional(&inputs))
        .expect("functional");
    let outputs = result.outputs.expect("functional outputs");
    let expert_out: Vec<_> = (0..n_gpus)
        .map(|r| gemm(&inputs.a[r], &inputs.b[r]))
        .collect();
    let mapping = plan.token_mapping().expect("token mapping");
    for (dest, out) in outputs.iter().enumerate() {
        for (i, &(src, row)) in mapping.recv_expected[dest].iter().enumerate() {
            for c in 0..small.n as usize {
                let got = out[(i, c)];
                let want = expert_out[src][(row as usize, c)];
                assert!(
                    (got - want).abs() < 1e-2,
                    "token mismatch at dest {dest}, row {i}"
                );
            }
        }
    }
    println!("functional check: every routed token arrived with correct expert output");
}
