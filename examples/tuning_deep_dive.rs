//! Inside the tuner: the wave-partition design space and the predictor.
//!
//! ```text
//! cargo run --release --example tuning_deep_dive
//! ```
//!
//! For one GEMM shape this example enumerates the pruned candidate
//! partitions (§4.1.4), scores each with the Alg. 1 latency predictor,
//! *measures* each in the simulator, and prints the ranking — making the
//! prediction-vs-reality trend of Fig. 11 visible for a single workload.

use collectives::Primitive;
use flashoverlap::partition::candidate_partitions;
use flashoverlap::runtime::CommPattern;
use flashoverlap::{LatencyPredictor, OverlapPlan, SystemSpec, WavePartition};
use gpu_sim::gemm::GemmDims;

fn main() {
    let system = SystemSpec::rtx4090(4);
    let dims = GemmDims::new(2048, 8192, 8192);
    let predictor = LatencyPredictor::build(dims, Primitive::AllReduce, &system);
    let waves = predictor.profile().total_waves;
    println!(
        "shape {}x{}x{} on 4x{}: {} tiles, T = {waves} waves",
        dims.m,
        dims.n,
        dims.k,
        system.arch.name,
        predictor.profile().total_tiles
    );
    println!(
        "full design space: 2^(T-1) = {} partitions; pruned candidates (S1<=2, SP<=4):",
        1u64 << (waves - 1)
    );

    let candidates = candidate_partitions(waves, 2, 4);
    let mut scored: Vec<(WavePartition, u64, u64)> = candidates
        .into_iter()
        .map(|p| {
            let predicted = predictor.predict(&p).as_nanos();
            let actual = OverlapPlan::new(dims, CommPattern::AllReduce, system.clone(), p.clone())
                .expect("plan")
                .execute_with(&flashoverlap::ExecOptions::new())
                .expect("run")
                .report
                .latency
                .as_nanos();
            (p, predicted, actual)
        })
        .collect();
    scored.sort_by_key(|&(_, predicted, _)| predicted);

    println!("\ntop candidates by predicted latency (all measured for comparison):");
    for (p, predicted, actual) in scored.iter().take(10) {
        println!(
            "  {p:<16} predicted {:>9.3} ms   measured {:>9.3} ms   err {:+.2}%",
            *predicted as f64 / 1e6,
            *actual as f64 / 1e6,
            (*actual as f64 - *predicted as f64) / *actual as f64 * 100.0
        );
    }

    let best_predicted = &scored[0];
    let best_actual = scored
        .iter()
        .min_by_key(|&&(_, _, actual)| actual)
        .expect("non-empty");
    println!(
        "\npredictive search picks {} ; true optimum is {} ({:.2}% apart)",
        best_predicted.0,
        best_actual.0,
        (best_predicted.2 as f64 / best_actual.2 as f64 - 1.0) * 100.0
    );
    let per_wave = scored
        .iter()
        .find(|(p, _, _)| *p == WavePartition::per_wave(waves));
    let single = scored
        .iter()
        .find(|(p, _, _)| *p == WavePartition::single(waves));
    if let (Some(pw), Some(sg)) = (per_wave, single) {
        println!(
            "reference points: per-wave {} -> {:.3} ms; no-overlap {} -> {:.3} ms",
            pw.0,
            pw.2 as f64 / 1e6,
            sg.0,
            sg.2 as f64 / 1e6
        );
    }
}
