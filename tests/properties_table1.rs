//! Executable versions of the three Table 1 properties that
//! differentiate FlashOverlap from decomposition- and fusion-based
//! designs: tile-wise overlapping, interference-free computation, and
//! communication agnosticism.

use flashoverlap::runtime::CommPattern;
use flashoverlap::{OverlapPlan, SystemSpec, WavePartition};
use gpu_sim::gemm::{gemm_estimate, GemmConfig, GemmDims};

/// Tile-wise overlapping: with a multi-group partition, early groups'
/// communication completes strictly before the GEMM finishes — the two
/// genuinely run concurrently at sub-kernel granularity.
#[test]
fn tile_wise_overlapping() {
    let dims = GemmDims::new(4096, 8192, 16384);
    let system = SystemSpec::rtx4090(4);
    let plan = OverlapPlan::tuned(dims, CommPattern::AllReduce, system).unwrap();
    assert!(
        plan.partition.num_groups() >= 2,
        "balanced shape must tune to a multi-group partition"
    );
    let report = plan
        .execute_with(&flashoverlap::ExecOptions::new())
        .unwrap()
        .report;
    let first_comm = report.group_comm_done[0];
    assert!(
        first_comm < report.gemm_done,
        "first group comm ({first_comm}) must finish inside the GEMM ({})",
        report.gemm_done
    );
}

/// Interference-free computation: the GEMM kernel is byte-for-byte the
/// same kernel as in the plain execution — with a single-group partition
/// (no concurrent communication) its duration matches the plain GEMM
/// estimate exactly, signaling epilogue and reordering included.
#[test]
fn interference_free_computation() {
    let dims = GemmDims::new(2048, 8192, 8192);
    let mut system = SystemSpec::rtx4090(4);
    // Disable execution noise for an exact comparison.
    system.seed = 7;
    let config = GemmConfig::choose(dims, &system.arch);
    let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
    let plan = OverlapPlan::new(
        dims,
        CommPattern::AllReduce,
        system.clone(),
        WavePartition::single(waves),
    )
    .unwrap();
    let report = plan
        .execute_with(&flashoverlap::ExecOptions::new())
        .unwrap()
        .report;
    // Uncontended runtime waves are full-width.
    let (_, plain) = gemm_estimate(dims, &plan.config, system.arch.sm_count, &system.arch);
    let ratio = report.gemm_done.as_nanos() as f64 / plain.as_nanos() as f64;
    assert!(
        (1.0..1.0 + flashoverlap::SystemSpec::GEMM_NOISE_FRAC + 1e-9).contains(&ratio),
        "GEMM with reorder epilogue + signaling must cost no more than \
         plain GEMM plus execution noise (ratio {ratio})"
    );
}

/// Under contention the GEMM slows only by the SM share the collective
/// holds, never more — the main loop itself is untouched.
#[test]
fn contention_bounded_computation() {
    let dims = GemmDims::new(4096, 8192, 2048);
    let system = SystemSpec::rtx4090(4);
    let config = GemmConfig::choose(dims, &system.arch);
    let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
    let plan = OverlapPlan::new(
        dims,
        CommPattern::AllReduce,
        system.clone(),
        WavePartition::per_wave(waves),
    )
    .unwrap();
    let report = plan
        .execute_with(&flashoverlap::ExecOptions::new())
        .unwrap()
        .report;
    let (_, plain) = gemm_estimate(dims, &plan.config, system.arch.sm_count, &system.arch);
    let (_, contended) = gemm_estimate(dims, &plan.config, system.compute_sms(), &system.arch);
    let measured = report.gemm_done.as_nanos() as f64;
    assert!(
        measured >= plain.as_nanos() as f64 * 0.999,
        "cannot beat the uncontended GEMM"
    );
    assert!(
        measured <= contended.as_nanos() as f64 * (1.0 + flashoverlap::SystemSpec::GEMM_NOISE_FRAC),
        "slowdown bounded by the communication SM share"
    );
}

/// Communication agnosticism: the identical runtime drives three
/// different primitives purely through collective-library calls — no
/// per-primitive kernels. (Compile-time evidence is the single
/// `OverlapPlan` type; runtime evidence is that all three execute.)
#[test]
fn communication_agnosticism() {
    let system = SystemSpec::rtx4090(4);
    let dims = GemmDims::new(2048, 4096, 4096);
    let routing = workloads::balanced_routing(2048, 4, 1);
    for pattern in [
        CommPattern::AllReduce,
        CommPattern::ReduceScatter,
        CommPattern::AllToAll { routing },
    ] {
        let plan = OverlapPlan::tuned(dims, pattern, system.clone()).unwrap();
        let report = plan
            .execute_with(&flashoverlap::ExecOptions::new())
            .unwrap()
            .report;
        assert!(report.latency > sim::SimDuration::ZERO);
    }
}
