//! End-to-end integration tests: the full FlashOverlap pipeline — GEMM
//! with fused reorder epilogue, counting-table signaling, group-wise
//! collectives, and post-communication remap — verified numerically
//! against the plain oracle on the real (paper) system specs.

use flashoverlap::runtime::CommPattern;
use flashoverlap::{
    ExecOptions, FunctionalInputs, FunctionalReport, OverlapPlan, SystemSpec, WavePartition,
};
use gpu_sim::gemm::{GemmConfig, GemmDims};
use tensor::{allclose, gemm, rmsnorm, Matrix};

fn run_functional(plan: &OverlapPlan, inputs: &FunctionalInputs) -> FunctionalReport {
    let out = plan
        .execute_with(&ExecOptions::new().functional(inputs))
        .expect("functional execution");
    FunctionalReport {
        report: out.report,
        outputs: out.outputs.expect("functional outputs"),
    }
}

fn reduced_reference(inputs: &FunctionalInputs) -> Matrix {
    let mut acc = gemm(&inputs.a[0], &inputs.b[0]);
    for r in 1..inputs.a.len() {
        acc = acc.add(&gemm(&inputs.a[r], &inputs.b[r]));
    }
    acc
}

fn waves_for(dims: GemmDims, system: &SystemSpec) -> u32 {
    let config = GemmConfig::choose(dims, &system.arch);
    config.grid(dims).num_tiles().div_ceil(system.compute_sms())
}

#[test]
fn all_reduce_pipeline_on_rtx4090_system() {
    let dims = GemmDims::new(1024, 1024, 128);
    let system = SystemSpec::rtx4090(4);
    let plan = OverlapPlan::tuned(dims, CommPattern::AllReduce, system).unwrap();
    let inputs = FunctionalInputs::random(dims, 4, 11);
    let result = run_functional(&plan, &inputs);
    let expected = reduced_reference(&inputs);
    for (rank, out) in result.outputs.iter().enumerate() {
        assert!(allclose(out, &expected, 2e-2), "rank {rank}");
    }
}

#[test]
fn all_reduce_pipeline_on_a800_system() {
    let dims = GemmDims::new(768, 1280, 96);
    let system = SystemSpec::a800(2);
    let plan = OverlapPlan::tuned(dims, CommPattern::AllReduce, system).unwrap();
    let inputs = FunctionalInputs::random(dims, 2, 12);
    let result = run_functional(&plan, &inputs);
    let expected = reduced_reference(&inputs);
    assert!(allclose(&result.outputs[0], &expected, 2e-2));
    assert!(allclose(&result.outputs[1], &expected, 2e-2));
}

#[test]
fn reduce_scatter_pipeline_delivers_interleaved_rows() {
    let dims = GemmDims::new(1024, 768, 64);
    let system = SystemSpec::rtx4090(4);
    let plan = OverlapPlan::tuned(dims, CommPattern::ReduceScatter, system).unwrap();
    let inputs = FunctionalInputs::random(dims, 4, 13);
    let result = run_functional(&plan, &inputs);
    let expected = reduced_reference(&inputs);
    for (rank, out) in result.outputs.iter().enumerate() {
        assert_eq!(out.rows(), 256, "each rank holds M/n rows");
        for i in 0..out.rows() {
            let global = rank + i * 4;
            for c in 0..out.cols() {
                let diff = (out[(i, c)] - expected[(global, c)]).abs();
                assert!(diff < 2e-2, "rank {rank} local row {i} col {c}");
            }
        }
    }
}

#[test]
fn all_to_all_pipeline_routes_every_token() {
    let dims = GemmDims::new(512, 256, 64);
    let system = SystemSpec::rtx4090(4);
    let routing = workloads::balanced_routing(512, 4, 21);
    let plan = OverlapPlan::tuned(
        dims,
        CommPattern::AllToAll {
            routing: routing.clone(),
        },
        system,
    )
    .unwrap();
    let inputs = FunctionalInputs::random(dims, 4, 14);
    let per_rank: Vec<Matrix> = (0..4).map(|r| gemm(&inputs.a[r], &inputs.b[r])).collect();
    let result = run_functional(&plan, &inputs);
    let mapping = plan.token_mapping().unwrap();
    let mut total_tokens = 0;
    for dest in 0..4 {
        let out = &result.outputs[dest];
        total_tokens += out.rows();
        for (i, &(src, row)) in mapping.recv_expected[dest].iter().enumerate() {
            for c in 0..out.cols() {
                let diff = (out[(i, c)] - per_rank[src][(row as usize, c)]).abs();
                assert!(diff < 2e-2, "dest {dest} token {i} col {c}");
            }
        }
    }
    assert_eq!(total_tokens, 4 * 512, "every token delivered exactly once");
}

#[test]
fn fused_rmsnorm_remap_restores_logical_order() {
    // Exercise the Fig. 6 path inside the simulator: after the overlapped
    // AllReduce, an RMSNorm kernel with the element gather fused must
    // produce rmsnorm(reference) directly from the packed buffer.
    use gpu_sim::arch::RemapGranularity;
    use gpu_sim::elementwise::{ElementwiseKernel, ElementwiseOp, Gather};
    use gpu_sim::stream::enqueue;
    use gpu_sim::ClusterSim;
    use std::rc::Rc;

    let dims = GemmDims::new(512, 512, 64);
    let system = SystemSpec::rtx4090(2);
    let plan = OverlapPlan::tuned(dims, CommPattern::AllReduce, system.clone()).unwrap();
    let inputs = FunctionalInputs::random(dims, 2, 31);
    let result = run_functional(&plan, &inputs);
    let expected = reduced_reference(&inputs);

    // Re-pack the verified output through the mapping and run the fused
    // kernel on a fresh device.
    let mapping = plan.tile_mapping().unwrap();
    let mut packed = vec![0.0f32; mapping.total_elems];
    for r in 0..dims.m {
        for c in 0..dims.n {
            packed[mapping.packed_index(r, c)] = result.outputs[0][(r as usize, c as usize)];
        }
    }
    let gather = Rc::new(mapping.element_gather());
    let weight: Vec<f32> = (0..dims.n).map(|i| 1.0 + (i % 7) as f32 * 0.1).collect();

    let mut world = gpu_sim::Cluster::new(1, system.arch.clone(), true, 1);
    let mut sim: ClusterSim = sim::Sim::new();
    let dev = &mut world.devices[0];
    let input = dev.mem.alloc_init(&packed);
    let output = dev.mem.alloc((dims.m * dims.n) as usize);
    let stream = dev.create_stream();
    enqueue(
        &mut world,
        &mut sim,
        0,
        stream,
        Box::new(ElementwiseKernel {
            input,
            output,
            rows: dims.m as usize,
            cols: dims.n as usize,
            op: ElementwiseOp::RmsNorm {
                weight: Rc::new(weight.clone()),
                eps: 1e-6,
            },
            gather: Gather::Elements(gather),
            remap_cost: Some(RemapGranularity::Tile),
        }),
    );
    sim.run(&mut world).unwrap();
    let fused = Matrix::from_vec(
        dims.m as usize,
        dims.n as usize,
        world.devices[0].mem.snapshot(output),
    );
    let reference = rmsnorm(&expected, &weight, 1e-6);
    assert!(allclose(&fused, &reference, 2e-2));
}

#[test]
fn every_partition_of_a_shape_gives_identical_numerics() {
    // 2048x2048 with 256x128 tiles is 128 tiles = 2 contended waves on
    // the 4090; K stays small so the functional oracle is cheap.
    let dims = GemmDims::new(2048, 2048, 32);
    let system = SystemSpec::rtx4090(2);
    let waves = waves_for(dims, &system);
    assert!(waves >= 2, "need multiple waves (got {waves})");
    let inputs = FunctionalInputs::random(dims, 2, 99);
    let expected = reduced_reference(&inputs);
    for partition in flashoverlap::partition::all_partitions(waves.min(4)) {
        // Pad to the full wave count if truncated.
        let mut sizes = partition.sizes().to_vec();
        let covered: u32 = sizes.iter().sum();
        if covered < waves {
            sizes.push(waves - covered);
        }
        let plan = OverlapPlan::new(
            dims,
            CommPattern::AllReduce,
            system.clone(),
            WavePartition::new(sizes),
        )
        .unwrap();
        let result = run_functional(&plan, &inputs);
        assert!(
            allclose(&result.outputs[0], &expected, 2e-2),
            "partition {} changed numerics",
            plan.partition
        );
    }
}

#[test]
fn all_gather_pipeline_on_real_system() {
    let dims = GemmDims::new(512, 256, 64);
    let system = SystemSpec::rtx4090(4);
    let plan = OverlapPlan::tuned(dims, CommPattern::AllGather, system).unwrap();
    let inputs = FunctionalInputs::random(dims, 4, 51);
    let shards: Vec<Matrix> = (0..4).map(|r| gemm(&inputs.a[r], &inputs.b[r])).collect();
    let result = run_functional(&plan, &inputs);
    for (rank, out) in result.outputs.iter().enumerate() {
        assert_eq!((out.rows(), out.cols()), (512, 1024));
        for r in 0..512usize {
            for c in 0..1024usize {
                let diff = (out[(r, c)] - shards[c / 256][(r, c % 256)]).abs();
                assert!(diff < 1e-2, "rank {rank} ({r},{c})");
            }
        }
    }
}

#[test]
fn pipeline_composes_layers_on_real_system() {
    use flashoverlap::pipeline::{LayerSpec, Pipeline};
    use gpu_sim::elementwise::ElementwiseOp;
    use std::rc::Rc;

    let system = SystemSpec::a800(2);
    let dims = GemmDims::new(2048, 2048, 2048);
    let rms = ElementwiseOp::RmsNorm {
        weight: Rc::new(vec![1.0; 2048]),
        eps: 1e-6,
    };
    let pipeline = Pipeline::tuned(
        system,
        vec![
            LayerSpec {
                dims,
                pattern: CommPattern::AllReduce,
                epilogue: Some(rms.clone()),
            },
            LayerSpec {
                dims,
                pattern: CommPattern::AllReduce,
                epilogue: Some(rms),
            },
        ],
    )
    .unwrap();
    let report = pipeline
        .execute_with(&flashoverlap::PipelineExecOptions::new())
        .unwrap()
        .report;
    assert_eq!(report.layers.len(), 2);
    assert!(report.layers[0].latency < report.layers[1].latency);
    assert!(report.total >= report.layers[1].epilogue_done.unwrap());
}

#[test]
fn timing_and_functional_modes_agree_on_latency() {
    let dims = GemmDims::new(1024, 1024, 128);
    let system = SystemSpec::rtx4090(2);
    let plan = OverlapPlan::tuned(dims, CommPattern::AllReduce, system).unwrap();
    let timing = plan.execute_with(&ExecOptions::new()).unwrap().report;
    let functional = run_functional(&plan, &FunctionalInputs::random(dims, 2, 5));
    assert_eq!(
        timing.latency.as_nanos(),
        functional.report.latency.as_nanos(),
        "data must never affect time"
    );
}
