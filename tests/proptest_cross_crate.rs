//! Cross-crate property tests: invariants that must hold for arbitrary
//! shapes, partitions, and seeds across the whole stack.

use flashoverlap::runtime::CommPattern;
use flashoverlap::{
    nonoverlap_latency, theoretical_latency, ExecOptions, FunctionalInputs, LatencyPredictor,
    OverlapPlan, RunReport, SystemSpec, WavePartition,
};
use gpu_sim::gemm::{GemmConfig, GemmDims};
use proptest::prelude::*;
use tensor::{allclose, gemm};

fn arb_dims() -> impl Strategy<Value = GemmDims> {
    // Multiples that satisfy every primitive's divisibility constraints
    // for up to 8 ranks.
    (1u32..=8, 1u32..=8, 1u32..=8).prop_map(|(m, n, k)| GemmDims::new(m * 512, n * 512, k * 512))
}

fn run(plan: &OverlapPlan) -> RunReport {
    plan.execute_with(&ExecOptions::new()).expect("run").report
}

fn waves_for(dims: GemmDims, system: &SystemSpec) -> u32 {
    GemmConfig::choose(dims, &system.arch)
        .grid(dims)
        .num_tiles()
        .div_ceil(system.compute_sms())
}

fn arb_partition(waves: u32, seed: u64) -> WavePartition {
    // Deterministic pseudo-random composition of `waves`.
    let mut rng = sim::DetRng::new(seed);
    let mut sizes = Vec::new();
    let mut left = waves;
    while left > 0 {
        let take = rng.range_inclusive(1, left as u64) as u32;
        sizes.push(take);
        left -= take;
    }
    WavePartition::new(sizes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulated overlapped latency never beats the perfect-overlap
    /// theoretical bound and never exceeds 110% of non-overlap plus the
    /// worst-case fragmentation (sanity envelope).
    #[test]
    fn latency_within_theory_envelope(dims in arb_dims(), seed in 0u64..1000) {
        let system = SystemSpec::rtx4090(4).with_seed(seed);
        let waves = waves_for(dims, &system);
        let partition = arb_partition(waves, seed ^ 0xABCD);
        let plan = OverlapPlan::new(dims, CommPattern::AllReduce, system.clone(), partition)
            .expect("plan");
        let latency = run(&plan).latency;
        let theory = theoretical_latency(dims, collectives::Primitive::AllReduce, &system);
        prop_assert!(latency >= theory, "beat the theoretical bound: {latency} < {theory}");
    }

    /// The tuned plan never loses more than a whisker to non-overlap
    /// (the single-group fallback is always a candidate).
    #[test]
    fn tuned_plan_never_catastrophic(dims in arb_dims(), seed in 0u64..100) {
        let system = SystemSpec::rtx4090(4).with_seed(seed);
        let plan = OverlapPlan::tuned(dims, CommPattern::AllReduce, system.clone())
            .expect("plan");
        let tuned = run(&plan).latency.as_nanos() as f64;
        let base = nonoverlap_latency(dims, collectives::Primitive::AllReduce, &system)
            .as_nanos() as f64;
        // Allow noise plus small modelling slack.
        prop_assert!(tuned <= base * 1.12, "tuned {tuned} vs base {base}");
    }

    /// Functional outputs are partition- and seed-independent.
    #[test]
    fn numerics_independent_of_partition(seed in 0u64..50) {
        let dims = GemmDims::new(512, 512, 64);
        let system = SystemSpec::rtx4090(2).with_seed(seed);
        let waves = waves_for(dims, &system);
        let inputs = FunctionalInputs::random(dims, 2, 1234);
        let expected = gemm(&inputs.a[0], &inputs.b[0]).add(&gemm(&inputs.a[1], &inputs.b[1]));
        let partition = arb_partition(waves, seed);
        let plan = OverlapPlan::new(dims, CommPattern::AllReduce, system, partition)
            .expect("plan");
        let result = plan
            .execute_with(&ExecOptions::new().functional(&inputs))
            .expect("run");
        let outputs = result.outputs.expect("functional outputs");
        prop_assert!(allclose(&outputs[0], &expected, 2e-2));
        prop_assert!(allclose(&outputs[1], &expected, 2e-2));
    }

    /// The predictor is a true lower-bound-ish estimate: never more than
    /// a few percent above the measured latency, and usually below it.
    #[test]
    fn predictor_tracks_measurement(dims in arb_dims(), seed in 0u64..50) {
        let system = SystemSpec::rtx4090(4).with_seed(seed);
        let predictor = LatencyPredictor::build(
            dims,
            collectives::Primitive::AllReduce,
            &system,
        );
        let waves = predictor.profile().total_waves;
        let partition = arb_partition(waves, seed ^ 0x77);
        let predicted = predictor.predict(&partition).as_nanos() as f64;
        let plan = OverlapPlan::new(dims, CommPattern::AllReduce, system, partition)
            .expect("plan");
        let actual = run(&plan).latency.as_nanos() as f64;
        let rel = (actual - predicted) / actual;
        prop_assert!(rel > -0.05, "prediction {predicted} far above actual {actual}");
        prop_assert!(rel < 0.25, "prediction {predicted} far below actual {actual}");
    }

    /// Same seed, same everything: the whole stack is deterministic.
    #[test]
    fn determinism(dims in arb_dims(), seed in 0u64..50) {
        let system = SystemSpec::rtx4090(2).with_seed(seed);
        let a = run(&OverlapPlan::tuned(dims, CommPattern::AllReduce, system.clone())
            .expect("plan a"));
        let b = run(&OverlapPlan::tuned(dims, CommPattern::AllReduce, system)
            .expect("plan b"));
        prop_assert_eq!(a.latency.as_nanos(), b.latency.as_nanos());
        prop_assert_eq!(a.gemm_done.as_nanos(), b.gemm_done.as_nanos());
    }
}
