//! Workspace-root entry point: forwards to the `flashoverlap` CLI so
//! `cargo run --release -- <command>` works from the repository root.

use flashoverlap_cli::args::USAGE;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match flashoverlap_cli::run(&argv) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            if !e.message.is_empty() {
                eprintln!("error: {e}");
            }
            if e.show_usage {
                eprint!("{USAGE}");
            }
            std::process::exit(if e.message.is_empty() { 0 } else { 1 });
        }
    }
}
