//! Umbrella crate for the FlashOverlap reproduction workspace.
//!
//! Holds the cross-crate integration tests (`tests/`) and runnable examples
//! (`examples/`); see the individual crates for the actual library code.
